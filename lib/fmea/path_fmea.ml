open Ssam

type options = { exclude : string list; recurse : bool }

let default_options = { exclude = []; recurse = true }

let max_paths = 20_000

exception Too_many_paths

(* Child-level connection graph of a composite component.  Edges whose
   endpoint is the composite itself mark the input/output boundary. *)
let child_graph (c : Architecture.component) =
  let self = Architecture.component_id c in
  let child_ids = List.map Architecture.component_id c.Architecture.children in
  let is_child id = List.exists (String.equal id) child_ids in
  let edges = ref [] in
  let boundary_in = ref [] in
  let boundary_out = ref [] in
  List.iter
    (fun (r : Architecture.relationship) ->
      let f = r.Architecture.from_component and t = r.Architecture.to_component in
      if String.equal f self && is_child t then boundary_in := t :: !boundary_in
      else if String.equal t self && is_child f then
        boundary_out := f :: !boundary_out
      else if is_child f && is_child t then edges := (f, t) :: !edges)
    c.Architecture.connections;
  (child_ids, List.rev !edges, List.rev !boundary_in, List.rev !boundary_out)

(* The interned CSR digraph of the child connections, with the
   input/output boundary resolved to source/sink node lists.  When a
   boundary side is undeclared it falls back to degree: children with no
   incoming (resp. outgoing) edges. *)
let child_digraph (c : Architecture.component) =
  let child_ids, edges, boundary_in, boundary_out = child_graph c in
  let g = Graph.Digraph.of_edges ~nodes:child_ids edges in
  let index id =
    match Graph.Digraph.index g id with
    | Some i -> i
    | None -> assert false (* every child id was interned via ~nodes *)
  in
  let degree_filter deg =
    List.filter_map
      (fun id -> if deg (index id) = 0 then Some (index id) else None)
      child_ids
  in
  let resolve boundary deg =
    match boundary with
    | [] -> degree_filter deg
    | ids -> List.map index (List.sort_uniq String.compare ids)
  in
  let sources = resolve boundary_in (Graph.Digraph.in_degree g) in
  let sinks = resolve boundary_out (Graph.Digraph.out_degree g) in
  (g, sources, sinks)

let child_structure = child_digraph

(* ---------- reference implementation: simple-path enumeration ----------

   Exponential and capped at [max_paths]; kept as the executable
   specification the dominator route is property-tested against, and
   for {!paths}, whose consumers (the FTA bridge) genuinely want the
   path lists. *)

let enumerate_paths g ~sources ~sinks =
  let n = Graph.Digraph.node_count g in
  let is_sink = Graph.Bitset.create n in
  List.iter (Graph.Bitset.add is_sink) sinks;
  let on_path = Array.make n false in
  let count = ref 0 in
  let results = ref [] in
  let rec dfs path node =
    if not on_path.(node) then begin (* simple paths only *)
      on_path.(node) <- true;
      let path = node :: path in
      if Graph.Bitset.mem is_sink node then begin
        incr count;
        if !count > max_paths then raise Too_many_paths;
        results := List.rev_map (Graph.Digraph.name g) path :: !results
      end;
      (* A sink may still have successors; continue exploring. *)
      Array.iter (dfs path) (Graph.Digraph.successors g node);
      on_path.(node) <- false
    end
  in
  List.iter (dfs []) sources;
  List.rev !results

let path_ids (c : Architecture.component) =
  let g, sources, sinks = child_digraph c in
  enumerate_paths g ~sources ~sinks

let paths (c : Architecture.component) =
  let find id =
    List.find
      (fun ch -> String.equal (Architecture.component_id ch) id)
      c.Architecture.children
  in
  List.map (fun ids -> List.map find ids) (path_ids c)

(* ---------- dominator-based classification (the production route) ---- *)

let single_points (c : Architecture.component) =
  let g, sources, sinks = child_digraph c in
  match Graph.Dominators.on_every_path g ~sources ~sinks with
  | None -> []
  | Some on ->
      List.map (Graph.Digraph.name g) (Graph.Bitset.to_list on)
      |> List.sort String.compare

(* A child's classification for loss-like failure modes. *)
type path_verdict =
  | On_all_paths
  | Alternatives_remain
  | Unclassified of string
      (* the give-up branch: enumeration overflowed; never silent *)

let dominator_classifier (c : Architecture.component) =
  let g, sources, sinks = child_digraph c in
  match Graph.Dominators.on_every_path g ~sources ~sinks with
  | None -> fun _ -> Alternatives_remain (* no input→output path at all *)
  | Some on ->
      fun id ->
        (match Graph.Digraph.index g id with
        | Some i when Graph.Bitset.mem on i -> On_all_paths
        | Some _ | None -> Alternatives_remain)

let enumeration_classifier (c : Architecture.component) =
  match path_ids c with
  | ids ->
      fun id ->
        if
          ids <> []
          && List.for_all (fun p -> List.exists (String.equal id) p) ids
        then On_all_paths
        else Alternatives_remain
  | exception Too_many_paths ->
      let msg =
        Printf.sprintf
          "path enumeration overflowed (> %d simple paths); single-point \
           status unknown — use the dominator analysis"
          max_paths
      in
      fun _ -> Unclassified msg

(* A child is never a single point if all its declared functions are
   redundant (1oo2 / 1oo3 / 2oo3). *)
let redundant (child : Architecture.component) =
  child.Architecture.functions <> []
  && List.for_all
       (fun (f : Architecture.func) ->
         match f.Architecture.tolerance with
         | Architecture.OneOoOne -> false
         | Architecture.OneOoTwo | Architecture.OneOoThree
         | Architecture.TwoOoThree ->
             true)
       child.Architecture.functions

let rec analyse_into ~options ~classify acc (c : Architecture.component) =
  let verdict = classify c in
  let acc =
    List.fold_left
      (fun acc (child : Architecture.component) ->
        let cid = Architecture.component_id child in
        let excluded = List.exists (String.equal cid) options.exclude in
        let acc =
          List.fold_left
            (fun acc (fm : Architecture.failure_mode) ->
              let fm_name = Base.display_name fm.Architecture.fm_meta in
              let row =
                if excluded then
                  Table.make_row
                    ~warning:"component excluded from analysis by assumption"
                    ~component:cid ~component_fit:child.Architecture.fit
                    ~failure_mode:fm_name
                    ~distribution_pct:fm.Architecture.distribution_pct
                    ~safety_related:false ()
                else if Architecture.is_loss_like fm.Architecture.nature then
                  if redundant child then
                    Table.make_row
                      ~impact:"tolerated by redundant function (no single point)"
                      ~component:cid ~component_fit:child.Architecture.fit
                      ~failure_mode:fm_name
                      ~distribution_pct:fm.Architecture.distribution_pct
                      ~safety_related:false ()
                  else
                    match verdict cid with
                    | On_all_paths ->
                        Table.make_row
                          ~impact:"breaks every input-output path (single point)"
                          ~component:cid ~component_fit:child.Architecture.fit
                          ~failure_mode:fm_name
                          ~distribution_pct:fm.Architecture.distribution_pct
                          ~safety_related:true ()
                    | Alternatives_remain ->
                        Table.make_row ~impact:"alternative paths remain"
                          ~component:cid ~component_fit:child.Architecture.fit
                          ~failure_mode:fm_name
                          ~distribution_pct:fm.Architecture.distribution_pct
                          ~safety_related:false ()
                    | Unclassified why ->
                        Table.make_row ~warning:why ~component:cid
                          ~component_fit:child.Architecture.fit
                          ~failure_mode:fm_name
                          ~distribution_pct:fm.Architecture.distribution_pct
                          ~safety_related:false ()
                else
                  Table.make_row
                    ~warning:
                      (Printf.sprintf
                         "failure mode '%s' is not loss-of-function; path \
                          analysis cannot classify it — review manually"
                         fm_name)
                    ~component:cid ~component_fit:child.Architecture.fit
                    ~failure_mode:fm_name
                    ~distribution_pct:fm.Architecture.distribution_pct
                    ~safety_related:false ()
              in
              row :: acc)
            acc child.Architecture.failure_modes
        in
        if options.recurse && child.Architecture.children <> [] then
          analyse_into ~options ~classify acc child
        else acc)
      acc c.Architecture.children
  in
  acc

let analyse_with ~classify ~options c =
  let rows = List.rev (analyse_into ~options ~classify [] c) in
  { Table.system_name = Architecture.component_name c; rows }

let analyse ?(options = default_options) c =
  analyse_with ~classify:dominator_classifier ~options c

let analyse_enumerated ?(options = default_options) c =
  analyse_with ~classify:enumeration_classifier ~options c

let wrap_flat_package (p : Architecture.package) =
  let name = Base.display_name p.Architecture.package_meta in
  Architecture.component ~component_type:Architecture.System
    ~children:(Architecture.top_components p)
    ~connections:(Architecture.relationships p)
    ~meta:(Base.meta ~name ("synthetic-root:" ^ name))
    ()

let analyse_package_with ~analyse_component (p : Architecture.package) =
  let tops = Architecture.top_components p in
  let composite, flat =
    List.partition (fun c -> c.Architecture.children <> []) tops
  in
  let tables =
    List.map analyse_component composite
    @
    if flat <> [] || Architecture.relationships p <> [] then
      [ analyse_component (wrap_flat_package p) ]
    else []
  in
  let rows = List.concat_map (fun t -> t.Table.rows) tables in
  {
    Table.system_name = Base.display_name p.Architecture.package_meta;
    rows;
  }

let analyse_package ?(options = default_options) p =
  analyse_package_with ~analyse_component:(fun c -> analyse ~options c) p
