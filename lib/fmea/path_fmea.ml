open Ssam

type options = { exclude : string list; recurse : bool }

let default_options = { exclude = []; recurse = true }

let max_paths = 20_000

exception Too_many_paths

(* Child-level connection graph of a composite component.  Edges whose
   endpoint is the composite itself mark the input/output boundary. *)
let child_graph (c : Architecture.component) =
  let self = Architecture.component_id c in
  let child_ids = List.map Architecture.component_id c.Architecture.children in
  let is_child id = List.exists (String.equal id) child_ids in
  let edges = ref [] in
  let boundary_in = ref [] in
  let boundary_out = ref [] in
  List.iter
    (fun (r : Architecture.relationship) ->
      let f = r.Architecture.from_component and t = r.Architecture.to_component in
      if String.equal f self && is_child t then boundary_in := t :: !boundary_in
      else if String.equal t self && is_child f then
        boundary_out := f :: !boundary_out
      else if is_child f && is_child t then edges := (f, t) :: !edges)
    c.Architecture.connections;
  (child_ids, List.rev !edges, List.rev !boundary_in, List.rev !boundary_out)

let successors edges id =
  List.filter_map (fun (f, t) -> if String.equal f id then Some t else None) edges

let predecessors edges id =
  List.filter_map (fun (f, t) -> if String.equal t id then Some f else None) edges

let enumerate_paths ~edges ~sources ~sinks =
  let count = ref 0 in
  let results = ref [] in
  let rec dfs path node =
    if List.exists (String.equal node) path then () (* simple paths only *)
    else begin
      let path = node :: path in
      if List.exists (String.equal node) sinks then begin
        incr count;
        if !count > max_paths then raise Too_many_paths;
        results := List.rev path :: !results
      end;
      (* A sink may still have successors; continue exploring. *)
      List.iter (dfs path) (successors edges node)
    end
  in
  List.iter (dfs []) sources;
  List.rev !results

let path_ids (c : Architecture.component) =
  let child_ids, edges, boundary_in, boundary_out = child_graph c in
  let sources =
    match boundary_in with
    | [] ->
        List.filter (fun id -> predecessors edges id = []) child_ids
    | srcs -> List.sort_uniq String.compare srcs
  in
  let sinks =
    match boundary_out with
    | [] -> List.filter (fun id -> successors edges id = []) child_ids
    | snks -> List.sort_uniq String.compare snks
  in
  enumerate_paths ~edges ~sources ~sinks

let paths (c : Architecture.component) =
  let find id =
    List.find
      (fun ch -> String.equal (Architecture.component_id ch) id)
      c.Architecture.children
  in
  List.map (fun ids -> List.map find ids) (path_ids c)

(* A child is never a single point if all its declared functions are
   redundant (1oo2 / 1oo3 / 2oo3). *)
let redundant (child : Architecture.component) =
  child.Architecture.functions <> []
  && List.for_all
       (fun (f : Architecture.func) ->
         match f.Architecture.tolerance with
         | Architecture.OneOoOne -> false
         | Architecture.OneOoTwo | Architecture.OneOoThree
         | Architecture.TwoOoThree ->
             true)
       child.Architecture.functions

let rec analyse_into ~options acc (c : Architecture.component) =
  let ids =
    match path_ids c with
    | ids -> ids
    | exception Too_many_paths -> []
  in
  let on_all_paths id =
    ids <> [] && List.for_all (fun p -> List.exists (String.equal id) p) ids
  in
  let acc =
    List.fold_left
      (fun acc (child : Architecture.component) ->
        let cid = Architecture.component_id child in
        let excluded = List.exists (String.equal cid) options.exclude in
        let acc =
          List.fold_left
            (fun acc (fm : Architecture.failure_mode) ->
              let fm_name = Base.display_name fm.Architecture.fm_meta in
              let row =
                if excluded then
                  Table.make_row
                    ~warning:"component excluded from analysis by assumption"
                    ~component:cid ~component_fit:child.Architecture.fit
                    ~failure_mode:fm_name
                    ~distribution_pct:fm.Architecture.distribution_pct
                    ~safety_related:false ()
                else if Architecture.is_loss_like fm.Architecture.nature then
                  if redundant child then
                    Table.make_row
                      ~impact:"tolerated by redundant function (no single point)"
                      ~component:cid ~component_fit:child.Architecture.fit
                      ~failure_mode:fm_name
                      ~distribution_pct:fm.Architecture.distribution_pct
                      ~safety_related:false ()
                  else if on_all_paths cid then
                    Table.make_row
                      ~impact:"breaks every input-output path (single point)"
                      ~component:cid ~component_fit:child.Architecture.fit
                      ~failure_mode:fm_name
                      ~distribution_pct:fm.Architecture.distribution_pct
                      ~safety_related:true ()
                  else
                    Table.make_row ~impact:"alternative paths remain"
                      ~component:cid ~component_fit:child.Architecture.fit
                      ~failure_mode:fm_name
                      ~distribution_pct:fm.Architecture.distribution_pct
                      ~safety_related:false ()
                else
                  Table.make_row
                    ~warning:
                      (Printf.sprintf
                         "failure mode '%s' is not loss-of-function; path \
                          analysis cannot classify it — review manually"
                         fm_name)
                    ~component:cid ~component_fit:child.Architecture.fit
                    ~failure_mode:fm_name
                    ~distribution_pct:fm.Architecture.distribution_pct
                    ~safety_related:false ()
              in
              row :: acc)
            acc child.Architecture.failure_modes
        in
        if options.recurse && child.Architecture.children <> [] then
          analyse_into ~options acc child
        else acc)
      acc c.Architecture.children
  in
  acc

let analyse ?(options = default_options) c =
  let rows = List.rev (analyse_into ~options [] c) in
  { Table.system_name = Architecture.component_name c; rows }

let wrap_flat_package (p : Architecture.package) =
  let name = Base.display_name p.Architecture.package_meta in
  Architecture.component ~component_type:Architecture.System
    ~children:(Architecture.top_components p)
    ~connections:(Architecture.relationships p)
    ~meta:(Base.meta ~name ("synthetic-root:" ^ name))
    ()

let analyse_package_with ~analyse_component (p : Architecture.package) =
  let tops = Architecture.top_components p in
  let composite, flat =
    List.partition (fun c -> c.Architecture.children <> []) tops
  in
  let tables =
    List.map analyse_component composite
    @
    if flat <> [] || Architecture.relationships p <> [] then
      [ analyse_component (wrap_flat_package p) ]
    else []
  in
  let rows = List.concat_map (fun t -> t.Table.rows) tables in
  {
    Table.system_name = Base.display_name p.Architecture.package_meta;
    rows;
  }

let analyse_package ?(options = default_options) p =
  analyse_package_with ~analyse_component:(fun c -> analyse ~options c) p
