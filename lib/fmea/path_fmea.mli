(** Automated FMEA on SSAM models — the paper's Algorithm 1.

    For a composite component, enumerate all simple paths from its input
    boundary to its output boundary through the child connection graph.  A
    loss-of-function failure mode of a child is a *single-point fault*
    (safety-related) when the child lies on **every** path — losing it
    makes the output unreachable.  Non-loss-like modes get a warning
    (Algorithm 1's else-branch).  The algorithm recurses into composite
    children.

    Extension (documented in DESIGN.md): children whose every
    {!Ssam.Architecture.func} declares a redundant tolerance (1oo2, 1oo3,
    2oo3) are never single points — a single channel loss is tolerated —
    and their loss-like modes are reported not-safety-related with a
    note. *)

type options = {
  exclude : string list;
      (** component ids exempt from analysis (the paper's "assume DC1 is
          stable") *)
  recurse : bool;  (** analyse composite children too (default true) *)
}

val default_options : options

val paths :
  Ssam.Architecture.component -> Ssam.Architecture.component list list
(** All simple input→output paths through [component]'s children, each as
    the list of traversed children (boundary endpoints omitted).  The
    input/output boundary is defined by connections whose endpoint is the
    composite itself; when there are none, sources are children without
    incoming edges and sinks are children without outgoing edges. *)

val analyse :
  ?options:options -> Ssam.Architecture.component -> Table.t
(** FMEA table for one composite component. *)

val analyse_package :
  ?options:options -> Ssam.Architecture.package -> Table.t
(** Analyses every top-level composite; a package whose top level is a
    flat block list (with package-level relationships) is wrapped in a
    synthetic root first. *)

val analyse_package_with :
  analyse_component:(Ssam.Architecture.component -> Table.t) ->
  Ssam.Architecture.package ->
  Table.t
(** {!analyse_package} with the per-composite analysis supplied by the
    caller — the seam the incremental engine uses to memoise untouched
    packages' path sets by subtree fingerprint.  [analyse_component]
    receives each top-level composite (and the synthetic root wrapping
    any flat remainder) and must behave like {!analyse}. *)
