(** Automated FMEA on SSAM models — the paper's Algorithm 1.

    For a composite component, a loss-of-function failure mode of a
    child is a *single-point fault* (safety-related) when the child lies
    on **every** input→output path through the child connection graph —
    losing it makes the output unreachable.  Non-loss-like modes get a
    warning (Algorithm 1's else-branch).  The algorithm recurses into
    composite children.

    The "on every path" question is answered with the {!Graph}
    kernels: the child graph gets a virtual super-source feeding every
    input and a virtual super-sink fed by every output, and a child is
    on all paths iff it dominates the super-sink (Lengauer–Tarjan, near
    linear).  This is exact on any diagram — cyclic ones included — and
    replaces the historical simple-path enumeration, which was
    exponential and gave up (capped at {!max_paths}) on wide diagrams.
    The enumeration survives as {!analyse_enumerated}/{!paths}: the
    executable specification the dominator route is property-tested
    against, and the path lists the FTA bridge consumes.

    Extension (documented in DESIGN.md): children whose every
    {!Ssam.Architecture.func} declares a redundant tolerance (1oo2, 1oo3,
    2oo3) are never single points — a single channel loss is tolerated —
    and their loss-like modes are reported not-safety-related with a
    note. *)

type options = {
  exclude : string list;
      (** component ids exempt from analysis (the paper's "assume DC1 is
          stable") *)
  recurse : bool;  (** analyse composite children too (default true) *)
}

val default_options : options

val max_paths : int
(** Cap on the reference enumeration (20 000 simple paths).  The
    dominator-based {!analyse} has no cap. *)

exception Too_many_paths
(** Raised by {!paths} when the enumeration exceeds {!max_paths}. *)

val paths :
  Ssam.Architecture.component -> Ssam.Architecture.component list list
(** All simple input→output paths through [component]'s children, each as
    the list of traversed children (boundary endpoints omitted).  The
    input/output boundary is defined by connections whose endpoint is the
    composite itself; when there are none, sources are children without
    incoming edges and sinks are children without outgoing edges.
    Raises {!Too_many_paths} beyond {!max_paths}. *)

val child_structure :
  Ssam.Architecture.component -> Graph.Digraph.t * int list * int list
(** The interned child connection graph together with its resolved
    boundary, [(graph, sources, sinks)] — exactly the structure every
    path/dominator query here runs on.  Exposed so the FTA lowering
    ({!Fta.From_ssam}[.of_structure]) assembles its fault trees over the
    {e same} graph and boundary semantics, which is what makes the
    cardinality-1 critical sets provably comparable with
    {!single_points}. *)

val single_points : Ssam.Architecture.component -> string list
(** Ids of the children lying on every input→output path (sorted) —
    the dominator query by itself, without building a table.  [[]] when
    the component has no input→output path. *)

val analyse :
  ?options:options -> Ssam.Architecture.component -> Table.t
(** FMEA table for one composite component, classified via dominators:
    exact on every model, no path cap. *)

val analyse_enumerated :
  ?options:options -> Ssam.Architecture.component -> Table.t
(** The pre-dominator reference implementation: classification by
    explicit path enumeration.  On components whose path count exceeds
    {!max_paths} it no longer silently reports "alternative paths
    remain" — every loss-like row gets an explicit warning that the
    classification is unknown.  Kept for differential testing and
    benchmarks; production callers want {!analyse}. *)

val analyse_package :
  ?options:options -> Ssam.Architecture.package -> Table.t
(** Analyses every top-level composite; a package whose top level is a
    flat block list (with package-level relationships) is wrapped in a
    synthetic root first. *)

val analyse_package_with :
  analyse_component:(Ssam.Architecture.component -> Table.t) ->
  Ssam.Architecture.package ->
  Table.t
(** {!analyse_package} with the per-composite analysis supplied by the
    caller — the seam the incremental engine uses to memoise untouched
    packages' path sets by subtree fingerprint.  [analyse_component]
    receives each top-level composite (and the synthetic root wrapping
    any flat remainder) and must behave like {!analyse}. *)
