(* Hash-consed ROBDD + Minato-style ZBDD of the minimal cut sets.

   Variables are integers (0 = highest / tested first); terminals are
   shared across managers.  The unique table guarantees canonicity, so
   physical equality decides function equality and every traversal memos
   on node ids.  Fault trees are coherent (no negation), hence the BDD
   is monotone and Rauzy's recursion

     mcs(v ? h : l) = mcs(l)  ∪  v·(mcs(h) \ supersets-of mcs(l))

   yields exactly the minimal cut sets as a ZBDD. *)

type node =
  | Zero
  | One
  | Node of { id : int; var : int; low : node; high : node }

type zdd =
  | Zbot  (* the empty family *)
  | Ztop  (* the family {∅} *)
  | Znode of { zid : int; zvar : int; zlow : zdd; zhigh : zdd }

type t = {
  names : string array;  (* variable index -> basic-event id *)
  mutable root : node;
  unique : (int * int * int, node) Hashtbl.t;
  ite_memo : (int * int * int, node) Hashtbl.t;
  mutable next : int;
  zunique : (int * int * int, zdd) Hashtbl.t;
  zunion_memo : (int * int, zdd) Hashtbl.t;
  zsub_memo : (int * int, zdd) Hashtbl.t;
  mutable znext : int;
  mutable mcs : zdd option;  (* computed once, reused by every query *)
}

let node_id = function Zero -> 0 | One -> 1 | Node { id; _ } -> id
let node_var = function Zero | One -> max_int | Node { var; _ } -> var

let mk t var low high =
  if low == high then low
  else begin
    let key = (var, node_id low, node_id high) in
    match Hashtbl.find_opt t.unique key with
    | Some n -> n
    | None ->
        let n = Node { id = t.next; var; low; high } in
        t.next <- t.next + 1;
        Hashtbl.add t.unique key n;
        n
  end

let rec ite t f g h =
  if f == One then g
  else if f == Zero then h
  else if g == h then g
  else if g == One && h == Zero then f
  else begin
    let key = (node_id f, node_id g, node_id h) in
    match Hashtbl.find_opt t.ite_memo key with
    | Some r -> r
    | None ->
        let v = min (node_var f) (min (node_var g) (node_var h)) in
        let cof = function
          | Node { var; low; high; _ } when var = v -> (low, high)
          | n -> (n, n)
        in
        let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
        let r = mk t v (ite t f0 g0 h0) (ite t f1 g1 h1) in
        Hashtbl.add t.ite_memo key r;
        r
  end

let and_node t a b = ite t a b Zero
let or_node t a b = ite t a One b

(* ---------- compilation from the fault-tree IR ---------- *)

(* Physical-identity memo: trees produced by the structural lowering are
   DAGs in memory, and compiling shared subtrees once keeps the build
   linear in the DAG, not in its (possibly exponential) unfolding. *)
module Phys = Hashtbl.Make (struct
  type t = Fault_tree.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let dfs_event_order tree =
  let seen = Phys.create 64 in
  let taken = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go n =
    if not (Phys.mem seen n) then begin
      Phys.add seen n ();
      match n with
      | Fault_tree.Basic e ->
          if not (Hashtbl.mem taken e.Fault_tree.event_id) then begin
            Hashtbl.add taken e.Fault_tree.event_id ();
            acc := e.Fault_tree.event_id :: !acc
          end
      | Fault_tree.And (_, cs)
      | Fault_tree.Or (_, cs)
      | Fault_tree.Koon (_, _, cs) ->
          List.iter go cs
    end
  in
  go tree;
  List.rev !acc

let resolve_order ~events order =
  match order with
  | None -> events
  | Some given ->
      let in_tree = Hashtbl.create 16 in
      List.iter (fun id -> Hashtbl.replace in_tree id ()) events;
      let taken = Hashtbl.create 16 in
      let head =
        List.filter
          (fun id ->
            if Hashtbl.mem in_tree id && not (Hashtbl.mem taken id) then begin
              Hashtbl.replace taken id ();
              true
            end
            else false)
          given
      in
      head @ List.filter (fun id -> not (Hashtbl.mem taken id)) events

let build ?order tree =
  let events = dfs_event_order tree in
  let names = Array.of_list (resolve_order ~events order) in
  let t =
    {
      names;
      root = Zero;
      unique = Hashtbl.create 256;
      ite_memo = Hashtbl.create 256;
      next = 2;
      zunique = Hashtbl.create 64;
      zunion_memo = Hashtbl.create 64;
      zsub_memo = Hashtbl.create 64;
      znext = 2;
      mcs = None;
    }
  in
  let var_index = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace var_index id i) names;
  let memo = Phys.create 64 in
  let rec compile n =
    match Phys.find_opt memo n with
    | Some b -> b
    | None ->
        let b =
          match n with
          | Fault_tree.Basic e ->
              mk t (Hashtbl.find var_index e.Fault_tree.event_id) Zero One
          | Fault_tree.And (_, cs) ->
              List.fold_left (fun acc c -> and_node t acc (compile c)) One cs
          | Fault_tree.Or (_, cs) ->
              List.fold_left (fun acc c -> or_node t acc (compile c)) Zero cs
          | Fault_tree.Koon (_, k, cs) ->
              (* at-least-k-of threshold composition over the children's
                 BDDs — no k-subset expansion. *)
              let arr = Array.of_list (List.map compile cs) in
              let n_ch = Array.length arr in
              let memo_k = Hashtbl.create 16 in
              let rec atleast i k =
                if k <= 0 then One
                else if n_ch - i < k then Zero
                else begin
                  match Hashtbl.find_opt memo_k (i, k) with
                  | Some r -> r
                  | None ->
                      let r =
                        or_node t
                          (and_node t arr.(i) (atleast (i + 1) (k - 1)))
                          (atleast (i + 1) k)
                      in
                      Hashtbl.add memo_k (i, k) r;
                      r
                end
              in
              atleast 0 k
        in
        Phys.add memo n b;
        b
  in
  t.root <- compile tree;
  t

let variables t = Array.copy t.names
let var_count t = Array.length t.names
let node_count t = t.next - 2

let constant t =
  match t.root with Zero -> Some false | One -> Some true | Node _ -> None

(* ---------- ZBDD of the minimal cut sets ---------- *)

let zid = function Zbot -> 0 | Ztop -> 1 | Znode { zid; _ } -> zid

let zmk t var low high =
  if high == Zbot then low
  else begin
    let key = (var, zid low, zid high) in
    match Hashtbl.find_opt t.zunique key with
    | Some z -> z
    | None ->
        let z = Znode { zid = t.znext; zvar = var; zlow = low; zhigh = high } in
        t.znext <- t.znext + 1;
        Hashtbl.add t.zunique key z;
        z
  end

let rec zunion t a b =
  if a == b then a
  else if a == Zbot then b
  else if b == Zbot then a
  else begin
    let ka = zid a and kb = zid b in
    let key = (min ka kb, max ka kb) in
    match Hashtbl.find_opt t.zunion_memo key with
    | Some r -> r
    | None ->
        let r =
          match (a, b) with
          | Ztop, Znode { zvar; zlow; zhigh; _ }
          | Znode { zvar; zlow; zhigh; _ }, Ztop ->
              zmk t zvar (zunion t Ztop zlow) zhigh
          | Znode na, Znode nb ->
              if na.zvar = nb.zvar then
                zmk t na.zvar
                  (zunion t na.zlow nb.zlow)
                  (zunion t na.zhigh nb.zhigh)
              else if na.zvar < nb.zvar then
                zmk t na.zvar (zunion t na.zlow b) na.zhigh
              else zmk t nb.zvar (zunion t nb.zlow a) nb.zhigh
          | Zbot, _ | _, Zbot | Ztop, Ztop -> assert false
        in
        Hashtbl.add t.zunion_memo key r;
        r
  end

let rec contains_empty = function
  | Zbot -> false
  | Ztop -> true
  | Znode { zlow; _ } -> contains_empty zlow

(* Sets of [a] that are supersets of no set in [b] — Minato's
   subsumption difference, the workhorse of the minimality recursion. *)
let rec zsub t a b =
  if a == Zbot then Zbot
  else if b == Zbot then a
  else if contains_empty b then Zbot
  else if a == Ztop then Ztop
  else begin
    let key = (zid a, zid b) in
    match Hashtbl.find_opt t.zsub_memo key with
    | Some r -> r
    | None ->
        let r =
          match (a, b) with
          | Znode na, Znode nb ->
              if na.zvar < nb.zvar then
                zmk t na.zvar (zsub t na.zlow b) (zsub t na.zhigh b)
              else if na.zvar > nb.zvar then
                (* b-sets containing nb.zvar cannot subsume a-sets that
                   lack it *)
                zsub t a nb.zlow
              else
                zmk t na.zvar (zsub t na.zlow nb.zlow)
                  (zsub t na.zhigh (zunion t nb.zlow nb.zhigh))
          | _ -> assert false
        in
        Hashtbl.add t.zsub_memo key r;
        r
  end

let mcs_zdd t =
  match t.mcs with
  | Some z -> z
  | None ->
      let memo = Hashtbl.create 256 in
      let rec go = function
        | Zero -> Zbot
        | One -> Ztop
        | Node { id; var; low; high } -> (
            match Hashtbl.find_opt memo id with
            | Some z -> z
            | None ->
                let l = go low in
                let h = go high in
                let z = zmk t var l (zsub t h l) in
                Hashtbl.add memo id z;
                z)
      in
      let z = go t.root in
      t.mcs <- Some z;
      z

let zcount z =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Zbot -> 0.0
    | Ztop -> 1.0
    | Znode { zid; zlow; zhigh; _ } -> (
        match Hashtbl.find_opt memo zid with
        | Some c -> c
        | None ->
            let c = go zlow +. go zhigh in
            Hashtbl.add memo zid c;
            c)
  in
  go z

let rec zupto t memo k z =
  match z with
  | Zbot -> Zbot
  | Ztop -> Ztop
  | Znode { zid; zvar; zlow; zhigh } ->
      if k <= 0 then if contains_empty z then Ztop else Zbot
      else begin
        match Hashtbl.find_opt memo (zid, k) with
        | Some r -> r
        | None ->
            let r =
              zmk t zvar (zupto t memo k zlow) (zupto t memo (k - 1) zhigh)
            in
            Hashtbl.add memo (zid, k) r;
            r
      end

let zdd_sets names z =
  let rec go acc prefix = function
    | Zbot -> acc
    | Ztop -> List.rev prefix :: acc
    | Znode { zvar; zlow; zhigh; _ } ->
        let acc = go acc (names.(zvar) :: prefix) zhigh in
        go acc prefix zlow
  in
  go [] [] z

let sort_sets sets =
  let sets = List.map (List.sort String.compare) sets in
  List.sort
    (fun a b ->
      match Int.compare (List.length a) (List.length b) with
      | 0 -> List.compare String.compare a b
      | n -> n)
    sets

let minimal_cut_sets t = sort_sets (zdd_sets t.names (mcs_zdd t))
let minimal_cut_set_count t = zcount (mcs_zdd t)

let minimal_critical_sets ?max_cardinality t =
  let z = mcs_zdd t in
  let z =
    match max_cardinality with
    | None -> z
    | Some k ->
        if k < 0 then invalid_arg "Bdd.minimal_critical_sets: max_cardinality"
        else zupto t (Hashtbl.create 64) k z
  in
  sort_sets (zdd_sets t.names z)

(* ---------- quantification ---------- *)

let node_probability t p n =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Zero -> 0.0
    | One -> 1.0
    | Node { id; var; low; high } -> (
        match Hashtbl.find_opt memo id with
        | Some x -> x
        | None ->
            let pv = p t.names.(var) in
            let x = (pv *. go high) +. ((1.0 -. pv) *. go low) in
            Hashtbl.add memo id x;
            x)
  in
  go n

let probability t p = node_probability t p t.root

(* Restriction f|_{x=v}: in an ordered BDD the variable appears at most
   once per path, so taking the branch removes it outright. *)
let restrict t x value =
  let memo = Hashtbl.create 64 in
  let rec go n =
    match n with
    | Zero | One -> n
    | Node { id; var; low; high } ->
        if var > x then n
        else if var = x then if value then high else low
        else begin
          match Hashtbl.find_opt memo id with
          | Some r -> r
          | None ->
              let r = mk t var (go low) (go high) in
              Hashtbl.add memo id r;
              r
        end
  in
  go t.root

let by_importance results =
  List.sort
    (fun (na, a) (nb, b) ->
      match Float.compare b a with 0 -> String.compare na nb | c -> c)
    results

let birnbaum t p =
  Array.to_list
    (Array.mapi
       (fun i name ->
         let hi = node_probability t p (restrict t i true) in
         let lo = node_probability t p (restrict t i false) in
         (name, hi -. lo))
       t.names)
  |> by_importance

let fussell_vesely t p =
  let total = probability t p in
  if total <= 0.0 then []
  else
    Array.to_list
      (Array.mapi
         (fun i name ->
           (name, (total -. node_probability t p (restrict t i false)) /. total))
         t.names)
    |> by_importance
