(** Hash-consed ROBDD kernel for fault trees — the xSAP-style engine
    shared by every cut-set producer in the repo.

    A compiled tree holds one reduced ordered BDD of the structure
    function over its basic events.  Because the diagram's fault trees
    are coherent (built from AND/OR/k-oo-n over positive events only),
    the BDD is monotone and its prime implicants are exactly the minimal
    cut sets; they are extracted as a Minato-style ZBDD (subsumption-free
    union), so counting and cardinality filtering never materialise the
    full set list.

    Everything downstream rides on this kernel: {!Cut_sets.minimal}'s
    [`Bdd] engine, {!Quant.top_probability_exact} (Shannon expansion —
    exact on repeated events, unlike the legacy independent-copies
    recursion), the Birnbaum/Fussell–Vesely importance measures, and the
    cardinality-k critical-set queries that re-derive {!Fmea.Path_fmea}
    and [Dataflow.Diagnose] results. *)

type t
(** A fault tree compiled to a ROBDD: unique table, memoised [ite],
    cached minimal-cut-set ZBDD. *)

val build : ?order:string list -> Fault_tree.t -> t
(** Compile [tree].  [order] lists basic-event ids highest (tested
    first) to lowest; events absent from [order] follow in first-DFS-
    occurrence order, ids not in the tree are ignored.  The default
    order is first DFS occurrence, which is near-optimal for trees;
    graph-lowered trees pass the {!Graph.Dominators.order_hint}-derived
    order instead.  Shared subtrees (physically equal nodes, as produced
    by {!From_ssam.of_structure}) are compiled once. *)

val variables : t -> string array
(** Basic-event ids in variable order, highest first. *)

val var_count : t -> int

val node_count : t -> int
(** Distinct decision nodes allocated in the unique table (terminals
    excluded) — the usual BDD size measure. *)

val constant : t -> bool option
(** [Some v] when the structure function is the constant [v] (e.g. a
    tautological top event); [None] for a genuine function. *)

val minimal_cut_sets : t -> string list list
(** All minimal cut sets, each sorted lexicographically, the list sorted
    by cardinality then lexicographically — the same convention as
    {!Cut_sets.minimal}, which the QCheck differential tests rely on. *)

val minimal_cut_set_count : t -> float
(** Number of minimal cut sets, counted on the ZBDD without
    materialising them ([float]: the count can exceed [max_int] on trees
    far past the MOCUS cap). *)

val minimal_critical_sets : ?max_cardinality:int -> t -> string list list
(** The S#-style query: minimal cut sets of cardinality ≤
    [max_cardinality] (default: no bound), filtered on the ZBDD before
    materialisation.  Cardinality 1 yields the single points of failure,
    cardinality 2 adds the latent pairs. *)

val probability : t -> (string -> float) -> float
(** Top-event probability by Shannon expansion — one memoised pass over
    the BDD, exact even when basic events repeat under several gates. *)

val birnbaum : t -> (string -> float) -> (string * float) list
(** Birnbaum importance per variable: [P(top | e occurs) - P(top | e
    absent)], descending.  Variables reduced away (irrelevant events)
    report 0. *)

val fussell_vesely : t -> (string -> float) -> (string * float) list
(** Fussell–Vesely (fractional) importance per variable: the share of
    top-event probability that vanishes when the event is perfectly
    reliable, [1 - P(top | e absent)/P(top)], descending.  [[]] when the
    top probability is 0. *)
