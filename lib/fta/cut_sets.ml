type cut_set = string list

let normalize set = List.sort_uniq String.compare set

(* Subset test over {!normalize}d (sorted, duplicate-free) sets: a
   single merge pass instead of the [List.mem]-per-element quadratic
   scan, bailing out as soon as the remaining suffix of [a] cannot fit
   in what is left of [b].  Every set reaching {!minimize} has been
   normalized, so the ordering precondition holds throughout MOCUS. *)
let rec subset_sorted la a lb b =
  if la > lb then false
  else
    match (a, b) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: a', y :: b' ->
        let c = String.compare x y in
        if c = 0 then subset_sorted (la - 1) a' (lb - 1) b'
        else if c > 0 then subset_sorted la a (lb - 1) b'
        else false

(* Keep only sets with no proper (or equal, earlier) subset present.
   Lengths are computed once per set, so each pairwise check is a merge
   bounded by the shorter set instead of O(|k| * |s|) membership scans —
   on the benches' series-parallel trees this takes minimisation from
   the dominant cost to noise. *)
let minimize sets =
  let sorted =
    List.sort (fun a b -> Int.compare (List.length a) (List.length b)) sets
  in
  let kept =
    List.fold_left
      (fun kept s ->
        let ls = List.length s in
        if List.exists (fun (lk, k) -> subset_sorted lk k ls s) kept then kept
        else (ls, s) :: kept)
      [] sorted
  in
  List.rev_map snd kept

(* All k-subsets of a list. *)
let rec choose k items =
  if k = 0 then [ [] ]
  else
    match items with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest

type engine = [ `Auto | `Bdd | `Mocus ]

(* Internal cap signal: [`Mocus] surfaces it as the historical
   [Invalid_argument]; [`Auto] turns it into a logged BDD fallback. *)
exception Overflow of int

let mocus ~max_sets tree =
  let check n = if n > max_sets then raise (Overflow n) in
  (* Bottom-up: each node yields its list of cut sets (a DNF). *)
  let rec go node : cut_set list =
    match node with
    | Fault_tree.Basic e -> [ [ e.Fault_tree.event_id ] ]
    | Fault_tree.Or (_, cs) ->
        let union = List.concat_map go cs in
        check (List.length union);
        minimize (List.map normalize union)
    | Fault_tree.And (_, cs) ->
        let parts = List.map go cs in
        (* Minimise after every factor: repeated events across factors
           collapse early, which keeps the product from exploding on
           deep series-parallel structures. *)
        let product =
          List.fold_left
            (fun acc part ->
              let combined =
                List.concat_map
                  (fun a -> List.map (fun b -> normalize (a @ b)) part)
                  acc
              in
              check (List.length combined);
              minimize combined)
            [ [] ] parts
        in
        minimize product
    | Fault_tree.Koon (id, k, cs) ->
        let subsets = choose k cs in
        go
          (Fault_tree.Or
             ( id ^ ":expanded",
               List.mapi
                 (fun i subset ->
                   Fault_tree.And (Printf.sprintf "%s:%d" id i, subset))
                 subsets ))
  in
  let sets = go tree in
  List.sort
    (fun a b ->
      match Int.compare (List.length a) (List.length b) with
      | 0 -> List.compare String.compare a b
      | n -> n)
    sets

(* The cap fallback is reported once per process: every further tree
   routed to the BDD engine would repeat the same advice. *)
let fallback_logged = ref false

let log_fallback n max_sets =
  if not !fallback_logged then begin
    fallback_logged := true;
    Logs.warn (fun m ->
        m
          "Cut_sets.minimal: MOCUS intermediate size %d exceeds %d; falling \
           back to the BDD engine (logged once)"
          n max_sets)
  end

let minimal ?(max_sets = 100_000) ?(engine = `Auto) tree =
  match engine with
  | `Bdd -> Bdd.minimal_cut_sets (Bdd.build tree)
  | `Mocus -> (
      try mocus ~max_sets tree
      with Overflow n ->
        invalid_arg
          (Printf.sprintf "Cut_sets.minimal: intermediate size %d exceeds %d" n
             max_sets))
  | `Auto -> (
      try mocus ~max_sets tree
      with Overflow n ->
        log_fallback n max_sets;
        Bdd.minimal_cut_sets (Bdd.build tree))

let singletons sets =
  List.filter_map (function [ e ] -> Some e | _ -> None) sets

let order_histogram sets =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let n = List.length s in
      Hashtbl.replace tbl n (1 + Option.value ~default:0 (Hashtbl.find_opt tbl n)))
    sets;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
