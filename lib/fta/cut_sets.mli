(** Minimal cut sets by MOCUS-style expansion.

    A cut set is a set of basic-event ids whose joint occurrence raises
    the top event; it is minimal when no proper subset is a cut set.
    Singleton minimal cut sets are exactly the single-point faults that
    FMEA looks for — the bridge {!Fmea_from_fta} exploits. *)

type cut_set = string list
(** Sorted, duplicate-free basic-event ids. *)

val normalize : string list -> cut_set
(** Sort and deduplicate. *)

val minimize : cut_set list -> cut_set list
(** Drop every set with a proper (or equal, earlier) subset present.
    Inputs must be {!normalize}d.  Each pairwise check is a sorted-list
    merge with an early length cutoff — O(shorter set) instead of the
    historical O(|a| * |b|) membership scans, which dominated MOCUS on
    wide trees. *)

val minimal : ?max_sets:int -> Fault_tree.t -> cut_set list
(** Sorted by size then lexicographically.  K-out-of-N gates are expanded
    into the OR of all [k]-subsets.  Raises [Invalid_argument] when the
    intermediate product exceeds [max_sets] (default 100_000). *)

val singletons : cut_set list -> string list
(** Events forming size-1 minimal cut sets. *)

val order_histogram : cut_set list -> (int * int) list
(** [(cut-set order, count)] pairs, ascending order. *)
