(** Minimal cut sets by MOCUS-style expansion.

    A cut set is a set of basic-event ids whose joint occurrence raises
    the top event; it is minimal when no proper subset is a cut set.
    Singleton minimal cut sets are exactly the single-point faults that
    FMEA looks for — the bridge {!Fmea_from_fta} exploits. *)

type cut_set = string list
(** Sorted, duplicate-free basic-event ids. *)

val normalize : string list -> cut_set
(** Sort and deduplicate. *)

val minimize : cut_set list -> cut_set list
(** Drop every set with a proper (or equal, earlier) subset present.
    Inputs must be {!normalize}d.  Each pairwise check is a sorted-list
    merge with an early length cutoff — O(shorter set) instead of the
    historical O(|a| * |b|) membership scans, which dominated MOCUS on
    wide trees. *)

type engine = [ `Auto | `Bdd | `Mocus ]
(** [`Mocus]: the historical bottom-up DNF expansion, kept as the
    differential oracle — raises [Invalid_argument] past [max_sets].
    [`Bdd]: compile to a {!Bdd.t} and read the cut sets off the ZBDD —
    capless.  [`Auto] (the default): MOCUS while it fits, logged BDD
    fallback when the cap is hit — never raises. *)

val minimal : ?max_sets:int -> ?engine:engine -> Fault_tree.t -> cut_set list
(** Sorted by size then lexicographically; both engines produce the
    identical list (QCheck-tested).  K-out-of-N gates are expanded into
    the OR of all [k]-subsets under MOCUS and composed as a threshold
    recursion under BDD.  With [`Auto] (default), exceeding [max_sets]
    (default 100_000) intermediate sets no longer raises: the tree is
    re-solved exactly on the BDD engine and a warning is logged once per
    process via {!Logs}. *)

val singletons : cut_set list -> string list
(** Events forming size-1 minimal cut sets. *)

val order_histogram : cut_set list -> (int * int) list
(** [(cut-set order, count)] pairs, ascending order. *)
