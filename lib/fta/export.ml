let sanitise id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    id

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "fault_tree") tree =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %s {\n" (sanitise name);
  add "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  let emitted_events = Hashtbl.create 16 in
  let counter = ref 0 in
  let rec emit node =
    match node with
    | Fault_tree.Basic e ->
        let nid = "ev_" ^ sanitise e.Fault_tree.event_id in
        if not (Hashtbl.mem emitted_events nid) then begin
          Hashtbl.add emitted_events nid ();
          let rate =
            match e.Fault_tree.rate_fit with
            | Some r -> Printf.sprintf "\\n%g FIT" r
            | None -> ""
          in
          add "  %s [shape=circle, label=\"%s%s\"];\n" nid
            (escape e.Fault_tree.event_id) rate
        end;
        nid
    | Fault_tree.And (id, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=trapezium, label=\"AND\\n%s\"];\n" nid (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
    | Fault_tree.Or (id, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=invhouse, label=\"OR\\n%s\"];\n" nid (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
    | Fault_tree.Koon (id, k, children) ->
        let nid = Printf.sprintf "g%d_%s" !counter (sanitise id) in
        incr counter;
        add "  %s [shape=diamond, label=\"%d/%d\\n%s\"];\n" nid k
          (List.length children) (escape id);
        List.iter (fun c -> add "  %s -> %s;\n" nid (emit c)) children;
        nid
  in
  ignore (emit tree);
  add "}\n";
  Buffer.contents buf

(* ---------- Open-PSA MEF ---------- *)

let el tag attributes children =
  Modelio.Xml.Element { Modelio.Xml.tag; attributes; children }

let gate_counter = ref 0

let rec formula_of node (definitions : Modelio.Xml.t list ref) =
  match node with
  | Fault_tree.Basic e ->
      el "basic-event" [ ("name", e.Fault_tree.event_id) ] []
  | Fault_tree.And (id, children) ->
      define_gate id "and" children definitions
  | Fault_tree.Or (id, children) ->
      define_gate id "or" children definitions
  | Fault_tree.Koon (id, k, children) ->
      incr gate_counter;
      let gname = Printf.sprintf "%s_%d" (sanitise id) !gate_counter in
      let child_formulas = List.map (fun c -> formula_of c definitions) children in
      definitions :=
        el "define-gate"
          [ ("name", gname) ]
          [ el "atleast" [ ("min", string_of_int k) ] child_formulas ]
        :: !definitions;
      el "gate" [ ("name", gname) ] []

and define_gate id connective children definitions =
  incr gate_counter;
  let gname = Printf.sprintf "%s_%d" (sanitise id) !gate_counter in
  let child_formulas = List.map (fun c -> formula_of c definitions) children in
  definitions :=
    el "define-gate" [ ("name", gname) ] [ el connective [] child_formulas ]
    :: !definitions;
  el "gate" [ ("name", gname) ] []

let to_open_psa ?(model_name = "decisive-fta") tree =
  gate_counter := 0;
  let definitions = ref [] in
  let top_formula = formula_of tree definitions in
  let basic_defs =
    List.map
      (fun (e : Fault_tree.event) ->
        el "define-basic-event"
          [ ("name", e.Fault_tree.event_id) ]
          (match e.Fault_tree.rate_fit with
          | Some fit ->
              [
                el "exponential" []
                  [
                    el "float" [ ("value", Printf.sprintf "%.6e" (fit *. 1e-9)) ] [];
                  ];
              ]
          | None -> []))
      (Fault_tree.basic_events tree)
  in
  {
    Modelio.Xml.tag = "opsa-mef";
    attributes = [ ("name", model_name) ];
    children =
      [
        el "define-fault-tree"
          [ ("name", "top") ]
          ((el "define-gate" [ ("name", "top") ] [ top_formula ]
           :: List.rev !definitions)
          @ basic_defs);
      ];
  }

let to_open_psa_string ?model_name tree =
  Modelio.Xml.to_string (to_open_psa ?model_name tree)

let save_dot ~path ?name tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_dot ?name tree))

(* ---------- Open-PSA MEF import ---------- *)

exception Format_error of string

let format_error fmt = Printf.ksprintf (fun m -> raise (Format_error m)) fmt

let of_open_psa (root : Modelio.Xml.element) =
  let ft =
    match Modelio.Xml.find_first root "define-fault-tree" with
    | Some ft -> ft
    | None -> format_error "Open-PSA import: no define-fault-tree element"
  in
  let attr el name =
    match Modelio.Xml.attribute el name with
    | Some v -> v
    | None ->
        format_error "Open-PSA import: <%s> missing attribute '%s'"
          el.Modelio.Xml.tag name
  in
  let gates = Hashtbl.create 16 in
  let first_gate = ref None in
  let rates = Hashtbl.create 16 in
  List.iter
    (fun (el : Modelio.Xml.element) ->
      match el.Modelio.Xml.tag with
      | "define-gate" ->
          let name = attr el "name" in
          if !first_gate = None then first_gate := Some name;
          Hashtbl.replace gates name el
      | "define-basic-event" ->
          (* The MEF writes exponential rates in per-hour; FIT is 1e-9/h. *)
          let rate =
            match Modelio.Xml.find_first el "exponential" with
            | None -> None
            | Some e ->
                Option.map
                  (fun f ->
                    let v = attr f "value" in
                    match float_of_string_opt v with
                    | Some r -> r /. 1e-9
                    | None ->
                        format_error
                          "Open-PSA import: non-numeric rate '%s'" v)
                  (Modelio.Xml.find_first e "float")
          in
          Hashtbl.replace rates (attr el "name") rate
      | _ -> ())
    (Modelio.Xml.child_elements ft);
  let rec formula (el : Modelio.Xml.element) =
    match el.Modelio.Xml.tag with
    | "basic-event" ->
        let name = attr el "name" in
        Fault_tree.basic
          ?rate_fit:(Option.join (Hashtbl.find_opt rates name))
          name
    | "gate" -> gate (attr el "name")
    | "and" ->
        Fault_tree.and_ "g" (List.map formula (Modelio.Xml.child_elements el))
    | "or" ->
        Fault_tree.or_ "g" (List.map formula (Modelio.Xml.child_elements el))
    | "atleast" ->
        let k =
          let m = attr el "min" in
          match int_of_string_opt m with
          | Some k -> k
          | None -> format_error "Open-PSA import: non-integer min '%s'" m
        in
        Fault_tree.koon "v" ~k (List.map formula (Modelio.Xml.child_elements el))
    | tag -> format_error "Open-PSA import: unsupported formula tag '%s'" tag
  and gate name =
    match Hashtbl.find_opt gates name with
    | None -> format_error "Open-PSA import: undefined gate '%s'" name
    | Some def -> (
        match Modelio.Xml.child_elements def with
        | [ f ] -> formula f
        | _ ->
            format_error
              "Open-PSA import: gate '%s' must hold exactly one formula" name)
  in
  let top =
    if Hashtbl.mem gates "top" then "top"
    else
      match !first_gate with
      | Some g -> g
      | None -> format_error "Open-PSA import: fault tree defines no gates"
  in
  try gate top
  with Invalid_argument m -> format_error "Open-PSA import: %s" m

let parse_open_psa s = of_open_psa (Modelio.Xml.parse s)

let load_open_psa ~path = of_open_psa (Modelio.Xml.parse_file path)

let save_open_psa ~path ?model_name tree =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\"?>\n";
      output_string oc (to_open_psa_string ?model_name tree);
      output_char oc '\n')
