(** Fault-tree export: Graphviz dot for documentation, Open-PSA MEF XML
    for interchange with quantitative FTA tools. *)

val to_dot : ?name:string -> Fault_tree.t -> string
(** Graphviz digraph, top event first.  Gates render as shaped nodes
    (AND trapezium, OR inverted-house, k/N diamond), basic events as
    circles labelled with their rate when known.  Node ids are sanitised;
    repeated basic events share one node, as is conventional. *)

val to_open_psa : ?model_name:string -> Fault_tree.t -> Modelio.Xml.element
(** An Open-PSA Model Exchange Format document: one fault tree whose top
    gate is ["top"], gate definitions for every internal node, and
    [define-basic-event] entries with exponential rates (in per-hour)
    when FIT data is present. *)

val to_open_psa_string : ?model_name:string -> Fault_tree.t -> string

val save_dot : path:string -> ?name:string -> Fault_tree.t -> unit

val save_open_psa : path:string -> ?model_name:string -> Fault_tree.t -> unit

(** {1 Import} *)

exception Format_error of string
(** Raised by the Open-PSA readers on a document this importer cannot
    interpret (missing fault tree, dangling gate reference, unsupported
    formula connective). *)

val of_open_psa : Modelio.Xml.element -> Fault_tree.t
(** Reads an Open-PSA MEF document back into the unified IR: the tree
    rooted at the gate named ["top"] of the first [define-fault-tree]
    (falling back to the first defined gate when there is no ["top"]).
    Supports [and]/[or]/[atleast] connectives, [gate] references and
    [basic-event] leaves; [exponential] rates in per-hour convert back
    to FIT.  Inverse of {!to_open_psa} up to gate naming — the writer
    suffixes a counter, so boolean structure, event ids and rates
    round-trip but gate ids do not.
    @raise Format_error on malformed or unsupported input. *)

val parse_open_psa : string -> Fault_tree.t
(** [of_open_psa] composed with the XML parser.
    @raise Modelio.Xml.Parse_error on ill-formed XML. *)

val load_open_psa : path:string -> Fault_tree.t
