open Ssam

let strip_prefix s prefix =
  let n = String.length prefix in
  if String.length s >= n && String.sub s 0 n = prefix then
    Some (String.sub s n (String.length s - n))
  else None

(* "loss:C" → C; voting channels ("loss:C:ch1") are not whole-component
   ids and drop out. *)
let component_of_loss_event event_id =
  match strip_prefix event_id "loss:" with
  | Some rest -> (
      match String.index_opt rest ':' with
      | Some _ -> None
      | None -> Some rest)
  | None -> None

let single_point_components tree =
  let sets = Cut_sets.minimal tree in
  List.filter_map component_of_loss_event (Cut_sets.singletons sets)

let single_points_via_bdd (c : Architecture.component) =
  match From_ssam.of_structure c with
  | exception From_ssam.No_paths _ -> []
  | tree ->
      Bdd.build ~order:(From_ssam.event_order c) tree
      |> Bdd.minimal_critical_sets ~max_cardinality:1
      |> List.concat_map (List.filter_map component_of_loss_event)
      |> List.sort_uniq String.compare

let analyse (c : Architecture.component) =
  let tree = From_ssam.generate c in
  let spf = single_point_components tree in
  let is_spf id = List.exists (String.equal id) spf in
  let rows =
    List.concat_map
      (fun (child : Architecture.component) ->
        let cid = Architecture.component_id child in
        List.map
          (fun (fm : Architecture.failure_mode) ->
            let fm_name = Base.display_name fm.Architecture.fm_meta in
            let loss = Architecture.is_loss_like fm.Architecture.nature in
            Fmea.Table.make_row
              ~impact:
                (if loss && is_spf cid then "singleton minimal cut set"
                 else "not a singleton cut set")
              ?warning:
                (if loss then None
                 else
                   Some
                     (Printf.sprintf
                        "failure mode '%s' is not loss-of-function; FTA route \
                         cannot classify it"
                        fm_name))
              ~component:cid ~component_fit:child.Architecture.fit
              ~failure_mode:fm_name
              ~distribution_pct:fm.Architecture.distribution_pct
              ~safety_related:(loss && is_spf cid) ())
          child.Architecture.failure_modes)
      c.Architecture.children
  in
  {
    Fmea.Table.system_name = Architecture.component_name c ^ " (via FTA)";
    rows;
  }

let agrees_with_path_fmea (c : Architecture.component) =
  let fta_table = analyse c in
  let path_table = Fmea.Path_fmea.analyse ~options:{ Fmea.Path_fmea.default_options with recurse = false } c in
  let sr t = List.sort String.compare (Fmea.Table.safety_related_components t) in
  sr fta_table = sr path_table
