(** FMEA tables derived from fault trees — the HiP-HOPS route
    ("FMEA tables can be generated from the fault trees", related work
    [14]), used as a cross-check baseline for the direct graph algorithm.

    A component's loss-of-function mode is safety-related iff its loss
    event forms a singleton minimal cut set.  The paper's contrast — "our
    generation of FMEA does not rely on the existence of a fault tree" —
    is what the benches measure: this route pays for cut-set computation
    where {!Fmea.Path_fmea} does not. *)

val analyse : Ssam.Architecture.component -> Fmea.Table.t
(** Generates the fault tree with {!From_ssam.generate}, computes minimal
    cut sets and classifies.  Raises {!From_ssam.No_paths} on components
    with no input→output paths, [Invalid_argument] when the cut-set
    expansion explodes. *)

val single_points_via_bdd : Ssam.Architecture.component -> string list
(** Single-point components read straight off the decision diagram:
    lower the composite with {!From_ssam.of_structure}, build the
    {!Bdd} under the {!From_ssam.event_order} hint and keep the
    cardinality-1 minimal critical sets that name whole components
    (sorted).  [[]] when the composite has no input→output structure.
    The third route to the same answer as {!Fmea.Path_fmea.single_points}
    and {!single_point_components} — cross-checked in the tests.
    Raises {!From_ssam.Cyclic} on cyclic diagrams. *)

val agrees_with_path_fmea : Ssam.Architecture.component -> bool
(** The cross-check: both routes find the same set of safety-related
    components.  Exposed so tests and benches can assert it on every
    generated system. *)
