open Ssam

exception No_paths of string
exception Cyclic of string list

let loss_event_id ~component_id = "loss:" ^ component_id

let loss_rate_fit (c : Architecture.component) =
  if c.Architecture.failure_modes = [] then c.Architecture.fit
  else
    List.fold_left
      (fun acc (fm : Architecture.failure_mode) ->
        if Architecture.is_loss_like fm.Architecture.nature then
          acc
          +. Reliability.Fit.share c.Architecture.fit
               ~distribution_pct:fm.Architecture.distribution_pct
        else acc)
      0.0 c.Architecture.failure_modes

(* Loss of one component: a basic event for leaves; redundant functions
   become k-out-of-N over per-channel events. *)
let component_loss (c : Architecture.component) =
  let cid = Architecture.component_id c in
  let base =
    Fault_tree.basic
      ~description:(Printf.sprintf "loss of function of %s" (Architecture.component_name c))
      ~rate_fit:(loss_rate_fit c)
      (loss_event_id ~component_id:cid)
  in
  let redundancy =
    List.find_map
      (fun (f : Architecture.func) ->
        match f.Architecture.tolerance with
        | Architecture.OneOoOne -> None
        | Architecture.OneOoTwo -> Some (2, 2)
        | Architecture.OneOoThree -> Some (3, 3)
        | Architecture.TwoOoThree -> Some (2, 3)
      )
      c.Architecture.functions
  in
  match redundancy with
  | None -> base
  | Some (k, n) ->
      (* The function survives unless k (or more) of the n channels fail. *)
      let channels =
        List.init n (fun i ->
            Fault_tree.basic
              ~description:
                (Printf.sprintf "channel %d of %s fails" (i + 1)
                   (Architecture.component_name c))
              ~rate_fit:(loss_rate_fit c)
              (Printf.sprintf "%s:ch%d" (loss_event_id ~component_id:cid) (i + 1)))
      in
      Fault_tree.koon (loss_event_id ~component_id:cid ^ ":vote") ~k channels

(* ---------- structural lowering (the Safety_Profile five steps) ------

   [generate] below multiplies the tree out over enumerated simple
   paths — exponential on wide diagrams.  [of_structure] assembles the
   same boolean function compositionally over the child connection
   graph instead:

     U(v) = loss(v)  OR  AND over predecessors p of U(p)

   with U(source) = loss(source) (its input comes from the boundary)
   and TOP = AND over sinks of U(sink).  On a DAG this is equal to the
   AND-over-paths form by distributivity and absorption, and the tree
   is linear in the graph, not in the path count.  Cycles have no
   well-founded U; {!Cyclic} tells the caller to fall back to
   [generate]. *)

(* Kahn's algorithm; parallel edges cancel out because [successors]
   repeats them exactly as often as [in_degree] counts them. *)
let topological_order g =
  let n = Graph.Digraph.node_count g in
  let indeg = Array.init n (Graph.Digraph.in_degree g) in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    Array.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      (Graph.Digraph.successors g u)
  done;
  if !seen < n then begin
    let stuck = ref [] in
    for i = n - 1 downto 0 do
      if indeg.(i) > 0 then stuck := Graph.Digraph.name g i :: !stuck
    done;
    raise (Cyclic !stuck)
  end;
  List.rev !order

let child_lookup (c : Architecture.component) g =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ch -> Hashtbl.replace tbl (Architecture.component_id ch) ch)
    c.Architecture.children;
  fun i -> Hashtbl.find tbl (Graph.Digraph.name g i)

let of_structure (c : Architecture.component) =
  let cid = Architecture.component_id c in
  (* 1. index the components into the child connection structure *)
  let g, sources, sinks = Fmea.Path_fmea.child_structure c in
  if sources = [] || sinks = [] then raise (No_paths cid);
  let n = Graph.Digraph.node_count g in
  let child_of = child_lookup c g in
  (* 2. instantiate the per-pattern failure-logic templates *)
  let template = Array.init n (fun i -> component_loss (child_of i)) in
  (* 3. dependency-sort the connections (cycle ⇒ caller falls back) *)
  let order = topological_order g in
  let is_source = Array.make n false in
  List.iter (fun s -> is_source.(s) <- true) sources;
  (* 4. assemble U(v) bottom-up.  [None] is the constant-true U of a
     statically unreachable node; constant-true conjuncts drop out of
     every AND by absorption, exactly as the corresponding missing
     paths never appear in [generate]'s enumeration. *)
  let unreachable : Fault_tree.t option array = Array.make n None in
  List.iter
    (fun v ->
      let u =
        if is_source.(v) then Some template.(v)
        else
          let preds =
            Array.to_list (Graph.Digraph.predecessors g v)
            |> List.sort_uniq compare
          in
          match List.filter_map (fun p -> unreachable.(p)) preds with
          | [] -> None (* no (live) input at all: never reachable *)
          | live ->
              let id = Graph.Digraph.name g v in
              let blocked =
                match live with
                | [ one ] -> one
                | many -> Fault_tree.and_ ("blocked:" ^ id) many
              in
              Some (Fault_tree.or_ ("unreach:" ^ id) [ template.(v); blocked ])
      in
      unreachable.(v) <- u)
    order;
  (* 5. top event: the output is unreachable at every sink (the
     quantification step of the pipeline lives in {!Quant}). *)
  let conjuncts =
    List.filter_map (fun s -> unreachable.(s)) (List.sort_uniq compare sinks)
  in
  match conjuncts with
  | [] -> raise (No_paths cid)
  | [ single ] -> single
  | many -> Fault_tree.and_ (cid ^ "-output-unreachable") many

let event_order (c : Architecture.component) =
  let g, sources, _ = Fmea.Path_fmea.child_structure c in
  let child_of = child_lookup c g in
  Graph.Dominators.order_hint g ~sources
  |> List.concat_map (fun i ->
         Fault_tree.basic_events (component_loss (child_of i))
         |> List.map (fun (e : Fault_tree.event) -> e.Fault_tree.event_id))

let of_diagram ~reliability diagram =
  of_structure (Blockdiag.Transform.functional_root ~reliability diagram)

let generate (c : Architecture.component) =
  let paths = Fmea.Path_fmea.paths c in
  if paths = [] then raise (No_paths (Architecture.component_id c));
  let path_gates =
    List.mapi
      (fun i path ->
        Fault_tree.or_
          (Printf.sprintf "path%d-broken" (i + 1))
          (List.map component_loss path))
      paths
  in
  match path_gates with
  | [ single ] -> single
  | gates ->
      Fault_tree.and_
        (Printf.sprintf "%s-output-unreachable" (Architecture.component_id c))
        gates
