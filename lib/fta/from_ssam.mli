(** Fault-tree generation from SSAM architectures.

    For a composite component, the top event "output unreachable" holds
    exactly when every input→output path is broken, and a path is broken
    when some component on it loses function:

    {v TOP = AND over paths p ( OR over components c ∈ p  loss(c) ) v}

    Basic events are the loss-of-function failure modes of leaf
    components, with rates from FIT × distribution.  Components whose
    functions declare redundant tolerances become k-out-of-N gates.

    Consistency theorem (tested): the singleton minimal cut sets of the
    generated tree are exactly the safety-related components found by
    {!Fmea.Path_fmea} — the basis of the HiP-HOPS-style cross-check in
    {!Fmea_from_fta}. *)

exception No_paths of string
(** The composite has no input→output paths to analyse. *)

exception Cyclic of string list
(** {!of_structure} found a dependency cycle among the child
    connections; the payload lists the children on (or blocked behind)
    the cycle.  Fall back to the path-based {!generate}, which handles
    cyclic diagrams via simple-path enumeration. *)

val loss_event_id : component_id:string -> string
(** ["loss:<component>"] — basic-event naming convention. *)

val generate : Ssam.Architecture.component -> Fault_tree.t
(** The AND-over-paths construction by explicit path enumeration.
    Raises {!No_paths}; exponential on wide diagrams (it inherits the
    {!Fmea.Path_fmea.max_paths} cap) but correct on cyclic ones. *)

val of_structure : Ssam.Architecture.component -> Fault_tree.t
(** The Safety_Profile five-step pipeline: (1) index the components
    into the child connection graph, (2) instantiate each component's
    failure-logic template ([component loss], redundant tolerances as
    k-out-of-N votes), (3) dependency-sort the connections,
    (4) assemble bottom-up — [U(v) = loss(v) ∨ ⋀ preds U(p)] with
    [U(source) = loss(source)] and top [⋀ sinks U(sink)] — and
    (5) hand off to {!Quant} for quantification.  On a DAG the result
    denotes the same boolean function as {!generate} (QCheck-tested:
    identical minimal cut sets) but its size is linear in the graph
    rather than in the path count.  Raises {!No_paths} when no
    source→sink structure exists and {!Cyclic} on cyclic diagrams. *)

val event_order : Ssam.Architecture.component -> string list
(** Basic-event ordering hint for {!Bdd.build}: children sorted along
    dominator chains from the sources ({!Graph.Dominators.order_hint}),
    expanded to their template events — keeps serially-dependent events
    adjacent, where BDDs of series-parallel functions stay small. *)

val of_diagram :
  reliability:Reliability.Reliability_model.t ->
  Blockdiag.Diagram.t ->
  Fault_tree.t
(** {!of_structure} over the functional root of an electrical block
    diagram ({!Blockdiag.Transform.functional_root}): sources feed,
    loads/controllers sink, grounds drop out.  Same exceptions as
    {!of_structure}. *)

val loss_rate_fit : Ssam.Architecture.component -> float
(** Σ FIT × distribution over the component's loss-of-function modes (the
    whole FIT when it has no failure modes — pessimistic default). *)
