type probabilities = (string * float) list

let event_probabilities ?(mission_hours = 10_000.0) tree =
  List.map
    (fun (e : Fault_tree.event) ->
      let p =
        match e.Fault_tree.rate_fit with
        | Some fit -> Reliability.Fit.failure_probability fit ~mission_hours
        | None -> 0.0
      in
      (e.Fault_tree.event_id, p))
    (Fault_tree.basic_events tree)

let prob probabilities id =
  Option.value ~default:0.0 (List.assoc_opt id probabilities)

let rec top_probability_independent tree probabilities =
  match tree with
  | Fault_tree.Basic e -> prob probabilities e.Fault_tree.event_id
  | Fault_tree.And (_, cs) ->
      List.fold_left
        (fun acc c -> acc *. top_probability_independent c probabilities)
        1.0 cs
  | Fault_tree.Or (_, cs) ->
      1.0
      -. List.fold_left
           (fun acc c -> acc *. (1.0 -. top_probability_independent c probabilities))
           1.0 cs
  | Fault_tree.Koon (_, k, cs) ->
      (* Probability that at least k of the children fail: enumerate child
         outcome combinations (children counts are small in practice). *)
      let ps = List.map (fun c -> top_probability_independent c probabilities) cs in
      let rec go ps failed_needed =
        match ps with
        | [] -> if failed_needed <= 0 then 1.0 else 0.0
        | p :: rest ->
            (p *. go rest (failed_needed - 1))
            +. ((1.0 -. p) *. go rest failed_needed)
      in
      go ps k

(* BDD-exact quantification: one Shannon-expansion pass.  Shared events
   collapse on the canonical BDD, so repetition is handled exactly —
   the legacy recursion above would multiply a repeated event's
   probability once per occurrence. *)
let top_probability_exact tree probabilities =
  Bdd.probability (Bdd.build tree) (prob probabilities)

let birnbaum tree probabilities =
  Bdd.birnbaum (Bdd.build tree) (prob probabilities)

let fussell_vesely tree probabilities =
  Bdd.fussell_vesely (Bdd.build tree) (prob probabilities)

let cut_set_probability probabilities set =
  List.fold_left (fun acc id -> acc *. prob probabilities id) 1.0 set

let rare_event_bound sets probabilities =
  List.fold_left (fun acc s -> acc +. cut_set_probability probabilities s) 0.0 sets

let esary_proschan sets probabilities =
  1.0
  -. List.fold_left
       (fun acc s -> acc *. (1.0 -. cut_set_probability probabilities s))
       1.0 sets

let importance sets probabilities =
  let total = rare_event_bound sets probabilities in
  if total <= 0.0 then []
  else
    let events =
      List.sort_uniq String.compare (List.concat sets)
    in
    List.map
      (fun id ->
        let contribution =
          List.fold_left
            (fun acc s ->
              if List.mem id s then acc +. cut_set_probability probabilities s
              else acc)
            0.0 sets
        in
        (id, contribution /. total))
      events
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
