(** Quantitative fault-tree analysis.

    Basic-event probabilities come from their FIT rates over a mission
    time: [p = 1 - exp(-λ t)] with λ in failures/hour.  Events without a
    rate can be given explicitly. *)

type probabilities = (string * float) list
(** Basic-event id → probability in [0,1]. *)

val event_probabilities :
  ?mission_hours:float -> Fault_tree.t -> probabilities
(** From each event's [rate_fit] (default mission 10_000 h — roughly a
    vehicle lifetime of operation); events without a rate get probability
    0 and should be overridden. *)

val top_probability_exact :
  Fault_tree.t -> probabilities -> float
(** Exact top-event probability by Shannon expansion over the
    {!Bdd} of the tree: one memoised pass on the canonical diagram, so
    basic events repeated under several gates are handled {e exactly}
    (the historical repeated-event caveat is gone). *)

val top_probability_independent :
  Fault_tree.t -> probabilities -> float
(** @deprecated The pre-BDD evaluation by recursive gate composition
    (AND = product, OR = 1-Π(1-p), k-oo-n by enumeration over children).
    Events appearing under several gates are treated as {e independent
    copies}, which over- or under-estimates whenever events repeat.  It
    agrees with {!top_probability_exact} exactly on repetition-free
    trees (QCheck-tested) and is kept only as that differential
    oracle. *)

val birnbaum : Fault_tree.t -> probabilities -> (string * float) list
(** BDD-based Birnbaum importance per basic event:
    [P(top | e) - P(top | ¬e)], descending. *)

val fussell_vesely :
  Fault_tree.t -> probabilities -> (string * float) list
(** BDD-based Fussell–Vesely (fractional) importance per basic event:
    the share of top-event probability removed by making the event
    perfectly reliable — exact, unlike the rare-event approximation of
    {!importance}.  Empty when the top probability is 0. *)

val rare_event_bound : Cut_sets.cut_set list -> probabilities -> float
(** Σ over minimal cut sets of Π p — the standard upper bound, tight for
    small probabilities. *)

val esary_proschan : Cut_sets.cut_set list -> probabilities -> float
(** [1 - Π (1 - Π p)] — a tighter upper bound than rare-event. *)

val importance : Cut_sets.cut_set list -> probabilities -> (string * float) list
(** Fussell-Vesely importance per basic event: share of the rare-event sum
    contributed by cut sets containing the event; descending. *)
