type t = { size : int; words : int array }

let bits_per_word = 63

let create size =
  if size < 0 then invalid_arg "Bitset.create: negative size";
  { size; words = Array.make ((size + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.size

let check t i =
  if i < 0 || i >= t.size then
    invalid_arg (Printf.sprintf "Bitset: index %d outside [0,%d)" i t.size)

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let union_into ~into s =
  if into.size <> s.size then invalid_arg "Bitset.union_into: size mismatch";
  let changed = ref false in
  Array.iteri
    (fun i w ->
      let merged = into.words.(i) lor w in
      if merged <> into.words.(i) then begin
        into.words.(i) <- merged;
        changed := true
      end)
    s.words;
  !changed

let subset a b =
  if a.size <> b.size then invalid_arg "Bitset.subset: size mismatch";
  let n = Array.length a.words in
  let rec go i =
    i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let equal a b = a.size = b.size && a.words = b.words

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let copy t = { size = t.size; words = Array.copy t.words }
