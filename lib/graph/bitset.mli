(** Dense fixed-size bitsets over [0 .. n-1], packed 63 bits per word.

    The reachability and dominator kernels mark node sets constantly;
    a [bool array] costs 8 bytes per node and a [Hashtbl] far more.
    These sets cost one word per 63 nodes and support the constant-time
    membership plus word-at-a-time union the BFS sweeps need. *)

type t

val create : int -> t
(** All-clear set over a universe of the given size. *)

val length : t -> int
(** Universe size (the [n] passed to {!create}). *)

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int
(** Population count, O(words). *)

val union_into : into:t -> t -> bool
(** [union_into ~into s] ors [s] into [into]; returns [true] iff [into]
    changed.  Universes must match. *)

val subset : t -> t -> bool
(** [subset a b] — every member of [a] is in [b], word-at-a-time.  The
    partial order the dataflow fixpoint's convergence test uses.
    Universes must match. *)

val equal : t -> t -> bool
(** Same universe and same members. *)

val iter : (int -> unit) -> t -> unit
(** Members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val copy : t -> t
