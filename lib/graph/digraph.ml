type t = {
  names : string array;  (* index -> id *)
  ids : (string, int) Hashtbl.t;  (* id -> index *)
  fwd_off : int array;  (* CSR offsets, length n+1 *)
  fwd : int array;  (* packed successor indices *)
  bwd_off : int array;
  bwd : int array;
}

(* Build one CSR direction from an endpoint pair list.  Counting pass
   then placement pass; within a node, targets keep edge-list order. *)
let csr n pairs =
  let off = Array.make (n + 1) 0 in
  List.iter (fun (f, _) -> off.(f + 1) <- off.(f + 1) + 1) pairs;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let packed = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  List.iter
    (fun (f, t) ->
      packed.(cursor.(f)) <- t;
      cursor.(f) <- cursor.(f) + 1)
    pairs;
  (off, packed)

let of_edges ?(nodes = []) edges =
  let ids = Hashtbl.create 64 in
  let rev_names = ref [] in
  let count = ref 0 in
  let intern id =
    match Hashtbl.find_opt ids id with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add ids id i;
        rev_names := id :: !rev_names;
        incr count;
        i
  in
  List.iter (fun id -> ignore (intern id)) nodes;
  (* Intern the source before the target — OCaml evaluates tuple
     components right-to-left, so [(intern f, intern t)] would number
     targets first. *)
  let int_edges =
    List.map
      (fun (f, t) ->
        let fi = intern f in
        let ti = intern t in
        (fi, ti))
      edges
  in
  let n = !count in
  let names = Array.make n "" in
  List.iteri (fun i id -> names.(n - 1 - i) <- id) !rev_names;
  let fwd_off, fwd = csr n int_edges in
  let bwd_off, bwd = csr n (List.map (fun (f, t) -> (t, f)) int_edges) in
  { names; ids; fwd_off; fwd; bwd_off; bwd }

let node_count t = Array.length t.names

let edge_count t = Array.length t.fwd

let index t id = Hashtbl.find_opt t.ids id

let name t i =
  if i < 0 || i >= Array.length t.names then
    invalid_arg (Printf.sprintf "Digraph.name: index %d outside [0,%d)" i
                   (Array.length t.names));
  t.names.(i)

let nodes t = Array.to_list t.names

let slice off packed i =
  Array.sub packed off.(i) (off.(i + 1) - off.(i))

let successors t i = slice t.fwd_off t.fwd i

let predecessors t i = slice t.bwd_off t.bwd i

let names_of t arr = Array.to_list (Array.map (fun i -> t.names.(i)) arr)

let successor_names t id =
  match index t id with None -> [] | Some i -> names_of t (successors t i)

let predecessor_names t id =
  match index t id with None -> [] | Some i -> names_of t (predecessors t i)

let out_degree t i = t.fwd_off.(i + 1) - t.fwd_off.(i)

let in_degree t i = t.bwd_off.(i + 1) - t.bwd_off.(i)

let bfs off packed n seeds =
  let seen = Bitset.create n in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not (Bitset.mem seen s) then begin
        Bitset.add seen s;
        Queue.add s queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for k = off.(u) to off.(u + 1) - 1 do
      let v = packed.(k) in
      if not (Bitset.mem seen v) then begin
        Bitset.add seen v;
        Queue.add v queue
      end
    done
  done;
  seen

let reachable_from t seeds = bfs t.fwd_off t.fwd (node_count t) seeds

let coreachable_of t seeds = bfs t.bwd_off t.bwd (node_count t) seeds

let undirected_components t =
  let n = node_count t in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let c = !count in
      incr count;
      comp.(s) <- c;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        let visit v =
          if comp.(v) < 0 then begin
            comp.(v) <- c;
            Queue.add v queue
          end
        in
        Array.iter visit (successors t u);
        Array.iter visit (predecessors t u)
      done
    end
  done;
  (comp, !count)
