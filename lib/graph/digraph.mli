(** Compact int-indexed digraph over interned string ids.

    The analysis layers (path FMEA, SSAM validation, netlist
    conversion) all derive graph facts from edge lists of string ids —
    and until now each re-derived them with O(E) [List.filter_map]
    scans per query.  This module interns every id once into a dense
    [0 .. n-1] range and stores the adjacency in CSR form (one offsets
    array + one packed targets array per direction), so successor and
    predecessor queries are O(out-degree) array slices and the
    traversal kernels ({!Scc}, {!Dominators}, {!reachable_from}) touch
    contiguous memory.

    Construction is deterministic: node indices follow the order of
    [nodes] (first occurrence wins), then first occurrence in the edge
    list for endpoints not listed; parallel edges are kept (they do not
    affect any kernel's answer but preserve the caller's multiplicity). *)

type t

val of_edges : ?nodes:string list -> (string * string) list -> t
(** [of_edges ~nodes edges] interns [nodes] (in order) plus every edge
    endpoint (in edge order) and builds both adjacency directions. *)

val node_count : t -> int

val edge_count : t -> int

val index : t -> string -> int option
(** Interned index of an id, if present. *)

val name : t -> int -> string
(** Inverse of {!index}.  Raises [Invalid_argument] outside [0,n). *)

val nodes : t -> string list
(** All interned ids, in index order. *)

val successors : t -> int -> int array
(** Shared CSR slice — do not mutate. *)

val predecessors : t -> int -> int array

val successor_names : t -> string -> string list
(** Successors of an id, in edge-insertion order; [[]] for unknown ids.
    Drop-in replacement for the [List.filter_map] edge scans. *)

val predecessor_names : t -> string -> string list

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val reachable_from : t -> int list -> Bitset.t
(** Forward BFS over the CSR adjacency: every node reachable from the
    seed set (the seeds themselves included). *)

val coreachable_of : t -> int list -> Bitset.t
(** Backward BFS: every node from which some seed is reachable. *)

val undirected_components : t -> int array * int
(** Connected components ignoring edge direction:
    [(component_of_node, count)].  Component ids are dense and ordered
    by each component's smallest node index, so numbering is
    deterministic — the union-find replacement for netlist merging. *)
