(* Lengauer–Tarjan with the simple (path-compression) eval/link —
   O(E log V), linear in practice on block diagrams.  The kernel works
   over closures so the same code serves both the plain digraph and the
   virtually-augmented graph of [on_every_path] without materialising a
   second CSR. *)

let lt ~n ~root ~succ ~pred =
  (* DFS numbering (iterative: diagrams can be long chains). *)
  let parent = Array.make n (-1) in
  let semi = Array.make n (-1) in  (* dfs number; -1 = unreachable *)
  let vertex = Array.make n (-1) in  (* dfs number -> node *)
  let next = ref 0 in
  let stack = Stack.create () in
  Stack.push (root, succ root, ref 0) stack;
  semi.(root) <- !next;
  vertex.(!next) <- root;
  incr next;
  while not (Stack.is_empty stack) do
    let u, s, cursor = Stack.top stack in
    if !cursor < Array.length s then begin
      let v = s.(!cursor) in
      incr cursor;
      if semi.(v) < 0 then begin
        parent.(v) <- u;
        semi.(v) <- !next;
        vertex.(!next) <- v;
        incr next;
        Stack.push (v, succ v, ref 0) stack
      end
    end
    else ignore (Stack.pop stack)
  done;
  let reached = !next in
  (* Forest for eval/link, with path compression on [ancestor]. *)
  let ancestor = Array.make n (-1) in
  let label = Array.init n (fun i -> i) in
  let rec compress v =
    let a = ancestor.(v) in
    if ancestor.(a) >= 0 then begin
      compress a;
      if semi.(label.(a)) < semi.(label.(v)) then label.(v) <- label.(a);
      ancestor.(v) <- ancestor.(a)
    end
  in
  let eval v =
    if ancestor.(v) < 0 then v
    else begin
      compress v;
      label.(v)
    end
  in
  let bucket = Array.make n [] in
  let idom = Array.make n (-1) in
  for i = reached - 1 downto 1 do
    let w = vertex.(i) in
    Array.iter
      (fun v ->
        if semi.(v) >= 0 then begin
          let u = eval v in
          if semi.(u) < semi.(w) then semi.(w) <- semi.(u)
        end)
      (pred w);
    bucket.(vertex.(semi.(w))) <- w :: bucket.(vertex.(semi.(w)));
    let p = parent.(w) in
    ancestor.(w) <- p;
    List.iter
      (fun v ->
        let u = eval v in
        idom.(v) <- (if semi.(u) < semi.(v) then u else p))
      bucket.(p);
    bucket.(p) <- []
  done;
  for i = 1 to reached - 1 do
    let w = vertex.(i) in
    if idom.(w) <> vertex.(semi.(w)) then idom.(w) <- idom.(idom.(w))
  done;
  idom.(root) <- root;
  idom

let idoms g ~root =
  let n = Digraph.node_count g in
  if root < 0 || root >= n then invalid_arg "Dominators.idoms: bad root";
  lt ~n ~root ~succ:(Digraph.successors g) ~pred:(Digraph.predecessors g)

let dominators ~idom v =
  if v < 0 || v >= Array.length idom || idom.(v) < 0 then []
  else begin
    let rec up acc u = if idom.(u) = u then List.rev (u :: acc) else up (u :: acc) idom.(u) in
    up [] v
  end

let order_hint g ~sources =
  let n = Digraph.node_count g in
  if n = 0 then []
  else begin
    let sources =
      List.sort_uniq Int.compare
        (List.filter (fun v -> v >= 0 && v < n) sources)
    in
    match sources with
    | [] -> List.init n (fun i -> i)
    | _ ->
        (* BFS depth from the virtual super-source (max_int = unreachable). *)
        let depth = Array.make n max_int in
        let q = Queue.create () in
        List.iter
          (fun s ->
            if depth.(s) = max_int then begin
              depth.(s) <- 0;
              Queue.add s q
            end)
          sources;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          Array.iter
            (fun v ->
              if depth.(v) = max_int then begin
                depth.(v) <- depth.(u) + 1;
                Queue.add v q
              end)
            (Digraph.successors g u)
        done;
        (* Dominator-chain length w.r.t. the same virtual super-source:
           nodes deep in a chain of mandatory predecessors sort late, so
           serially-dependent variables end up adjacent. *)
        let s = n in
        let src = Array.of_list sources in
        let empty = [||] and from_s = [| s |] in
        let succ u = if u = s then src else Digraph.successors g u in
        let pred u =
          if u = s then empty
          else begin
            let base = Digraph.predecessors g u in
            if List.exists (Int.equal u) sources then Array.append base from_s
            else base
          end
        in
        let idom = lt ~n:(n + 1) ~root:s ~succ ~pred in
        let chain = Array.make n max_int in
        for v = 0 to n - 1 do
          if idom.(v) >= 0 then chain.(v) <- List.length (dominators ~idom v)
        done;
        List.stable_sort
          (fun a b ->
            match Int.compare chain.(a) chain.(b) with
            | 0 -> (
                match Int.compare depth.(a) depth.(b) with
                | 0 -> Int.compare a b
                | c -> c)
            | c -> c)
          (List.init n (fun i -> i))
  end

let on_every_path g ~sources ~sinks =
  if sources = [] || sinks = [] then None
  else begin
    let n = Digraph.node_count g in
    let s = n and t = n + 1 in
    let src = Array.of_list sources in
    let sink_set = Bitset.create n in
    List.iter (Bitset.add sink_set) sinks;
    let to_t = [| t |] and empty = [| |] in
    let succ u =
      if u = s then src
      else if u = t then empty
      else begin
        let base = Digraph.successors g u in
        if Bitset.mem sink_set u then Array.append base to_t else base
      end
    in
    let snk = Array.of_list sinks in
    let from_s = [| s |] in
    let pred u =
      if u = t then snk
      else if u = s then empty
      else begin
        let base = Digraph.predecessors g u in
        if List.exists (Int.equal u) sources then Array.append base from_s
        else base
      end
    in
    let idom = lt ~n:(n + 2) ~root:s ~succ ~pred in
    if idom.(t) < 0 then None (* no source→sink path *)
    else begin
      let on = Bitset.create n in
      let rec up v =
        if v <> s then begin
          if v <> t then Bitset.add on v;
          up idom.(v)
        end
      in
      up idom.(t);
      Some on
    end
  end
