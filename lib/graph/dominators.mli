(** Lengauer–Tarjan dominators, and the "on every input→output path"
    query the path FMEA is really asking.

    A node [d] dominates [w] (w.r.t. a root [r]) when every path from
    [r] to [w] passes through [d].  The paper's Algorithm 1 classifies
    a component as a single-point fault exactly when it lies on every
    input→output path of the enclosing block — i.e. when it dominates a
    virtual super-sink in the graph rooted at a virtual super-source.
    That reformulation replaces exponential simple-path enumeration
    (the old 20 000-path cap) with one near-linear dominator-tree
    computation, exact on any diagram, cyclic ones included: a node is
    on every simple source→sink path iff it is on every source→sink
    walk, which is precisely dominance of the sink. *)

val idoms : Digraph.t -> root:int -> int array
(** Immediate dominators w.r.t. [root]: [idoms.(root) = root];
    [idoms.(v) = -1] for nodes unreachable from [root].  The classic
    Lengauer–Tarjan algorithm with path compression — O(E log V). *)

val dominators : idom:int array -> int -> int list
(** The full dominator set of a node: the idom chain from the node up
    to (and including) the root, nearest first.  [[]] if the node is
    unreachable. *)

val order_hint : Digraph.t -> sources:int list -> int list
(** A variable-ordering heuristic for decision-diagram kernels: all
    nodes, sorted by (dominator-chain length from a virtual super-source
    feeding every source, BFS depth, node index).  Serially-dependent
    nodes — those stacked along a dominator chain — come out adjacent,
    which keeps the BDD of a series-parallel structure function small.
    Unreachable nodes follow the reachable ones in index order; with no
    sources the plain index order is returned. *)

val on_every_path :
  Digraph.t -> sources:int list -> sinks:int list -> Bitset.t option
(** Nodes lying on {e every} source→sink simple path, computed as the
    dominators of a virtual super-sink (fed by every sink) from a
    virtual super-source (feeding every source).  The virtual endpoints
    are excluded from the result; sources/sinks themselves are reported
    when they qualify (e.g. a sole source is on every path).  [None]
    when no source→sink path exists at all — the caller decides what a
    pathless block means (the FMEA reports "alternative paths remain",
    matching the enumeration semantics). *)
