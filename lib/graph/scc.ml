type result = { component : int array; count : int }

(* Tarjan's algorithm, made iterative with an explicit work stack: each
   frame is (node, next-successor-offset).  Lowlinks and the SCC stack
   are the classic arrays. *)
let compute g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let count = ref 0 in
  let work = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      Stack.push (root, ref 0) work;
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      scc_stack := root :: !scc_stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty work) do
        let u, cursor = Stack.top work in
        let succ = Digraph.successors g u in
        if !cursor < Array.length succ then begin
          let v = succ.(!cursor) in
          incr cursor;
          if index.(v) < 0 then begin
            index.(v) <- !next_index;
            lowlink.(v) <- !next_index;
            incr next_index;
            scc_stack := v :: !scc_stack;
            on_stack.(v) <- true;
            Stack.push (v, ref 0) work
          end
          else if on_stack.(v) then
            lowlink.(u) <- min lowlink.(u) index.(v)
        end
        else begin
          ignore (Stack.pop work);
          (match Stack.top_opt work with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
          | None -> ());
          if lowlink.(u) = index.(u) then begin
            let c = !count in
            incr count;
            let rec pop () =
              match !scc_stack with
              | [] -> ()
              | v :: rest ->
                  scc_stack := rest;
                  on_stack.(v) <- false;
                  component.(v) <- c;
                  if v <> u then pop ()
            in
            pop ()
          end
        end
      done
    end
  done;
  { component; count = !count }

let condense g r =
  let n = Digraph.node_count g in
  (* Deterministic SCC names: lowest-index member's id. *)
  let representative = Array.make r.count (-1) in
  for v = n - 1 downto 0 do
    representative.(r.component.(v)) <- v
  done;
  let scc_name c = Digraph.name g representative.(c) in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    Array.iter
      (fun v ->
        let cu = r.component.(u) and cv = r.component.(v) in
        if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
          Hashtbl.add seen (cu, cv) ();
          edges := (scc_name cu, scc_name cv) :: !edges
        end)
      (Digraph.successors g u)
  done;
  Digraph.of_edges
    ~nodes:(List.init r.count scc_name)
    (List.rev !edges)
