(** Tarjan strongly-connected components and condensation.

    Block diagrams with feedback (control loops, watchdog resets) put
    cycles into the connection graph; condensing each SCC to one node
    yields the DAG the path-counting and lint layers want, while the
    dominator kernel handles cycles natively. *)

type result = {
  component : int array;  (** node index -> SCC id *)
  count : int;  (** number of SCCs *)
}

val compute : Digraph.t -> result
(** Iterative Tarjan (no recursion — diagrams can be deep chains).
    SCC ids are in {e reverse topological order}: if any edge goes from
    SCC [a] to SCC [b] (with [a <> b]) then [component a > component b]. *)

val condense : Digraph.t -> result -> Digraph.t
(** The condensation DAG: one node per SCC (named after its
    lowest-index member, so naming is deterministic), one edge per
    cross-SCC edge with duplicates collapsed. *)
