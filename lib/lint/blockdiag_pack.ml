(* Block-diagram / circuit pack: structural wiring checks plus the
   analysis-setup checks (`--monitor`, `--exclude`) that only the lint
   driver sees the arguments for. *)

open Blockdiag.Diagram

let rule id severity title = { Rule.id; severity; category = Rule.Block_diagram; title }

let blk001 = rule "BLK001" Rule.Error "connection references a missing block"
let blk002 = rule "BLK002" Rule.Error "connection into a missing port"
let blk003 = rule "BLK003" Rule.Error "duplicate block id"
let blk004 = rule "BLK004" Rule.Error "port direction violation"
let blk005 = rule "BLK005" Rule.Warning "electrical or input port left unconnected"
let blk006 = rule "BLK006" Rule.Warning "block type outside the supported catalogue"
let blk007 = rule "BLK007" Rule.Error "--monitor names a missing or non-sensor block"
let blk008 = rule "BLK008" Rule.Warning "no sensor observes the design"
let blk009 = rule "BLK009" Rule.Error "--exclude names a block not in the diagram"
let blk010 = rule "BLK010" Rule.Warning "excluded block still covered by SM catalogue rows"

let rules =
  [ blk001; blk002; blk003; blk004; blk005; blk006; blk007; blk008; blk009; blk010 ]

let is_sensor_type ty =
  match Circuit.Library.find ty with
  | Some info ->
      info.Circuit.Library.block_type = "current_sensor"
      || info.Circuit.Library.block_type = "voltage_sensor"
  | None -> false

(* Canonical catalogue name of a block type, for alias-insensitive
   comparisons ("MC" and "microcontroller" are the same type). *)
let canon_type ty =
  match Circuit.Library.find ty with
  | Some info -> info.Circuit.Library.block_type
  | None -> String.lowercase_ascii ty

let find_port b name =
  List.find_opt (fun p -> p.port_name = name) b.ports

let check_level ?file acc level =
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  let ids = List.map (fun b -> b.block_id) level.blocks in
  List.iter
    (fun id ->
      if List.length (List.filter (String.equal id) ids) > 1 then
        diag ~element:id ~hint:"rename one of the blocks" blk003
          (Printf.sprintf "%s: duplicate block id '%s'" level.diagram_name id))
    (List.sort_uniq String.compare ids);
  let endpoint_port ep =
    match find_block level ep.ep_block with
    | None ->
        diag ~element:ep.ep_block
          ~hint:"add the block or fix the connection" blk001
          (Printf.sprintf "%s: connection references missing block '%s'"
             level.diagram_name ep.ep_block);
        None
    | Some b -> (
        match find_port b ep.ep_port with
        | None ->
            diag ~element:ep.ep_block blk002
              (Printf.sprintf "%s: block '%s' has no port '%s'"
                 level.diagram_name ep.ep_block ep.ep_port);
            None
        | Some p -> Some p)
  in
  List.iter
    (fun c ->
      match (endpoint_port c.from_ep, endpoint_port c.to_ep) with
      | Some p1, Some p2 ->
          let bad what =
            diag ~element:c.from_ep.ep_block blk004
              (Printf.sprintf "%s: %s (%s.%s -> %s.%s)" level.diagram_name what
                 c.from_ep.ep_block c.from_ep.ep_port c.to_ep.ep_block
                 c.to_ep.ep_port)
          in
          (match (p1.port_kind, p2.port_kind) with
          | Out_port, Out_port -> bad "two outputs wired together"
          | In_port, In_port -> bad "two inputs wired together"
          | Conserving, (In_port | Out_port) | (In_port | Out_port), Conserving
            ->
              bad "conserving port wired to a signal port"
          | Conserving, Conserving | Out_port, In_port | In_port, Out_port -> ())
      | _ -> ())
    level.connections;
  (* Floating terminals: a conserving or input port no connection at this
     level touches.  Unused signal *outputs* are fine (an unread
     measurement), so they are not reported. *)
  let touched b p =
    List.exists
      (fun c ->
        (c.from_ep.ep_block = b && c.from_ep.ep_port = p)
        || (c.to_ep.ep_block = b && c.to_ep.ep_port = p))
      level.connections
  in
  List.iter
    (fun b ->
      List.iter
        (fun p ->
          match p.port_kind with
          | Out_port -> ()
          | Conserving | In_port ->
              if not (touched b.block_id p.port_name) then
                diag ~element:b.block_id
                  ~hint:"wire the port or remove the block" blk005
                  (Printf.sprintf "%s: port '%s.%s' is never connected"
                     level.diagram_name b.block_id p.port_name))
        b.ports)
    level.blocks;
  List.iter
    (fun b ->
      match Circuit.Library.find b.block_type with
      | Some { Circuit.Library.support = Circuit.Library.Unsupported; _ } ->
          diag ~element:b.block_id
            ~hint:"model it as an annotated subsystem (the paper's work-around)"
            blk006
            (Printf.sprintf "%s: block type '%s' is unsupported"
               level.diagram_name b.block_type)
      | Some _ -> ()
      | None ->
          diag ~element:b.block_id blk006
            (Printf.sprintf "%s: unknown block type '%s'" level.diagram_name
               b.block_type))
    level.blocks

let run (input : Input.t) =
  match input.Input.diagram with
  | None -> []
  | Some (path, diagram) ->
      let file = path in
      let acc = ref [] in
      let rec go level =
        check_level ~file acc level;
        List.iter go level.subsystems
      in
      go diagram;
      let diag ?element ?hint rule msg =
        acc := Rule.diagnostic ?element ~file ?hint ~rule msg :: !acc
      in
      let blocks = all_blocks diagram in
      let sensors =
        List.filter (fun b -> is_sensor_type b.block_type) blocks
      in
      List.iter
        (fun id ->
          match List.find_opt (fun b -> b.block_id = id) blocks with
          | None ->
              diag ~element:id blk007
                (Printf.sprintf "monitored sensor '%s' is not in the diagram" id)
          | Some b ->
              if not (is_sensor_type b.block_type) then
                diag ~element:id blk007
                  (Printf.sprintf
                     "monitored block '%s' is a %s, not a sensor" id
                     b.block_type))
        input.Input.monitored;
      if input.Input.monitored = [] && sensors = [] && blocks <> [] then
        diag
          ~hint:"add a current or voltage sensor so failures are observable"
          blk008 "no sensor observes the design — every fault is latent";
      List.iter
        (fun id ->
          match List.find_opt (fun b -> b.block_id = id) blocks with
          | None ->
              diag ~element:id blk009
                (Printf.sprintf "excluded component '%s' is not in the diagram"
                   id)
          | Some b -> (
              match input.Input.sm with
              | None -> ()
              | Some (_, sm) ->
                  let ty = canon_type b.block_type in
                  let referenced =
                    List.exists
                      (fun (m : Reliability.Sm_model.mechanism) ->
                        canon_type m.Reliability.Sm_model.component_type = ty)
                      (Reliability.Sm_model.mechanisms sm)
                  in
                  if referenced then
                    diag ~element:id
                      ~hint:"drop the exclusion or remove the SM rows"
                      blk010
                      (Printf.sprintf
                         "excluded component '%s' (%s) still has safety \
                          mechanisms catalogued for its type"
                         id b.block_type)))
        input.Input.exclude;
      List.rev !acc
