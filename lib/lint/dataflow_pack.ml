(* Dataflow pack: propagation-based checks built on the lib/dataflow
   fixpoint passes.  Diagram inputs get the block-level propagation
   model (directed signals, bidirectional electrical nets, grounds
   dropped); model-only inputs get the flat-package view of every
   component package.

   The fixpoints run sequentially (jobs = 1) inside this pack: the pack
   itself is already a task on the shared analysis pool, and nesting
   pool dispatch inside pool tasks would serialise anyway.  Findings
   are identical at every SAME_JOBS setting either way. *)

let rule id severity title = { Rule.id; severity; category = Rule.Dataflow; title }

let dfa001 = rule "DFA001" Rule.Warning "failure mode reaches no monitored output (latent)"
let dfa002 = rule "DFA002" Rule.Warning "monitored output explained by no failure mode"
let dfa003 = rule "DFA003" Rule.Error "forward and backward propagation disagree"
let dfa004 = rule "DFA004" Rule.Warning "safety-related failure mode lacks safety-mechanism coverage"
let dfa005 = rule "DFA005" Rule.Error "component integrity below the level demanded by reachable hazards"
let dfa006 = rule "DFA006" Rule.Warning "safety mechanism cannot observe a failure mode it covers"
let dfa007 = rule "DFA007" Rule.Info "redundant components form double-point explanations"
let dfa008 = rule "DFA008" Rule.Warning "excluded component still explains a monitored output"

let rules = [ dfa001; dfa002; dfa003; dfa004; dfa005; dfa006; dfa007; dfa008 ]

(* One propagation model checked against the full rule set.  [file]
   locates findings; [ssam_model] enables the integrity rule. *)
let check ?file ?ssam_model ~exclude acc (m : Dataflow.Model.t) =
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  let forward = Dataflow.Passes.forward_taint ~jobs:1 m in
  let backward = Dataflow.Passes.backward_reach ~jobs:1 m in
  let agree, pairs = Dataflow.Passes.agreement m ~forward ~backward in
  if not agree then
    diag dfa003
      (Printf.sprintf
         "forward taint and backward reachability induce different \
          (failure-mode, output) relations over %d pairs — propagation \
          model is inconsistent"
         pairs);
  let has_outputs = m.Dataflow.Model.outputs <> [] in
  if has_outputs then begin
    List.iter
      (fun (md : Dataflow.Model.mode) ->
        diag ~element:md.Dataflow.Model.m_component
          ~hint:"add a sensor downstream or drop the mode from the model"
          dfa001
          (Printf.sprintf
             "failure mode '%s' of %s cannot deviate any monitored output"
             md.Dataflow.Model.m_name md.Dataflow.Model.m_component))
      (Dataflow.Passes.latent_modes m ~forward);
    List.iter
      (fun output ->
        diag ~element:output
          ~hint:"the observation point watches nothing that can fail" dfa002
          (Printf.sprintf "no failure mode in the model reaches output '%s'"
             output))
      (Dataflow.Passes.silent_outputs m ~forward);
    List.iter
      (fun (md : Dataflow.Model.mode) ->
        diag ~element:md.Dataflow.Model.m_component
          ~hint:"assign a safety mechanism covering this mode" dfa004
          (Printf.sprintf
             "failure mode '%s' of %s can deviate a monitored output but no \
              safety mechanism diagnoses it"
             md.Dataflow.Model.m_name md.Dataflow.Model.m_component))
      (Dataflow.Passes.coverage_gaps m ~forward);
    (* Double-point explanations among redundant components, per output. *)
    List.iter
      (fun (output, _) ->
        let redundant_components =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (md : Dataflow.Model.mode) ->
                 if
                   md.Dataflow.Model.m_loss_like
                   && Graph.Bitset.mem m.Dataflow.Model.redundant
                        md.Dataflow.Model.m_node
                 then Some md.Dataflow.Model.m_component
                 else None)
               (Dataflow.Passes.backward_explains m backward ~output))
        in
        if List.length redundant_components >= 2 then
          diag ~element:output dfa007
            (Printf.sprintf
               "redundant components %s jointly explain output '%s' \
                (double-point failure)"
               (String.concat ", " redundant_components)
               output))
      m.Dataflow.Model.outputs;
    List.iter
      (fun excluded ->
        let explains =
          List.exists
            (fun (output, _) ->
              List.exists
                (fun (md : Dataflow.Model.mode) ->
                  String.equal md.Dataflow.Model.m_component excluded)
                (Dataflow.Passes.backward_explains m backward ~output))
            m.Dataflow.Model.outputs
        in
        if explains then
          diag ~element:excluded
            ~hint:"the exclusion assumption hides a real cause" dfa008
            (Printf.sprintf
               "component '%s' is excluded from injection but its failure \
                modes still explain a monitored output"
               excluded))
      exclude
  end;
  List.iter
    (fun (sm_id, host, (md : Dataflow.Model.mode)) ->
      diag ~element:host
        ~hint:"move the mechanism onto the propagation path" dfa006
        (Printf.sprintf
           "safety mechanism '%s' on %s covers failure mode '%s' of %s, \
            which cannot reach it"
           sm_id host md.Dataflow.Model.m_name md.Dataflow.Model.m_component))
    (Dataflow.Passes.off_path_mechanisms m ~forward);
  match ssam_model with
  | None -> ()
  | Some model ->
      List.iter
        (fun (f : Dataflow.Passes.integrity_finding) ->
          let lvl = Ssam.Requirement.integrity_level_to_string in
          diag ~element:f.Dataflow.Passes.if_component
            ~hint:"raise the allocation or mitigate the hazard" dfa005
            (Printf.sprintf
               "component '%s' is allocated %s but hazard '%s' (via %s) \
                demands %s"
               f.Dataflow.Passes.if_component
               (match f.Dataflow.Passes.allocated with
               | Some l -> lvl l
               | None -> "nothing")
               f.Dataflow.Passes.hazard
               f.Dataflow.Passes.via_mode.Dataflow.Model.m_key
               (lvl f.Dataflow.Passes.demanded)))
        (Dataflow.Passes.integrity_violations ~jobs:1 model m)

let run (input : Input.t) =
  let acc = ref [] in
  (match (input.Input.diagram, input.Input.model) with
  | Some (path, diagram), _ ->
      let m =
        Dataflow.Model.of_diagram ~monitored:input.Input.monitored
          ?reliability:(Option.map snd input.Input.reliability)
          ?sm:(Option.map snd input.Input.sm)
          diagram
      in
      check ~file:path ~exclude:input.Input.exclude acc m
  | None, Some model ->
      List.iter
        (fun pkg ->
          let m = Dataflow.Model.of_package pkg in
          check ~ssam_model:model ~exclude:input.Input.exclude acc m)
        model.Ssam.Model.component_packages
  | None, None -> ());
  List.rev !acc
