let catalogue =
  Ssam_pack.rules @ Blockdiag_pack.rules @ Reliability_pack.rules
  @ Query_pack.rules @ Dataflow_pack.rules @ Fta_pack.rules

let find_rule id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun (r : Rule.t) -> String.uppercase_ascii r.Rule.id = id)
    catalogue

(* Derive the SSAM model the analysis commands would work on when the
   caller gave a diagram but no model of its own. *)
let effective_model (input : Input.t) =
  match (input.Input.model, input.Input.diagram) with
  | Some _, _ | None, None -> input
  | None, Some (_, diagram) ->
      let model = Blockdiag.Transform.to_ssam_model diagram in
      let model =
        match input.Input.reliability with
        | None -> model
        | Some (_, rel) ->
            {
              model with
              Ssam.Model.component_packages =
                List.map
                  (Blockdiag.Transform.aggregate_reliability rel)
                  model.Ssam.Model.component_packages;
            }
      in
      { input with Input.model = Some model }

let run ?jobs ?(rules = []) ?(categories = []) ?min_severity input =
  let input = effective_model input in
  let packs =
    [
      Ssam_pack.run;
      Blockdiag_pack.run;
      Reliability_pack.run;
      Query_pack.run;
      Dataflow_pack.run;
      Fta_pack.run;
    ]
  in
  let all =
    List.concat
      (Exec.scheduled_map ?jobs ~key:"lint.pack" (fun pack -> pack input)
         packs)
  in
  let wanted = List.map String.uppercase_ascii rules in
  let all =
    if wanted = [] then all
    else
      List.filter
        (fun (d : Rule.diagnostic) ->
          List.mem (String.uppercase_ascii d.Rule.rule_id) wanted)
        all
  in
  let all =
    if categories = [] then all
    else
      List.filter
        (fun (d : Rule.diagnostic) -> List.mem d.Rule.d_category categories)
        all
  in
  let all =
    match min_severity with
    | None -> all
    | Some s ->
        List.filter
          (fun (d : Rule.diagnostic) ->
            Rule.severity_rank d.Rule.d_severity >= Rule.severity_rank s)
          all
  in
  List.stable_sort Rule.compare_severity all

let has_errors ds =
  List.exists (fun (d : Rule.diagnostic) -> d.Rule.d_severity = Rule.Error) ds

let to_text ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "%a@." Rule.pp_text d))
    ds;
  let count sev =
    List.length
      (List.filter (fun (d : Rule.diagnostic) -> d.Rule.d_severity = sev) ds)
  in
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  (match (count Rule.Error, count Rule.Warning, count Rule.Info) with
  | 0, 0, 0 -> Buffer.add_string buf "no findings\n"
  | e, w, i ->
      let parts =
        List.filter_map
          (fun x -> x)
          [
            (if e > 0 then Some (plural e "error") else None);
            (if w > 0 then Some (plural w "warning") else None);
            (if i > 0 then Some (plural i "info") else None);
          ]
      in
      Buffer.add_string buf (String.concat ", " parts);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let to_json ds =
  let open Modelio.Json in
  let rule_json (r : Rule.t) =
    Object
      [
        ("id", String r.Rule.id);
        ("name", String r.Rule.id);
        ("shortDescription", Object [ ("text", String r.Rule.title) ]);
        ("helpUri", String ("DESIGN.md#" ^ String.lowercase_ascii r.Rule.id));
        ( "defaultConfiguration",
          Object [ ("level", String (Rule.sarif_level r.Rule.severity)) ] );
        ( "properties",
          Object [ ("category", String (Rule.category_to_string r.Rule.category)) ]
        );
      ]
  in
  let result_json (d : Rule.diagnostic) =
    let location =
      let physical =
        match d.Rule.file with
        | None -> []
        | Some f ->
            let region =
              match d.Rule.span with
              | None -> []
              | Some { Rule.line; col } ->
                  [
                    ( "region",
                      Object
                        [
                          ("startLine", Number (float_of_int line));
                          ("startColumn", Number (float_of_int col));
                        ] );
                  ]
            in
            [
              ( "physicalLocation",
                Object
                  (("artifactLocation", Object [ ("uri", String f) ]) :: region)
              );
            ]
      in
      let logical =
        match d.Rule.element with
        | None -> []
        | Some e ->
            [ ("logicalLocations", List [ Object [ ("name", String e) ] ]) ]
      in
      match physical @ logical with
      | [] -> []
      | fields -> [ ("locations", List [ Object fields ]) ]
    in
    let message =
      match d.Rule.hint with
      | None -> [ ("text", String d.Rule.message) ]
      | Some h ->
          [ ("text", String d.Rule.message); ("markdown", String h) ]
    in
    Object
      ([
         ("ruleId", String d.Rule.rule_id);
         ("level", String (Rule.sarif_level d.Rule.d_severity));
         ("message", Object message);
       ]
      @ location)
  in
  Object
    [
      ("version", String "2.1.0");
      ( "runs",
        List
          [
            Object
              [
                ( "tool",
                  Object
                    [
                      ( "driver",
                        Object
                          [
                            ("name", String "same lint");
                            ("rules", List (List.map rule_json catalogue));
                          ] );
                    ] );
                ("results", List (List.map result_json ds));
              ];
          ] );
    ]
