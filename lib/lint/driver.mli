(** The lint driver: runs the five rule packs (SSAM, block diagram,
    reliability, query, dataflow) over an {!Input.t} and renders the
    diagnostics.

    Pack dispatch goes through {!Exec.scheduled_map} under the
    ["lint.pack"] workload key, so the adaptive cost model decides
    sequential vs parallel execution per run; determinism comes from
    its in-order collection — findings are bit-identical at every
    [SAME_JOBS] setting.  When the input has a diagram but no SSAM
    model, the diagram is transformed
    ({!Blockdiag.Transform.to_ssam_model}, with the reliability model
    aggregated on when present) so the SSAM pack always sees the design
    the analysis commands would. *)

val catalogue : Rule.t list
(** Every registered rule, grouped by pack (SSAM, BLK, REL, QRY, DFA
    ids). *)

val find_rule : string -> Rule.t option
(** Case-insensitive lookup by id. *)

val run :
  ?jobs:int ->
  ?rules:string list ->
  ?categories:Rule.category list ->
  ?min_severity:Rule.severity ->
  Input.t ->
  Rule.diagnostic list
(** All diagnostics, errors first (stable within a severity).  [rules]
    restricts to the given ids (case-insensitive; empty means all);
    [categories] restricts to the given packs (empty means all);
    [min_severity] drops anything below the threshold. *)

val has_errors : Rule.diagnostic list -> bool

val to_text : Rule.diagnostic list -> string
(** One line per diagnostic plus a trailing summary line
    (["3 errors, 1 warning"] / ["no findings"]). *)

val to_json : Rule.diagnostic list -> Modelio.Json.t
(** SARIF-style: [{"version": "2.1.0", "runs": [{"tool": {"driver":
    {"name": "same lint", "rules": [...]}}, "results": [...]}]}] with
    one result per diagnostic, carrying level, message, rule id and the
    physical/logical location when known.  Each rule descriptor carries
    [name], [shortDescription], a [helpUri] (the rule's DESIGN.md
    anchor) and its pack under [properties.category], so SARIF viewers
    can group findings by pack. *)
