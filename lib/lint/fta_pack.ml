(* FTA pack: fault-tree checks over the structural lowering
   (Fta.From_ssam.of_structure).  Diagram inputs are lowered through
   their functional root (sources feed, loads sink, grounds dropped);
   model inputs check every composite component of every package.

   Composites whose connection graph is cyclic fall back to the
   path-based generator, so the pack still reports on cyclic diagrams
   unless the enumeration itself overflows. *)

let rule id severity title =
  { Rule.id; severity; category = Rule.Fault_tree; title }

let fta001 =
  rule "FTA001" Rule.Error "composite has no input-to-output path"

let fta002 =
  rule "FTA002" Rule.Warning
    "rate-less basic event in an otherwise quantified tree"

let fta003 =
  rule "FTA003" Rule.Error
    "voting gate demands more failures than distinct events beneath it"

let fta004 =
  rule "FTA004" Rule.Warning
    "high-integrity component is a single point of failure"

let fta005 = rule "FTA005" Rule.Info "basic event repeated under several gates"

let rules = [ fta001; fta002; fta003; fta004; fta005 ]

(* ASIL C/D and SIL 3/4 allocations demand freedom from single-point
   faults (ISO 26262 / IEC 61508 architectural metrics). *)
let high_integrity = function
  | Ssam.Requirement.ASIL_C | Ssam.Requirement.ASIL_D -> true
  | Ssam.Requirement.SIL n -> n >= 3
  | Ssam.Requirement.QM | Ssam.Requirement.ASIL_A | Ssam.Requirement.ASIL_B ->
      false

(* The lowered trees share subtrees (a node's U feeds every successor),
   so a naive traversal can revisit far more nodes than the DAG holds —
   the fuel cap keeps FTA003/FTA005 linear-ish and makes them best
   effort on pathological sharing. *)
let traversal_fuel = 100_000

let lower (c : Ssam.Architecture.component) =
  match Fta.From_ssam.of_structure c with
  | tree -> Ok tree
  | exception Fta.From_ssam.No_paths _ -> Error `No_paths
  | exception Fta.From_ssam.Cyclic _ -> (
      match Fta.From_ssam.generate c with
      | tree -> Ok tree
      | exception Fta.From_ssam.No_paths _ -> Error `No_paths
      | exception Fmea.Path_fmea.Too_many_paths -> Error `Too_many_paths)

(* The tree-level rules (FTA002/003/005), directly testable on any
   fault tree; [owner] names the enclosing composite in messages. *)
let check_tree ?file ~owner tree =
  let acc = ref [] in
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  (* FTA002 — quantification gaps. *)
  let events = Fta.Fault_tree.basic_events tree in
  let rated (e : Fta.Fault_tree.event) =
    match e.Fta.Fault_tree.rate_fit with
    | Some r when r > 0.0 -> true
    | Some _ | None -> false
  in
  if List.exists rated events then
    List.iter
      (fun (e : Fta.Fault_tree.event) ->
        if not (rated e) then
          diag ~element:e.Fta.Fault_tree.event_id
            ~hint:
              "give the component a FIT rate (or loss-mode distribution) so \
               the top-event probability is meaningful"
            fta002
            (Printf.sprintf
               "basic event '%s' has no failure rate while the rest of \
                '%s''s tree is quantified"
               e.Fta.Fault_tree.event_id owner))
      events;
  (* FTA003 + FTA005 — one fuel-capped walk. *)
  let fuel = ref traversal_fuel in
  let seen_events = Hashtbl.create 64 in
  let bad_votes = ref [] in
  let rec walk t =
    if !fuel > 0 then begin
      decr fuel;
      match t with
      | Fta.Fault_tree.Basic e ->
          let id = e.Fta.Fault_tree.event_id in
          let n =
            match Hashtbl.find_opt seen_events id with
            | Some n -> n
            | None -> 0
          in
          Hashtbl.replace seen_events id (n + 1)
      | Fta.Fault_tree.And (_, children) | Fta.Fault_tree.Or (_, children) ->
          List.iter walk children
      | Fta.Fault_tree.Koon (gid, k, children) ->
          let distinct = List.length (Fta.Fault_tree.basic_events t) in
          if k > distinct then bad_votes := (gid, k, distinct) :: !bad_votes;
          List.iter walk children
    end
  in
  walk tree;
  List.iter
    (fun (gid, k, distinct) ->
      diag ~element:gid
        ~hint:"the channels share wiring; the vote can never be honest" fta003
        (Printf.sprintf
           "voting gate '%s' needs %d failures but only %d distinct basic \
            events feed it"
           gid k distinct))
    (List.sort_uniq compare !bad_votes);
  if !fuel > 0 then
    Hashtbl.fold
      (fun id n acc -> if n > 1 then (id, n) :: acc else acc)
      seen_events []
    |> List.sort compare
    |> List.iter (fun (id, n) ->
           diag ~element:id
             ~hint:
               "rare-event bounds drift on repeated events — use the \
                BDD-exact probability"
             fta005
             (Printf.sprintf "basic event '%s' appears %d times in '%s''s tree"
                id n owner));
  List.rev !acc

let check_component ?file (c : Ssam.Architecture.component) =
  let acc = ref [] in
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  let cid = Ssam.Architecture.component_id c in
  (match lower c with
  | Error `Too_many_paths ->
      (* cyclic AND beyond the enumeration cap: nothing sound to say *)
      ()
  | Error `No_paths ->
      diag ~element:cid
        ~hint:
          "declare the boundary connections (composite → child for inputs, \
           child → composite for outputs) or give the children edges"
        fta001
        (Printf.sprintf
           "composite '%s' has no input→output structure to lower — no fault \
            tree, no path FMEA"
           cid)
  | Ok tree ->
      acc := List.rev_append (check_tree ?file ~owner:cid tree) !acc;
      (* FTA004 — single points against integrity allocations. *)
      let singles =
        match Fta.Fmea_from_fta.single_points_via_bdd c with
        | singles -> singles
        | exception Fta.From_ssam.Cyclic _ -> []
      in
      List.iter
        (fun (child : Ssam.Architecture.component) ->
          match child.Ssam.Architecture.integrity with
          | Some level when high_integrity level ->
              let child_id = Ssam.Architecture.component_id child in
              if List.exists (String.equal child_id) singles then
                diag ~element:child_id
                  ~hint:"add a redundant path or a redundant-tolerance function"
                  fta004
                  (Printf.sprintf
                     "component '%s' is allocated %s yet is a cardinality-1 \
                      critical set of '%s'"
                     child_id
                     (Ssam.Requirement.integrity_level_to_string level)
                     cid)
          | Some _ | None -> ())
        c.Ssam.Architecture.children);
  List.rev !acc

let rec composites (c : Ssam.Architecture.component) =
  if c.Ssam.Architecture.children = [] then []
  else c :: List.concat_map composites c.Ssam.Architecture.children

let run (input : Input.t) =
  match (input.Input.diagram, input.Input.model) with
  | Some (path, diagram), _ ->
      let reliability =
        match input.Input.reliability with
        | Some (_, rel) -> rel
        | None -> Reliability.Reliability_model.empty
      in
      check_component ~file:path
        (Blockdiag.Transform.functional_root ~reliability diagram)
  | None, Some model ->
      List.concat_map
        (fun pkg ->
          List.concat_map
            (fun top -> List.concat_map check_component (composites top))
            (Ssam.Architecture.top_components pkg))
        model.Ssam.Model.component_packages
  | None, None -> []
