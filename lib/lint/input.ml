(* What a lint run looks at.  Everything is optional: each rule pack
   inspects the artefacts it understands and stays silent about the
   rest, so `same lint model.bd`, `same lint -r rel.csv` and the full
   combination all work. *)

type t = {
  diagram : (string * Blockdiag.Diagram.t) option;
      (** source path (for report locations) and the parsed diagram *)
  model : Ssam.Model.t option;
      (** SSAM model; {!Driver.run} derives one from [diagram] when
          absent so the SSAM pack always has something to check *)
  reliability : (string option * Reliability.Reliability_model.t) option;
  sm : (string option * Reliability.Sm_model.t) option;
  queries : (string * string) list;  (** (name-or-path, source) *)
  query_env : string list;
      (** identifiers bound by the evaluator; the assurance engine binds
          ["Artifact"] *)
  exclude : string list;  (** component ids excluded from injection *)
  monitored : string list;  (** sensors forming the safety observation *)
}

let empty =
  {
    diagram = None;
    model = None;
    reliability = None;
    sm = None;
    queries = [];
    query_env = [ "Artifact" ];
    exclude = [];
    monitored = [];
  }
