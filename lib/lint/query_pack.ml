(* Query (extraction-constraint) pack: runs the static type-and-arity
   checker over every query source and maps its findings to rules.  The
   checker reports everything through one error type; the rule id is
   recovered from the diagnostic text, which this pack owns together
   with {!Query.Typecheck} (see the classification tests). *)

let rule id title = { Rule.id; severity = Rule.Error; category = Rule.Query; title }

let qry001 = rule "QRY001" "query does not parse"
let qry002 = rule "QRY002" "unknown identifier"
let qry003 = rule "QRY003" "unknown built-in method for the receiver"
let qry004 = rule "QRY004" "built-in called with the wrong arity"
let qry005 = rule "QRY005" "operand type mismatch"

let rules = [ qry001; qry002; qry003; qry004; qry005 ]

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let classify message =
  if contains message "parse error:" || contains message "lex error:" then
    qry001
  else if contains message "unknown identifier" then qry002
  else if contains message "no built-in method" || contains message "has no method"
  then qry003
  else if contains message "argument" || contains message "lambda" then qry004
  else qry005

let of_error ~file (e : Query.Typecheck.error) =
  let span =
    Option.map
      (fun (p : Query.Pos.t) ->
        { Rule.line = p.Query.Pos.line; col = p.Query.Pos.col })
      e.Query.Typecheck.pos
  in
  Rule.diagnostic ~file ?span
    ~rule:(classify e.Query.Typecheck.message)
    e.Query.Typecheck.message

let run (input : Input.t) =
  List.concat_map
    (fun (name, source) ->
      List.map (of_error ~file:name)
        (Query.Typecheck.check_source ~env:input.Input.query_env source))
    input.Input.queries
