(* Reliability-model / safety-mechanism pack (DECISIVE Steps 3 and 4b
   inputs).  Checks each table on its own and, when both are present,
   the references between them — an SM row naming a failure mode its
   component type never declares is the classic silent-skip bug in the
   deployment search. *)

let rule id severity title = { Rule.id; severity; category = Rule.Reliability; title }

let rel001 = rule "REL001" Rule.Warning "failure-mode distributions do not sum to 100%"
let rel002 = rule "REL002" Rule.Error "failure-mode distribution outside [0,100]"
let rel003 = rule "REL003" Rule.Error "negative FIT"
let rel004 = rule "REL004" Rule.Error "duplicate failure-mode names in an entry"
let rel005 = rule "REL005" Rule.Warning "zero-FIT entry declares failure modes"
let rel006 = rule "REL006" Rule.Error "SM coverage outside [0,100]"
let rel007 = rule "REL007" Rule.Error "negative SM cost"
let rel008 = rule "REL008" Rule.Warning "SM row targets a type with no reliability entry"
let rel009 = rule "REL009" Rule.Error "SM row names a failure mode its type does not declare"
let rel010 = rule "REL010" Rule.Warning "block type with catalogue failure modes but no FIT row"

let rules =
  [ rel001; rel002; rel003; rel004; rel005; rel006; rel007; rel008; rel009; rel010 ]

let check_reliability ?file acc rel =
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  List.iter
    (fun (e : Reliability.Reliability_model.entry) ->
      let ty = e.Reliability.Reliability_model.component_type in
      let fms = e.Reliability.Reliability_model.failure_modes in
      if e.Reliability.Reliability_model.fit < 0.0 then
        diag ~element:ty rel003
          (Printf.sprintf "%s: negative FIT %g" ty
             e.Reliability.Reliability_model.fit);
      List.iter
        (fun (fm : Reliability.Reliability_model.failure_mode) ->
          let d = fm.Reliability.Reliability_model.distribution_pct in
          if d < 0.0 || d > 100.0 then
            diag ~element:ty rel002
              (Printf.sprintf "%s/%s: distribution %g%% outside [0,100]" ty
                 fm.Reliability.Reliability_model.fm_name d))
        fms;
      if fms <> [] then begin
        let sum =
          List.fold_left
            (fun s (fm : Reliability.Reliability_model.failure_mode) ->
              s +. fm.Reliability.Reliability_model.distribution_pct)
            0.0 fms
        in
        if Float.abs (sum -. 100.0) > 0.5 then
          diag ~element:ty
            ~hint:"make the distribution shares sum to 100" rel001
            (Printf.sprintf "%s: failure-mode distributions sum to %g%%" ty sum);
        if e.Reliability.Reliability_model.fit = 0.0 then
          diag ~element:ty ~hint:"give the entry its FIT" rel005
            (Printf.sprintf "%s: zero FIT but %d failure mode(s) declared" ty
               (List.length fms))
      end;
      let names =
        List.map
          (fun (fm : Reliability.Reliability_model.failure_mode) ->
            String.lowercase_ascii fm.Reliability.Reliability_model.fm_name)
          fms
      in
      if List.length (List.sort_uniq String.compare names) <> List.length names
      then
        diag ~element:ty rel004
          (Printf.sprintf "%s: duplicate failure-mode names" ty))
    (Reliability.Reliability_model.entries rel)

let check_sm ?file acc rel_opt sm =
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  List.iter
    (fun (m : Reliability.Sm_model.mechanism) ->
      let label =
        Printf.sprintf "%s/%s/%s" m.Reliability.Sm_model.component_type
          m.Reliability.Sm_model.failure_mode m.Reliability.Sm_model.sm_name
      in
      let cov = m.Reliability.Sm_model.coverage_pct in
      if cov < 0.0 || cov > 100.0 then
        diag ~element:label rel006
          (Printf.sprintf "%s: coverage %g%% outside [0,100]" label cov);
      if m.Reliability.Sm_model.cost < 0.0 then
        diag ~element:label rel007 (Printf.sprintf "%s: negative cost" label);
      match rel_opt with
      | None -> ()
      | Some rel -> (
          match
            Reliability.Reliability_model.find rel
              m.Reliability.Sm_model.component_type
          with
          | None ->
              diag ~element:label
                ~hint:"add a reliability entry for the component type" rel008
                (Printf.sprintf
                   "%s: no reliability entry for component type '%s'" label
                   m.Reliability.Sm_model.component_type)
          | Some e ->
              let wanted =
                String.lowercase_ascii m.Reliability.Sm_model.failure_mode
              in
              let declared =
                List.map
                  (fun (fm : Reliability.Reliability_model.failure_mode) ->
                    String.lowercase_ascii
                      fm.Reliability.Reliability_model.fm_name)
                  e.Reliability.Reliability_model.failure_modes
              in
              if not (List.mem wanted declared) then
                diag ~element:label
                  ~hint:
                    "fix the Failure_Mode cell or declare the mode in the \
                     reliability model"
                  rel009
                  (Printf.sprintf
                     "%s: failure mode '%s' is not declared by the '%s' \
                      reliability entry"
                     label m.Reliability.Sm_model.failure_mode
                     e.Reliability.Reliability_model.component_type)))
    (Reliability.Sm_model.mechanisms sm)

(* Cross-check against the design: a block type the catalogue says can
   fail, analysed with no FIT row, silently contributes 0 FIT. *)
let check_diagram_coverage ?file acc rel diagram =
  let diag ?element ?hint rule msg =
    acc := Rule.diagnostic ?element ?file ?hint ~rule msg :: !acc
  in
  let types =
    List.sort_uniq String.compare
      (List.map
         (fun (b : Blockdiag.Diagram.block) -> b.Blockdiag.Diagram.block_type)
         (Blockdiag.Diagram.all_blocks diagram))
  in
  List.iter
    (fun ty ->
      match Reliability.Reliability_model.find rel ty with
      | Some _ -> ()
      | None -> (
          match Circuit.Library.find ty with
          | Some info
            when info.Circuit.Library.failure_modes <> [] ->
              diag ~element:ty
                ~hint:"add a FIT row so the type contributes to the FMEDA"
                rel010
                (Printf.sprintf
                   "block type '%s' can fail (catalogue lists %d mode(s)) but \
                    has no reliability entry"
                   ty
                   (List.length info.Circuit.Library.failure_modes))
          | Some _ | None -> ()))
    types

let run (input : Input.t) =
  let acc = ref [] in
  (match input.Input.reliability with
  | None -> ()
  | Some (file, rel) -> check_reliability ?file acc rel);
  (* The built-in SM catalogue (path [None]) is only checked when the
     user supplied their own file — linting the stock catalogue against
     whatever reliability model happens to be loaded is noise. *)
  (match input.Input.sm with
  | None | Some (None, _) -> ()
  | Some ((Some _ as file), sm) ->
      check_sm ?file acc (Option.map snd input.Input.reliability) sm);
  (match (input.Input.reliability, input.Input.diagram) with
  | Some (_, rel), Some (file, diagram) ->
      check_diagram_coverage ~file acc rel diagram
  | _ -> ());
  List.rev !acc
