type severity = Error | Warning | Info [@@deriving eq, show]

let severity_rank = function Error -> 3 | Warning -> 2 | Info -> 1

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type category =
  | Ssam_model
  | Block_diagram
  | Reliability
  | Query
  | Dataflow
  | Fault_tree
[@@deriving eq, show]

let category_to_string = function
  | Ssam_model -> "ssam"
  | Block_diagram -> "blockdiag"
  | Reliability -> "reliability"
  | Query -> "query"
  | Dataflow -> "dataflow"
  | Fault_tree -> "fta"

let category_of_string s =
  match String.lowercase_ascii s with
  | "ssam" -> Some Ssam_model
  | "blockdiag" | "blk" -> Some Block_diagram
  | "reliability" | "rel" -> Some Reliability
  | "query" | "qry" -> Some Query
  | "dataflow" | "dfa" -> Some Dataflow
  | "fta" | "faulttree" | "fault-tree" -> Some Fault_tree
  | _ -> None

type t = { id : string; severity : severity; category : category; title : string }
[@@deriving eq, show]

type span = { line : int; col : int } [@@deriving eq, show]

type diagnostic = {
  rule_id : string;
  d_severity : severity;
  d_category : category;
  element : string option;
  file : string option;
  span : span option;
  message : string;
  hint : string option;
}
[@@deriving eq, show]

let diagnostic ?element ?file ?span ?hint ~rule message =
  {
    rule_id = rule.id;
    d_severity = rule.severity;
    d_category = rule.category;
    element;
    file;
    span;
    message;
    hint;
  }

let pp_text ppf d =
  (match (d.file, d.span) with
  | Some f, Some { line; col } -> Format.fprintf ppf "%s:%d:%d: " f line col
  | Some f, None -> Format.fprintf ppf "%s: " f
  | None, Some { line; col } -> Format.fprintf ppf "%d:%d: " line col
  | None, None -> ());
  Format.fprintf ppf "%s %s" (severity_to_string d.d_severity) d.rule_id;
  (match d.element with
  | Some e -> Format.fprintf ppf " [%s]" e
  | None -> ());
  Format.fprintf ppf ": %s" d.message;
  match d.hint with
  | Some h -> Format.fprintf ppf " (%s)" h
  | None -> ()

let compare_severity a b =
  compare (severity_rank b.d_severity) (severity_rank a.d_severity)
