(** The lint rule registry: rule descriptors and the diagnostics they
    produce.

    Every check in the [same lint] driver belongs to a named rule
    ([SSAM003], [BLK005], [REL009], [QRY004], [DFA001]...) with a fixed severity
    and category, so reports can be filtered by id or severity and the
    catalogue can be printed ([same lint --list]). *)

type severity = Error | Warning | Info [@@deriving eq, show]

val severity_rank : severity -> int
(** [Error] 3, [Warning] 2, [Info] 1 — for minimum-severity filters. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_string : string -> severity option

val sarif_level : severity -> string
(** SARIF result level: ["error"], ["warning"], ["note"]. *)

type category =
  | Ssam_model
  | Block_diagram
  | Reliability
  | Query
  | Dataflow
  | Fault_tree
[@@deriving eq, show]

val category_to_string : category -> string
(** ["ssam"], ["blockdiag"], ["reliability"], ["query"], ["dataflow"],
    ["fta"]. *)

val category_of_string : string -> category option
(** Accepts the full names and the CLI short codes [blk], [rel], [qry],
    [dfa], [fta] (case-insensitive). *)

type t = {
  id : string;  (** e.g. ["BLK005"] *)
  severity : severity;
  category : category;
  title : string;  (** one line, for the catalogue listing *)
}
[@@deriving eq, show]

type span = { line : int; col : int } [@@deriving eq, show]

type diagnostic = {
  rule_id : string;
  d_severity : severity;
  d_category : category;
  element : string option;  (** offending element / block / entry id *)
  file : string option;  (** source artefact, when known *)
  span : span option;  (** line:column inside [file] *)
  message : string;
  hint : string option;  (** how to fix, when a generic fix exists *)
}
[@@deriving eq, show]

val diagnostic :
  ?element:string ->
  ?file:string ->
  ?span:span ->
  ?hint:string ->
  rule:t ->
  string ->
  diagnostic
(** Build a diagnostic for [rule]; severity and category come from the
    rule descriptor. *)

val pp_text : Format.formatter -> diagnostic -> unit
(** One line: [file:line:col: severity RULE [element]: message (hint)] —
    omitting the parts that are unknown. *)

val compare_severity : diagnostic -> diagnostic -> int
(** Sorts errors first; equal severities keep their relative order when
    used with a stable sort. *)
