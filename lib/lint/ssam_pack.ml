(* SSAM model well-formedness pack.

   The rule logic lives in {!Ssam.Validate} (the single source of truth
   — it predates the lint driver and other subsystems call it
   directly); this pack adapts its rule-tagged findings to lint
   diagnostics and contributes the catalogue entries. *)

let severity_of = function
  | Ssam.Validate.Error -> Rule.Error
  | Ssam.Validate.Warning -> Rule.Warning

let rules : Rule.t list =
  List.map
    (fun (id, sev, title) ->
      {
        Rule.id;
        severity = severity_of sev;
        category = Rule.Ssam_model;
        title;
      })
    Ssam.Validate.rules

let rule_by_id id = List.find (fun (r : Rule.t) -> r.Rule.id = id) rules

let of_finding ?file (f : Ssam.Validate.finding) =
  Rule.diagnostic ?file ?hint:f.Ssam.Validate.f_hint
    ~element:f.Ssam.Validate.f_element
    ~rule:(rule_by_id f.Ssam.Validate.f_rule)
    f.Ssam.Validate.f_message

let run (input : Input.t) =
  match input.Input.model with
  | None -> []
  | Some model ->
      let file = Option.map fst input.Input.diagram in
      List.map (of_finding ?file) (Ssam.Validate.findings model)
