type t = { rows : int; cols : int; data : Complex.t array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmatrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) Complex.zero }

let rows m = m.rows

let cols m = m.cols

let index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Cmatrix: index (%d,%d) out of bounds for %dx%d" i j
         m.rows m.cols);
  (i * m.cols) + j

let get m i j = m.data.(index m i j)

let set m i j v = m.data.(index m i j) <- v

let add_to m i j v =
  let k = index m i j in
  m.data.(k) <- Complex.add m.data.(k) v

let copy m = { m with data = Array.copy m.data }

exception Singular of int

let pivot_threshold = 1e-13

let solve a b =
  let n = a.rows in
  if a.cols <> n then invalid_arg "Cmatrix.solve: not square";
  if Array.length b <> n then invalid_arg "Cmatrix.solve: dimension mismatch";
  (* Work on copies. *)
  let m = { a with data = Array.copy a.data } in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivot by modulus. *)
    let pivot_row = ref k in
    let pivot_mag = ref (Complex.norm (get m k k)) in
    for i = k + 1 to n - 1 do
      let mag = Complex.norm (get m i k) in
      if mag > !pivot_mag then begin
        pivot_mag := mag;
        pivot_row := i
      end
    done;
    if !pivot_mag < pivot_threshold then raise (Singular k);
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot_row j);
        set m !pivot_row j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    let pivot = get m k k in
    for i = k + 1 to n - 1 do
      let factor = Complex.div (get m i k) pivot in
      if factor <> Complex.zero then begin
        for j = k to n - 1 do
          set m i j (Complex.sub (get m i j) (Complex.mul factor (get m k j)))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul factor x.(k))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- Complex.sub x.(i) (Complex.mul (get m i j) x.(j))
    done;
    x.(i) <- Complex.div x.(i) (get m i i)
  done;
  x
