(** Dense complex matrices and LU solves, for AC (small-signal) circuit
    analysis.

    Mirrors {!Matrix}/{!Lu} over [Complex.t]; kept separate because the
    real-valued DC path should not pay for complex arithmetic. *)

type t

val create : int -> int -> t
(** Zero matrix. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val add_to : t -> int -> int -> Complex.t -> unit

val copy : t -> t

exception Singular of int

val solve : t -> Complex.t array -> Complex.t array
(** LU with partial pivoting (by modulus).  Raises {!Singular} or
    [Invalid_argument] (not square / dimension mismatch). *)
