type sparse_vec = (int * float) array

type t = {
  k : int;
  n : int;
  base_solve : float array -> float array;
  v : sparse_vec array;
  u : sparse_vec array;
  z : float array array; (* z.(i) = A⁻¹ uᵢ, dense columns *)
  cf : Lu.factors; (* LU of the k×k capacitance matrix I + VᵀZ *)
}

let dense_of n (sv : sparse_vec) =
  let d = Array.make n 0.0 in
  Array.iter (fun (i, x) -> d.(i) <- d.(i) +. x) sv;
  d

let dot_sparse (sv : sparse_vec) (dense : float array) =
  Array.fold_left (fun acc (i, x) -> acc +. (x *. dense.(i))) 0.0 sv

let prepare ~n ~solve ~u ~v =
  let k = Array.length u in
  if Array.length v <> k then invalid_arg "Smw.prepare: rank mismatch";
  let z = Array.map (fun ui -> solve (dense_of n ui)) u in
  let c = Matrix.identity k in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      Matrix.add_to c i j (dot_sparse v.(i) z.(j))
    done
  done;
  { k; n; base_solve = solve; v; u; z; cf = Lu.decompose c }

let rank t = t.k

let solve t b =
  let y = t.base_solve b in
  if t.k = 0 then y
  else begin
    let w = Array.init t.k (fun i -> dot_sparse t.v.(i) y) in
    let s = Lu.solve_factored t.cf w in
    for j = 0 to t.k - 1 do
      let sj = s.(j) in
      if sj <> 0.0 then begin
        let zj = t.z.(j) in
        for i = 0 to t.n - 1 do
          y.(i) <- y.(i) -. (zj.(i) *. sj)
        done
      end
    done;
    y
  end

let apply_update t x =
  let r = Array.make t.n 0.0 in
  for j = 0 to t.k - 1 do
    let c = dot_sparse t.v.(j) x in
    if c <> 0.0 then Array.iter (fun (i, uv) -> r.(i) <- r.(i) +. (uv *. c)) t.u.(j)
  done;
  r
