(** Sherman–Morrison–Woodbury rank-k re-solve.

    Given a factorisation of [A] (as an opaque [solve] closure) and a
    low-rank perturbation [A' = A + Σᵢ uᵢ·vᵢᵀ], solves [A' x = b]
    without refactorising:

    {v x = y − Z·(I + Vᵀ·Z)⁻¹·(Vᵀ·y),   y = A⁻¹b,  Z = A⁻¹U v}

    Preparation performs [k] solves against the existing factors plus a
    dense [k × k] factorisation; each subsequent {!solve} costs one
    solve against the existing factors plus [O(k·n)].  This is the
    kernel that lets the fault-injection FMEA reuse the golden
    factorisation: a failure mode changes a handful of MNA stamps, which
    is exactly a rank-1 or rank-2 update. *)

type sparse_vec = (int * float) array
(** A sparse column as (index, value) pairs. *)

type t

val prepare :
  n:int ->
  solve:(float array -> float array) ->
  u:sparse_vec array ->
  v:sparse_vec array ->
  t
(** [prepare ~n ~solve ~u ~v] builds the re-solve kernel for
    [A + Σ uᵢvᵢᵀ], where [solve] applies [A⁻¹] (e.g.
    {!Lu.solve_factored} or {!Sparse.solve_factored} partially applied
    to existing factors).  Raises {!Lu.Singular} when the capacitance
    matrix [I + VᵀA⁻¹U] is singular — by the determinant lemma this
    means the updated matrix itself is singular (for nonsingular [A]).
    Raises [Invalid_argument] when [u] and [v] differ in length. *)

val rank : t -> int

val solve : t -> float array -> float array
(** Solve [(A + U·Vᵀ) x = b] reusing the factors of [A]. *)

val apply_update : t -> float array -> float array
(** [apply_update t x] is [(U·Vᵀ)·x] — the perturbation's contribution
    to a matrix-vector product, used for residual computation in
    iterative refinement. *)
