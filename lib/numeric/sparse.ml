(* Sparse CSR assembly and a left-looking (Gilbert–Peierls) sparse LU
   with partial pivoting.  The structure follows CSparse: per column, a
   reach (DFS over the L graph) finds the nonzero pattern of the sparse
   triangular solve, the numeric update runs in topological order, and
   the pivot is the largest-magnitude candidate not yet pivotal. *)

(* ---------- triplet accumulation ---------- *)

type triplets = {
  tn : int;
  mutable ti : int array;
  mutable tj : int array;
  mutable tv : float array;
  mutable tlen : int;
}

let create n =
  if n < 0 then invalid_arg "Sparse.create: negative dimension";
  {
    tn = n;
    ti = Array.make 16 0;
    tj = Array.make 16 0;
    tv = Array.make 16 0.0;
    tlen = 0;
  }

let dim t = t.tn

let add_to t i j v =
  if i < 0 || i >= t.tn || j < 0 || j >= t.tn then
    invalid_arg
      (Printf.sprintf "Sparse.add_to: (%d,%d) out of bounds for %dx%d" i j t.tn
         t.tn);
  let cap = Array.length t.ti in
  if t.tlen = cap then begin
    let ncap = max 16 (2 * cap) in
    let gi = Array.make ncap 0
    and gj = Array.make ncap 0
    and gv = Array.make ncap 0.0 in
    Array.blit t.ti 0 gi 0 t.tlen;
    Array.blit t.tj 0 gj 0 t.tlen;
    Array.blit t.tv 0 gv 0 t.tlen;
    t.ti <- gi;
    t.tj <- gj;
    t.tv <- gv
  end;
  t.ti.(t.tlen) <- i;
  t.tj.(t.tlen) <- j;
  t.tv.(t.tlen) <- v;
  t.tlen <- t.tlen + 1

(* ---------- CSR ---------- *)

type t = {
  sn : int;
  row_ptr : int array; (* length sn + 1 *)
  cols : int array; (* sorted within each row *)
  vals : float array;
}

let n a = a.sn
let nnz a = a.row_ptr.(a.sn)

let compress t =
  let nn = t.tn in
  (* Bucket the triplets by row. *)
  let count = Array.make (nn + 1) 0 in
  for p = 0 to t.tlen - 1 do
    count.(t.ti.(p)) <- count.(t.ti.(p)) + 1
  done;
  let start = Array.make (nn + 1) 0 in
  for i = 0 to nn - 1 do
    start.(i + 1) <- start.(i) + count.(i)
  done;
  let fill = Array.copy start in
  let bc = Array.make t.tlen 0 and bv = Array.make t.tlen 0.0 in
  for p = 0 to t.tlen - 1 do
    let i = t.ti.(p) in
    bc.(fill.(i)) <- t.tj.(p);
    bv.(fill.(i)) <- t.tv.(p);
    fill.(i) <- fill.(i) + 1
  done;
  (* Sort each row by column and sum duplicates. *)
  let out_cols = ref (Array.make (max 16 t.tlen) 0) in
  let out_vals = ref (Array.make (max 16 t.tlen) 0.0) in
  let out_len = ref 0 in
  let push c v =
    !out_cols.(!out_len) <- c;
    !out_vals.(!out_len) <- v;
    incr out_len
  in
  let row_ptr = Array.make (nn + 1) 0 in
  for i = 0 to nn - 1 do
    let lo = start.(i) and hi = start.(i + 1) in
    let len = hi - lo in
    if len > 0 then begin
      let idx = Array.init len (fun k -> lo + k) in
      Array.sort (fun a b -> compare bc.(a) bc.(b)) idx;
      let k = ref 0 in
      while !k < len do
        let c = bc.(idx.(!k)) in
        let v = ref 0.0 in
        while !k < len && bc.(idx.(!k)) = c do
          v := !v +. bv.(idx.(!k));
          incr k
        done;
        push c !v
      done
    end;
    row_ptr.(i + 1) <- !out_len
  done;
  {
    sn = nn;
    row_ptr;
    cols = Array.sub !out_cols 0 !out_len;
    vals = Array.sub !out_vals 0 !out_len;
  }

let index a i j =
  if i < 0 || i >= a.sn || j < 0 || j >= a.sn then None
  else begin
    let lo = ref a.row_ptr.(i) and hi = ref (a.row_ptr.(i + 1) - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = a.cols.(mid) in
      if c = j then found := Some mid
      else if c < j then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let get a i j = match index a i j with Some p -> a.vals.(p) | None -> 0.0
let set_value a p v = a.vals.(p) <- v
let add_to_value a p v = a.vals.(p) <- a.vals.(p) +. v
let copy a = { a with vals = Array.copy a.vals }

let mul_vec a x =
  if Array.length x <> a.sn then invalid_arg "Sparse.mul_vec: dimension";
  Array.init a.sn (fun i ->
      let acc = ref 0.0 in
      for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
        acc := !acc +. (a.vals.(p) *. x.(a.cols.(p)))
      done;
      !acc)

let to_dense a =
  let m = Matrix.create a.sn a.sn in
  for i = 0 to a.sn - 1 do
    for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Matrix.set m i a.cols.(p) a.vals.(p)
    done
  done;
  m

let of_dense ?(drop_tol = 0.0) m =
  let r = Matrix.rows m in
  if Matrix.cols m <> r then invalid_arg "Sparse.of_dense: not square";
  let t = create r in
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      let v = Matrix.get m i j in
      if Float.abs v > drop_tol then add_to t i j v
    done
  done;
  compress t

(* ---------- minimum-degree ordering ---------- *)

(* Exact minimum degree on the pattern of A + Aᵀ, with an elimination
   graph of hash-set adjacency lists and a lazy-deletion binary heap.
   The clique formed by each elimination keeps fill in the factorisation
   close to what the graph structure forces. *)

let min_degree_order a =
  let nn = a.sn in
  let adj = Array.init nn (fun _ -> Hashtbl.create 8) in
  for i = 0 to nn - 1 do
    for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.cols.(p) in
      if i <> j then begin
        Hashtbl.replace adj.(i) j ();
        Hashtbl.replace adj.(j) i ()
      end
    done
  done;
  (* Binary min-heap of (degree, node) with lazy deletion. *)
  let heap = ref (Array.make (max 16 (2 * nn)) (0, 0)) in
  let heap_len = ref 0 in
  let swap i j =
    let tmp = !heap.(i) in
    !heap.(i) <- !heap.(j);
    !heap.(j) <- tmp
  in
  let push d v =
    if !heap_len = Array.length !heap then begin
      let bigger = Array.make (2 * !heap_len) (0, 0) in
      Array.blit !heap 0 bigger 0 !heap_len;
      heap := bigger
    end;
    !heap.(!heap_len) <- (d, v);
    incr heap_len;
    let i = ref (!heap_len - 1) in
    while !i > 0 && fst !heap.((!i - 1) / 2) > fst !heap.(!i) do
      swap !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done
  in
  let pop () =
    let top = !heap.(0) in
    decr heap_len;
    !heap.(0) <- !heap.(!heap_len);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < !heap_len && fst !heap.(l) < fst !heap.(!smallest) then
        smallest := l;
      if r < !heap_len && fst !heap.(r) < fst !heap.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        swap !i !smallest;
        i := !smallest
      end
      else continue_ := false
    done;
    top
  in
  let alive = Array.make nn true in
  for v = 0 to nn - 1 do
    push (Hashtbl.length adj.(v)) v
  done;
  let order = Array.make nn 0 in
  let k = ref 0 in
  while !k < nn do
    let d, v = pop () in
    if alive.(v) && d = Hashtbl.length adj.(v) then begin
      order.(!k) <- v;
      incr k;
      alive.(v) <- false;
      let nbrs = Hashtbl.fold (fun u () acc -> u :: acc) adj.(v) [] in
      List.iter (fun u -> Hashtbl.remove adj.(u) v) nbrs;
      let rec clique = function
        | [] -> ()
        | u :: rest ->
            List.iter
              (fun w ->
                if not (Hashtbl.mem adj.(u) w) then begin
                  Hashtbl.replace adj.(u) w ();
                  Hashtbl.replace adj.(w) u ()
                end)
              rest;
            clique rest
      in
      clique nbrs;
      List.iter (fun u -> push (Hashtbl.length adj.(u)) u) nbrs
    end
  done;
  order

(* ---------- sparse LU ---------- *)

type factors = {
  fn : int;
  lp : int array;
  li : int array;
  lx : float array;
  up : int array;
  ui : int array;
  ux : float array;
  frowp : int array; (* permuted position -> original row *)
  fq : int array; (* column order *)
}

let factor_order f = Array.copy f.fq

let pivot_threshold = 1e-13

(* Growable parallel (int, float) arrays for the L/U columns. *)
type dyn = { mutable di : int array; mutable dx : float array; mutable dlen : int }

let dyn_make cap = { di = Array.make cap 0; dx = Array.make cap 0.0; dlen = 0 }

let dyn_push d i x =
  if d.dlen = Array.length d.di then begin
    let ncap = 2 * d.dlen in
    let gi = Array.make ncap 0 and gx = Array.make ncap 0.0 in
    Array.blit d.di 0 gi 0 d.dlen;
    Array.blit d.dx 0 gx 0 d.dlen;
    d.di <- gi;
    d.dx <- gx
  end;
  d.di.(d.dlen) <- i;
  d.dx.(d.dlen) <- x;
  d.dlen <- d.dlen + 1

(* CSR -> CSC (column pointers, row indices, values). *)
let csc_of a =
  let nn = a.sn in
  let m = nnz a in
  let cp = Array.make (nn + 1) 0 in
  for p = 0 to m - 1 do
    cp.(a.cols.(p) + 1) <- cp.(a.cols.(p) + 1) + 1
  done;
  for j = 0 to nn - 1 do
    cp.(j + 1) <- cp.(j + 1) + cp.(j)
  done;
  let fill = Array.copy cp in
  let ri = Array.make m 0 and vx = Array.make m 0.0 in
  for i = 0 to nn - 1 do
    for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let j = a.cols.(p) in
      ri.(fill.(j)) <- i;
      vx.(fill.(j)) <- a.vals.(p);
      fill.(j) <- fill.(j) + 1
    done
  done;
  (cp, ri, vx)

let decompose ?order a =
  let nn = a.sn in
  let q =
    match order with
    | Some o ->
        if Array.length o <> nn then
          invalid_arg "Sparse.decompose: ordering length mismatch";
        o
    | None -> min_degree_order a
  in
  let cp, cri, cvx = csc_of a in
  let cap = max 16 (4 * nnz a) in
  let l = dyn_make cap and u = dyn_make cap in
  let lp = Array.make (nn + 1) 0 and up = Array.make (nn + 1) 0 in
  let pinv = Array.make nn (-1) in
  let frowp = Array.make nn 0 in
  let x = Array.make nn 0.0 in
  let mark = Array.make nn (-1) in
  let stack = Array.make nn 0 in
  let cpos = Array.make nn 0 in
  let xi = Array.make nn 0 in
  for k = 0 to nn - 1 do
    let col = q.(k) in
    (* Reach: the nonzero pattern of L \ A(:,col), via DFS over the
       already-built columns of L, emitted in topological order into
       xi.(top..nn-1). *)
    let top = ref nn in
    for p = cp.(col) to cp.(col + 1) - 1 do
      let i0 = cri.(p) in
      if mark.(i0) <> k then begin
        let head = ref 0 in
        stack.(0) <- i0;
        while !head >= 0 do
          let i = stack.(!head) in
          let jn = pinv.(i) in
          if mark.(i) <> k then begin
            mark.(i) <- k;
            cpos.(!head) <- (if jn < 0 then 0 else lp.(jn))
          end;
          if jn < 0 then begin
            decr head;
            decr top;
            xi.(!top) <- i
          end
          else begin
            let pend = lp.(jn + 1) in
            let pp = ref cpos.(!head) in
            let pushed = ref false in
            while (not !pushed) && !pp < pend do
              let r = l.di.(!pp) in
              incr pp;
              if mark.(r) <> k then begin
                cpos.(!head) <- !pp;
                incr head;
                stack.(!head) <- r;
                pushed := true
              end
            done;
            if not !pushed then begin
              decr head;
              decr top;
              xi.(!top) <- i
            end
          end
        done
      end
    done;
    (* Numeric sparse triangular solve. *)
    for p = !top to nn - 1 do
      x.(xi.(p)) <- 0.0
    done;
    for p = cp.(col) to cp.(col + 1) - 1 do
      x.(cri.(p)) <- cvx.(p)
    done;
    for p = !top to nn - 1 do
      let i = xi.(p) in
      let jn = pinv.(i) in
      if jn >= 0 then begin
        let xv = x.(i) in
        if xv <> 0.0 then
          (* Skip the unit-diagonal entry stored first in each column. *)
          for pp = lp.(jn) + 1 to lp.(jn + 1) - 1 do
            x.(l.di.(pp)) <- x.(l.di.(pp)) -. (l.dx.(pp) *. xv)
          done
      end
    done;
    (* Partial pivoting over the not-yet-pivotal candidates; pivotal
       entries go to U in the same pass. *)
    let ipiv = ref (-1) and amax = ref (-1.0) in
    for p = !top to nn - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        let m = Float.abs x.(i) in
        if m > !amax then begin
          amax := m;
          ipiv := i
        end
      end
      else dyn_push u pinv.(i) x.(i)
    done;
    if !ipiv < 0 || !amax < pivot_threshold then raise (Lu.Singular k);
    let pivot = x.(!ipiv) in
    pinv.(!ipiv) <- k;
    frowp.(k) <- !ipiv;
    dyn_push l !ipiv 1.0;
    dyn_push u k pivot;
    for p = !top to nn - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then dyn_push l i (x.(i) /. pivot);
      x.(i) <- 0.0
    done;
    lp.(k + 1) <- l.dlen;
    up.(k + 1) <- u.dlen
  done;
  (* Renumber L's rows into pivotal order so the triangular solves run in
     permuted space. *)
  for p = 0 to l.dlen - 1 do
    l.di.(p) <- pinv.(l.di.(p))
  done;
  {
    fn = nn;
    lp;
    li = Array.sub l.di 0 l.dlen;
    lx = Array.sub l.dx 0 l.dlen;
    up;
    ui = Array.sub u.di 0 u.dlen;
    ux = Array.sub u.dx 0 u.dlen;
    frowp;
    fq = q;
  }

let solve_factored f b =
  let nn = f.fn in
  if Array.length b <> nn then invalid_arg "Sparse.solve_factored: dimension";
  let x = Array.init nn (fun k -> b.(f.frowp.(k))) in
  (* L x = Pb, unit diagonal stored first in each column. *)
  for j = 0 to nn - 1 do
    let xj = x.(j) in
    if xj <> 0.0 then
      for p = f.lp.(j) + 1 to f.lp.(j + 1) - 1 do
        x.(f.li.(p)) <- x.(f.li.(p)) -. (f.lx.(p) *. xj)
      done
  done;
  (* U y = x, diagonal stored last in each column. *)
  for j = nn - 1 downto 0 do
    let pend = f.up.(j + 1) - 1 in
    let xj = x.(j) /. f.ux.(pend) in
    x.(j) <- xj;
    if xj <> 0.0 then
      for p = f.up.(j) to pend - 1 do
        x.(f.ui.(p)) <- x.(f.ui.(p)) -. (f.ux.(p) *. xj)
      done
  done;
  (* Undo the column permutation. *)
  let r = Array.make nn 0.0 in
  for k = 0 to nn - 1 do
    r.(f.fq.(k)) <- x.(k)
  done;
  r

let solve ?order a b = solve_factored (decompose ?order a) b
