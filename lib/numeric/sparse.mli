(** Sparse linear algebra for large MNA systems.

    The circuit simulator's matrices are overwhelmingly sparse — a
    two-terminal element touches at most four entries — so above a few
    hundred unknowns the dense O(n³) factorisation in {!Lu} is almost
    entirely wasted work.  This module provides triplet assembly into
    CSR, a fill-reducing (minimum-degree) ordering, and a left-looking
    sparse LU with partial pivoting (Gilbert–Peierls).  Factors and
    orderings are first-class values so the fault-injection hot loop can
    reuse both across thousands of solves. *)

type triplets
(** Mutable triplet (COO) accumulator for an [n × n] matrix.  Duplicate
    entries sum on compression, matching the stamp semantics of MNA
    assembly. *)

val create : int -> triplets
(** [create n] is an empty accumulator for an [n × n] system.  Raises
    [Invalid_argument] on a negative dimension. *)

val add_to : triplets -> int -> int -> float -> unit
(** [add_to t i j v] accumulates [v] at [(i, j)].  Zero values are kept:
    they pin the position into the compressed pattern, which lets a
    caller reserve slots (e.g. diode companion stamps) whose values are
    filled in later via {!set_value}/{!add_to_value}. *)

val dim : triplets -> int

type t
(** A compressed sparse row (CSR) matrix with sorted column indices per
    row.  The value array is mutable (see {!set_value}); the pattern is
    not. *)

val compress : triplets -> t
(** Sum duplicates and build the CSR form.  O(nnz + n). *)

val n : t -> int
val nnz : t -> int

val get : t -> int -> int -> float
(** 0.0 for positions outside the pattern. *)

val index : t -> int -> int -> int option
(** Position of [(i, j)] in the value array, if present in the pattern.
    O(log row-length). *)

val set_value : t -> int -> float -> unit
val add_to_value : t -> int -> float -> unit

val copy : t -> t
(** Shares the (immutable) pattern, copies the values — the cheap way to
    restamp a few entries per Newton iteration. *)

val mul_vec : t -> float array -> float array

val to_dense : t -> Matrix.t
val of_dense : ?drop_tol:float -> Matrix.t -> t
(** Entries with magnitude [<= drop_tol] (default 0.0: keep everything
    nonzero) are dropped. *)

val min_degree_order : t -> int array
(** A fill-reducing column pre-ordering: minimum degree on the pattern
    of [A + Aᵀ].  [order.(k)] is the original column eliminated at step
    [k].  Computing the ordering is the expensive symbolic step; it
    depends only on the pattern, so it can be computed once and passed
    to every {!decompose} over matrices with the same pattern. *)

type factors
(** A sparse LU factorisation [P·A·Q = L·U] (partial-pivoting row
    permutation [P], fill-reducing column permutation [Q]). *)

val decompose : ?order:int array -> t -> factors
(** Factorise.  [order] defaults to {!min_degree_order}; pass a cached
    ordering to skip the symbolic analysis on repeated factorisations of
    the same pattern.  Raises {!Lu.Singular} when no acceptable pivot
    exists, and [Invalid_argument] if [order] has the wrong length. *)

val factor_order : factors -> int array
(** The column ordering actually used, for reuse. *)

val solve_factored : factors -> float array -> float array
(** O(nnz(L) + nnz(U)) per solve; the factors may be reused for any
    number of right-hand sides. *)

val solve : ?order:int array -> t -> float array -> float array
(** [decompose] + [solve_factored].  Raises as {!decompose}. *)
