type candidate = {
  deployments : Fmea.Fmeda.deployment list;
  spfm_pct : float;
  cost : float;
}
[@@deriving eq, show]

type slot = {
  slot_component : string;
  slot_failure_mode : string;
  slot_options : Reliability.Sm_model.mechanism list;
}

let slots ?(component_types = []) (table : Fmea.Table.t) sm_model =
  List.filter_map
    (fun (r : Fmea.Table.row) ->
      if not r.Fmea.Table.safety_related then None
      else
        let ctype =
          match List.assoc_opt r.Fmea.Table.component component_types with
          | Some ty -> ty
          | None -> r.Fmea.Table.component
        in
        let options =
          Reliability.Sm_model.applicable sm_model ~component_type:ctype
            ~failure_mode:r.Fmea.Table.failure_mode
        in
        if options = [] then None
        else
          Some
            {
              slot_component = r.Fmea.Table.component;
              slot_failure_mode = r.Fmea.Table.failure_mode;
              slot_options = options;
            })
    table.Fmea.Table.rows

let evaluate table deployments =
  let fmeda = Fmea.Fmeda.apply table deployments in
  {
    deployments;
    spfm_pct = Fmea.Metrics.spfm fmeda;
    cost = Fmea.Fmeda.total_cost deployments;
  }

(* ---------- incremental SPFM evaluation ----------

   [evaluate] re-runs [Fmeda.apply] over the whole table and re-derives
   the metric component by component — O(rows × deployments + rows ×
   components) per candidate, which dominates the search loops.  The
   evaluator below precomputes the per-row failure-rate shares and the
   per-component single-point sums once, then rescores only the
   components a deployment set actually touches.  Floating-point folds
   are replayed in exactly [Metrics.compute]'s order (row order within a
   component, first-SR-appearance order across components), so the result
   is bit-identical to [evaluate]. *)

type eval_row = {
  er_component : string;  (* lowercased, for deployment matching *)
  er_failure_mode : string;  (* lowercased *)
  er_safety_related : bool;
  er_base_spf : float;  (* the row's single_point_fit in the input table *)
  er_share : float;  (* λ share of this failure mode (SR rows only) *)
}

type eval_component = {
  ec_fit : float;  (* component FIT (first row, as in Metrics.compute) *)
  ec_rows : eval_row array;  (* every row of the component, in table order *)
  ec_base_spf : float;  (* fold of er_base_spf, row order *)
}

type evaluator = {
  ev_components : eval_component array;  (* SR components, first-appearance order *)
}

let make_evaluator (table : Fmea.Table.t) =
  let eval_row (r : Fmea.Table.row) =
    {
      er_component = String.lowercase_ascii r.Fmea.Table.component;
      er_failure_mode = String.lowercase_ascii r.Fmea.Table.failure_mode;
      er_safety_related = r.Fmea.Table.safety_related;
      er_base_spf = r.Fmea.Table.single_point_fit;
      er_share =
        (if r.Fmea.Table.safety_related then
           Reliability.Fit.share r.Fmea.Table.component_fit
             ~distribution_pct:r.Fmea.Table.distribution_pct
         else 0.0);
    }
  in
  let components =
    List.map
      (fun c ->
        let rows = Fmea.Table.rows_for table c in
        let fit =
          match rows with
          | (r : Fmea.Table.row) :: _ -> r.Fmea.Table.component_fit
          | [] -> 0.0
        in
        let ec_rows = Array.of_list (List.map eval_row rows) in
        let ec_base_spf =
          Array.fold_left (fun acc er -> acc +. er.er_base_spf) 0.0 ec_rows
        in
        { ec_fit = fit; ec_rows; ec_base_spf })
      (Fmea.Table.safety_related_components table)
  in
  { ev_components = Array.of_list components }

let evaluate_with ev deployments =
  (* Best matching deployment per row — [Fmeda.apply]'s fold verbatim
     (highest coverage wins, first deployment wins coverage ties). *)
  let best_for er =
    List.fold_left
      (fun acc (d : Fmea.Fmeda.deployment) ->
        if
          String.equal
            (String.lowercase_ascii d.Fmea.Fmeda.target_component)
            er.er_component
          && String.equal
               (String.lowercase_ascii d.Fmea.Fmeda.target_failure_mode)
               er.er_failure_mode
        then
          match acc with
          | Some (b : Fmea.Fmeda.deployment)
            when b.Fmea.Fmeda.mechanism.Reliability.Sm_model.coverage_pct
                 >= d.Fmea.Fmeda.mechanism.Reliability.Sm_model.coverage_pct ->
              acc
          | Some _ | None -> Some d
        else acc)
      None deployments
  in
  let component_spf ec =
    let touched =
      deployments <> []
      && Array.exists (fun er -> best_for er <> None) ec.ec_rows
    in
    if not touched then ec.ec_base_spf
    else
      Array.fold_left
        (fun acc er ->
          let spf =
            match best_for er with
            | None -> er.er_base_spf
            | Some d ->
                if er.er_safety_related then
                  Reliability.Fit.residual er.er_share
                    ~coverage_pct:
                      d.Fmea.Fmeda.mechanism.Reliability.Sm_model.coverage_pct
                else 0.0
          in
          acc +. spf)
        0.0 ec.ec_rows
  in
  let safety_related_fit =
    Array.fold_left (fun acc ec -> acc +. ec.ec_fit) 0.0 ev.ev_components
  in
  let single_point_fit =
    Array.fold_left (fun acc ec -> acc +. component_spf ec) 0.0 ev.ev_components
  in
  let spfm_pct =
    if safety_related_fit <= 0.0 then 100.0
    else 100.0 *. (1.0 -. (single_point_fit /. safety_related_fit))
  in
  { deployments; spfm_pct; cost = Fmea.Fmeda.total_cost deployments }

(* ---------- streaming exhaustive enumeration ----------

   The combination space is a mixed-radix counter: slot [i] contributes
   a digit in [0 .. length slot_options], digit 0 meaning "deploy
   nothing" and digit [j] the [j-1]-th option; the {e first} slot is the
   most significant digit.  Counting 0, 1, 2, … reproduces, candidate
   for candidate, the order the old list-based expansion
   ([without @ with_each]) produced — so every downstream tie-break
   (Pareto sweep stability, cheapest-meeting "first wins") is
   bit-identical — without ever materialising the combination list:
   candidates are decoded window by window, scored in parallel on the
   {!Exec} pool, and folded in counter order at flat memory. *)

let default_window = 8_192

(* Combination count with saturation (33 slots of 3 options already
   overflow 63-bit ints). *)
let combination_count slots =
  List.fold_left
    (fun acc s ->
      let r = List.length s.slot_options + 1 in
      if acc > max_int / r then max_int else acc * r)
    1 slots

let exhaustive_fold ?(component_types = []) ?(max_combinations = 2_000_000)
    ?(window = default_window) ?evaluator table sm_model ~init ~f =
  let slots = slots ~component_types table sm_model in
  let combinations = combination_count slots in
  if combinations > max_combinations then
    invalid_arg
      (Printf.sprintf
         "Search.exhaustive: %d combinations exceed the limit of %d"
         combinations max_combinations);
  (* Per-slot deployment table and mixed-radix weights (most significant
     digit first, as in the historical expansion order). *)
  let slot_arr = Array.of_list slots in
  let n = Array.length slot_arr in
  let deployments =
    Array.map
      (fun s ->
        Array.of_list
          (List.map
             (Fmea.Fmeda.deploy ~component:s.slot_component
                ~failure_mode:s.slot_failure_mode)
             s.slot_options))
      slot_arr
  in
  let radix = Array.map (fun d -> Array.length d + 1) deployments in
  let weight = Array.make n 1 in
  for i = n - 2 downto 0 do
    weight.(i) <- weight.(i + 1) * radix.(i + 1)
  done;
  let decode counter =
    let rec go i acc =
      if i < 0 then acc
      else
        let digit = counter / weight.(i) mod radix.(i) in
        go (i - 1)
          (if digit = 0 then acc else deployments.(i).(digit - 1) :: acc)
    in
    go (n - 1) []
  in
  let ev =
    match evaluator with Some ev -> ev | None -> make_evaluator table
  in
  let acc = ref init in
  let base = ref 0 in
  while !base < combinations do
    let len = min window (combinations - !base) in
    let window_candidates =
      Exec.scheduled_map ~key:"optimize.search" (evaluate_with ev)
        (List.init len (fun k -> decode (!base + k)))
    in
    List.iter (fun c -> acc := f !acc c) window_candidates;
    base := !base + len
  done;
  !acc

let exhaustive ?(component_types = []) ?(max_combinations = 200_000) ?evaluator
    table sm_model =
  List.rev
    (exhaustive_fold ~component_types ~max_combinations ?evaluator table
       sm_model ~init:[] ~f:(fun acc c -> c :: acc))

let greedy ?(component_types = []) ?evaluator ~target table sm_model =
  let all_slots = slots ~component_types table sm_model in
  let ev =
    match evaluator with Some ev -> ev | None -> make_evaluator table
  in
  let target_spfm = Fmea.Asil.spfm_target target in
  let met spfm =
    match target_spfm with None -> true | Some t -> spfm >= t
  in
  let rec step current =
    let current_candidate = evaluate_with ev current in
    if met current_candidate.spfm_pct then current_candidate
    else begin
      (* Candidate moves: deploy a mechanism on an empty slot, or upgrade
         the mechanism on an occupied one.  Score is SPFM gain per added
         cost (upgrades count only the cost delta, floored so free or
         cheaper upgrades are strongly preferred).  Moves are enumerated
         sequentially (fixing the tie-break order), scored on the domain
         pool, then folded in enumeration order — the same move wins as
         in a sequential run. *)
      let slot_matches s (d : Fmea.Fmeda.deployment) =
        String.equal d.Fmea.Fmeda.target_component s.slot_component
        && String.equal d.Fmea.Fmeda.target_failure_mode s.slot_failure_mode
      in
      let moves =
        List.concat_map
          (fun s ->
            let existing = List.find_opt (slot_matches s) current in
            let others = List.filter (fun d -> not (slot_matches s d)) current in
            List.filter_map
              (fun (m : Reliability.Sm_model.mechanism) ->
                let already =
                  match existing with
                  | Some d -> d.Fmea.Fmeda.mechanism = m
                  | None -> false
                in
                if already then None
                else
                  let d =
                    Fmea.Fmeda.deploy ~component:s.slot_component
                      ~failure_mode:s.slot_failure_mode m
                  in
                  Some (d :: others, m, existing))
              s.slot_options)
          all_slots
      in
      let scored =
        Exec.scheduled_map ~key:"optimize.greedy"
          (fun (next, (m : Reliability.Sm_model.mechanism), existing) ->
            let c = evaluate_with ev next in
            let gain = c.spfm_pct -. current_candidate.spfm_pct in
            let cost_delta =
              m.Reliability.Sm_model.cost
              -.
              match existing with
              | Some (e : Fmea.Fmeda.deployment) ->
                  e.Fmea.Fmeda.mechanism.Reliability.Sm_model.cost
              | None -> 0.0
            in
            (next, gain, gain /. Float.max cost_delta 0.01))
          moves
      in
      let best =
        List.fold_left
          (fun acc (next, gain, score) ->
            if gain <= 0.0 then acc
            else
              match acc with
              | Some (_, best_score) when best_score >= score -> acc
              | Some _ | None -> Some (next, score))
          None scored
      in
      match best with
      | None -> current_candidate (* no mechanism helps further *)
      | Some (next, _) -> step next
    end
  in
  step []

(* Sort by ascending cost (descending SPFM within equal cost; stable, so
   the earliest candidate wins ties) and sweep: a candidate survives iff
   its SPFM strictly beats everything cheaper-or-equal already kept.
   O(n log n) — the exhaustive search can emit tens of thousands of
   candidates, so the naive pairwise check is far too slow. *)
let pareto_front candidates =
  let sorted =
    List.stable_sort
      (fun a b ->
        match Float.compare a.cost b.cost with
        | 0 -> Float.compare b.spfm_pct a.spfm_pct
        | n -> n)
      candidates
  in
  let front, _ =
    List.fold_left
      (fun (kept, best_spfm) c ->
        if c.spfm_pct > best_spfm then (c :: kept, c.spfm_pct)
        else (kept, best_spfm))
      ([], Float.neg_infinity) sorted
  in
  List.rev front

(* One step of the cheapest-meeting fold — shared between the list-based
   entry point and the streaming optimiser so both apply the identical
   "cheaper wins, higher SPFM breaks cost ties, first wins exact ties"
   rule in candidate order. *)
let cheapest_step ~meets acc c =
  if not (meets c) then acc
  else
    match acc with
    | None -> Some c
    | Some best ->
        if c.cost < best.cost || (c.cost = best.cost && c.spfm_pct > best.spfm_pct)
        then Some c
        else acc

let cheapest_meeting ~target candidates =
  let target_spfm = Fmea.Asil.spfm_target target in
  let meets c =
    match target_spfm with None -> true | Some t -> c.spfm_pct >= t
  in
  List.fold_left (cheapest_step ~meets) None candidates

(* Online Pareto maintenance.  The front is kept sorted by ascending
   cost with strictly increasing SPFM, so a fold of [front_insert] over
   any candidate sequence ends in exactly [pareto_front] of that
   sequence: a new candidate is dropped iff some earlier-kept candidate
   is cheaper-or-equal with at least its SPFM (which also encodes the
   "first candidate wins exact ties" rule — the incumbent was folded
   first), and otherwise evicts the now-dominated suffix it supersedes.
   Dropped candidates can never re-enter a batch front, so discarding
   them immediately is lossless — this is what lets {!optimise} stream
   millions of combinations at flat memory. *)
let front_insert front c =
  if
    List.exists
      (fun f -> f.cost <= c.cost && f.spfm_pct >= c.spfm_pct)
      front
  then front
  else
    let rec ins = function
      | [] -> [ c ]
      | f :: rest ->
          if f.cost < c.cost then f :: ins rest
          else c :: List.filter (fun g -> g.spfm_pct > c.spfm_pct) (f :: rest)
    in
    ins front

let optimise ?(component_types = []) ?evaluator ~target table sm_model =
  let target_spfm = Fmea.Asil.spfm_target target in
  let meets c =
    match target_spfm with None -> true | Some t -> c.spfm_pct >= t
  in
  match
    exhaustive_fold ~component_types ?evaluator table sm_model
      ~init:(None, [])
      ~f:(fun (best, front) c ->
        (cheapest_step ~meets best c, front_insert front c))
  with
  | best, front -> (best, front)
  | exception Invalid_argument _ ->
      let g = greedy ~component_types ?evaluator ~target table sm_model in
      (Some g, [ g ])
