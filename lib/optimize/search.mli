(** Safety-mechanism deployment search (DECISIVE Step 4b).

    "The users may ... let SAME determine the solution for the target
    safety level and costs.  If there are multiple options available, the
    users may ... ask SAME to search for the pareto front of viable
    solutions."

    A candidate solution is a set of deployments — at most one mechanism
    per safety-related (component, failure-mode) row.  Its quality is the
    SPFM of the FMEDA after applying it; its cost is the summed mechanism
    cost. *)

type candidate = {
  deployments : Fmea.Fmeda.deployment list;
  spfm_pct : float;
  cost : float;
}
[@@deriving eq, show]

type slot = {
  slot_component : string;
  slot_failure_mode : string;
  slot_options : Reliability.Sm_model.mechanism list;
      (** applicable mechanisms, descending coverage; the empty deployment
          is always also an option *)
}

val slots :
  ?component_types:(string * string) list ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  slot list
(** One slot per safety-related row with at least one applicable
    mechanism. *)

val evaluate : Fmea.Table.t -> Fmea.Fmeda.deployment list -> candidate
(** The reference scorer: [Fmeda.apply] over the full table, then
    {!Fmea.Metrics.spfm}.  O(rows) per call — fine for one-off scoring;
    the search loops use {!evaluate_with} instead. *)

type evaluator
(** Precomputed scoring state for one FMEA table: per-row failure-rate
    shares and per-component single-point sums.  Immutable — safe to
    share across the pool's domains. *)

val make_evaluator : Fmea.Table.t -> evaluator

val evaluate_with : evaluator -> Fmea.Fmeda.deployment list -> candidate
(** Incremental scoring: only the components the deployment set touches
    are re-summed; untouched components reuse their precomputed
    single-point total.  Floating-point folds replay
    {!Fmea.Metrics.compute}'s exact order, so the candidate is
    bit-identical to {!evaluate} on the same table and deployments. *)

val exhaustive_fold :
  ?component_types:(string * string) list ->
  ?max_combinations:int ->
  ?window:int ->
  ?evaluator:evaluator ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  init:'acc ->
  f:('acc -> candidate -> 'acc) ->
  'acc
(** Streaming exhaustive enumeration: fold [f] over every combination of
    per-slot choices (including "deploy nothing") {e without}
    materialising the combination list.  The space is walked as a
    mixed-radix counter (first slot most significant, digit 0 = no
    deployment), which reproduces the historical list order candidate
    for candidate — all downstream tie-breaks are bit-identical.
    Candidates are decoded and scored [window] at a time (default 8_192)
    in parallel chunks on the {!Exec} pool, then folded sequentially in
    counter order, so peak memory is O(window + slots) regardless of the
    combination count.  Raises [Invalid_argument] if the count exceeds
    [max_combinations] (default 2_000_000 — 10x the list-based cap,
    affordable because nothing is retained). *)

val exhaustive :
  ?component_types:(string * string) list ->
  ?max_combinations:int ->
  ?evaluator:evaluator ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  candidate list
(** {!exhaustive_fold} accumulated into a list.  Raises
    [Invalid_argument] if the combination count exceeds
    [max_combinations] (default 200_000, the historical list-based cap)
    — use {!greedy} or {!exhaustive_fold} then.  The returned list
    (order and every value) is identical to a sequential run of the old
    recursive expansion. *)

val greedy :
  ?component_types:(string * string) list ->
  ?evaluator:evaluator ->
  target:Ssam.Requirement.integrity_level ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  candidate
(** Baseline strategy (what a manual engineer approximates, and the
    comparison point for the benches): repeatedly deploy the mechanism
    with the best residual-FIT-reduction per cost until the target SPFM is
    met or no mechanism helps. *)

val pareto_front : candidate list -> candidate list
(** Non-dominated candidates (maximise SPFM, minimise cost), sorted by
    ascending cost.  Deterministic: among equal (spfm, cost) the first
    candidate wins. *)

val cheapest_meeting :
  target:Ssam.Requirement.integrity_level -> candidate list -> candidate option
(** Cheapest candidate meeting the SPFM target; ties broken by higher
    SPFM. *)

val optimise :
  ?component_types:(string * string) list ->
  ?evaluator:evaluator ->
  target:Ssam.Requirement.integrity_level ->
  Fmea.Table.t ->
  Reliability.Sm_model.t ->
  candidate option * candidate list
(** SAME's end-to-end Step 4b: exhaustive search when feasible (falling
    back to greedy), returning the chosen solution and the Pareto front.
    Runs on {!exhaustive_fold} with an online cheapest/Pareto
    accumulator, so design spaces up to ~2 million combinations are
    searched exactly at flat memory; the result equals
    [cheapest_meeting ~target (exhaustive ...), pareto_front
    (exhaustive ...)] wherever the list-based search could run at all.

    [evaluator] (here and in {!exhaustive}/{!greedy}) supplies a
    prebuilt scorer for [table] — the incremental engine memoises it by
    table fingerprint so warm re-runs skip {!make_evaluator}.  It {e
    must} come from {!make_evaluator} on the same table. *)
