(** Abstract syntax of the SAME query language.

    Programs are statement sequences: variable declarations, assignments,
    expression statements, conditionals and [return].  Expressions are
    EOL-flavoured: navigation ([a.b]), first-order collection operations
    with lambda arguments ([seq.select(x | x.fit > 10)]) and the usual
    operators. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Implies
[@@deriving eq, show]

type unop = Neg | Not [@@deriving eq, show]

type expr =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Ident of string
  | Field of expr * string  (** [e.name] — record navigation *)
  | Index of expr * expr  (** [e[i]] *)
  | Call of expr * string * arg list  (** [e.m(args)] — method call *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | If_expr of expr * expr * expr  (** [if (c) e1 else e2] as an expression *)
  | Seq_lit of expr list  (** [Sequence(e1, e2, ...)] — built by the parser *)
  | At of int * expr
      (** source-position annotation (byte offset of the node's first
          token); inserted by the parser, transparent to evaluation.
          {!Typecheck} turns the offsets into line:column diagnostics. *)

and arg =
  | Positional of expr
  | Lambda of string * expr  (** [x | body] *)
[@@deriving eq, show]

type stmt =
  | Var_decl of string * expr
  | Assign of string * expr
  | Expr_stmt of expr
  | Return of expr
  | If_stmt of expr * stmt list * stmt list
[@@deriving eq, show]

type program = stmt list [@@deriving eq, show]

let rec strip = function At (_, e) -> strip e | e -> e
(** Drop position annotations off the head of an expression. *)

let pos_of = function At (p, _) -> Some p | _ -> None
(** Byte offset of an annotated node, if the parser recorded one. *)
