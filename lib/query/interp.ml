open Modelio

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

module Env = Map.Make (String)

type env = Mvalue.t Env.t

let env_empty = Env.empty

let env_bind env name v = Env.add name v env

let env_of_models models =
  List.fold_left (fun env (name, v) -> Env.add name v env) Env.empty models

let as_num what = function
  | Mvalue.Num f -> f
  | v -> fail "%s: expected a number, got %s" what (Mvalue.type_name v)

let as_str what = function
  | Mvalue.Str s -> s
  | v -> fail "%s: expected a string, got %s" what (Mvalue.type_name v)

(* Structural comparison for sorting and ordering operators. *)
let rec compare_values a b =
  match (a, b) with
  | Mvalue.Num x, Mvalue.Num y -> Float.compare x y
  | Mvalue.Str x, Mvalue.Str y -> String.compare x y
  | Mvalue.Bool x, Mvalue.Bool y -> Bool.compare x y
  | Mvalue.Null, Mvalue.Null -> 0
  | Mvalue.Seq x, Mvalue.Seq y -> List.compare compare_values x y
  | _ -> fail "cannot compare %s with %s" (Mvalue.type_name a) (Mvalue.type_name b)

let equal_values a b =
  match (a, b) with
  | Mvalue.Num x, Mvalue.Num y -> x = y
  | _ -> Mvalue.equal a b

let binop op a b =
  match (op, a, b) with
  | Ast.Add, Mvalue.Num x, Mvalue.Num y -> Mvalue.Num (x +. y)
  | Ast.Add, Mvalue.Str x, Mvalue.Str y -> Mvalue.Str (x ^ y)
  | Ast.Add, Mvalue.Str x, Mvalue.Num y ->
      Mvalue.Str (x ^ Printf.sprintf "%g" y)
  | Ast.Add, Mvalue.Num x, Mvalue.Str y ->
      Mvalue.Str (Printf.sprintf "%g" x ^ y)
  | Ast.Add, Mvalue.Seq x, Mvalue.Seq y -> Mvalue.Seq (x @ y)
  | Ast.Sub, Mvalue.Num x, Mvalue.Num y -> Mvalue.Num (x -. y)
  | Ast.Mul, Mvalue.Num x, Mvalue.Num y -> Mvalue.Num (x *. y)
  | Ast.Div, Mvalue.Num x, Mvalue.Num y ->
      if y = 0.0 then fail "division by zero" else Mvalue.Num (x /. y)
  | Ast.Mod, Mvalue.Num x, Mvalue.Num y ->
      if y = 0.0 then fail "mod by zero" else Mvalue.Num (Float.rem x y)
  | Ast.Eq, a, b -> Mvalue.Bool (equal_values a b)
  | Ast.Neq, a, b -> Mvalue.Bool (not (equal_values a b))
  | Ast.Lt, a, b -> Mvalue.Bool (compare_values a b < 0)
  | Ast.Le, a, b -> Mvalue.Bool (compare_values a b <= 0)
  | Ast.Gt, a, b -> Mvalue.Bool (compare_values a b > 0)
  | Ast.Ge, a, b -> Mvalue.Bool (compare_values a b >= 0)
  | (Ast.And | Ast.Or | Ast.Implies), _, _ ->
      assert false (* short-circuited in eval_expr *)
  | (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b ->
      fail "operator incompatible with %s and %s" (Mvalue.type_name a)
        (Mvalue.type_name b)

(* Field navigation: on a record, field lookup; on a sequence, map the
   navigation over the elements (EOL collection navigation). *)
let rec navigate v name =
  match v with
  | Mvalue.Record _ -> (
      match Mvalue.field v name with
      | Some x -> x
      | None -> fail "record has no field '%s'" name)
  | Mvalue.Seq items -> Mvalue.Seq (List.map (fun x -> navigate x name) items)
  | _ -> fail "cannot navigate '.%s' on %s" name (Mvalue.type_name v)

exception Returned of Mvalue.t

let num_method recv name =
  let f = as_num name recv in
  match name with
  | "abs" -> Some (Mvalue.Num (Float.abs f))
  | "floor" -> Some (Mvalue.Num (Float.round (Float.of_int (int_of_float (floor f)))))
  | "ceil" -> Some (Mvalue.Num (ceil f))
  | "round" -> Some (Mvalue.Num (Float.round f))
  | "toStr" -> Some (Mvalue.Str (Printf.sprintf "%g" f))
  | _ -> None

let rec eval_expr env expr =
  match expr with
  | Ast.At (_, e) -> eval_expr env e
  | Ast.Number f -> Mvalue.Num f
  | Ast.String s -> Mvalue.Str s
  | Ast.Bool b -> Mvalue.Bool b
  | Ast.Null -> Mvalue.Null
  | Ast.Seq_lit items -> Mvalue.Seq (List.map (eval_expr env) items)
  | Ast.Ident name -> (
      match Env.find_opt name env with
      | Some v -> v
      | None -> fail "unknown identifier '%s'" name)
  | Ast.Field (e, name) -> navigate (eval_expr env e) name
  | Ast.Index (e, i) -> (
      let v = eval_expr env e in
      let idx = int_of_float (as_num "index" (eval_expr env i)) in
      match v with
      | Mvalue.Seq items -> (
          match List.nth_opt items idx with
          | Some x -> x
          | None -> fail "index %d out of bounds (size %d)" idx (List.length items))
      | _ -> fail "cannot index %s" (Mvalue.type_name v))
  | Ast.Unop (Ast.Neg, e) -> Mvalue.Num (-.as_num "negation" (eval_expr env e))
  | Ast.Unop (Ast.Not, e) -> Mvalue.Bool (not (Mvalue.truthy (eval_expr env e)))
  | Ast.Binop (Ast.And, a, b) ->
      if Mvalue.truthy (eval_expr env a) then
        Mvalue.Bool (Mvalue.truthy (eval_expr env b))
      else Mvalue.Bool false
  | Ast.Binop (Ast.Or, a, b) ->
      if Mvalue.truthy (eval_expr env a) then Mvalue.Bool true
      else Mvalue.Bool (Mvalue.truthy (eval_expr env b))
  | Ast.Binop (Ast.Implies, a, b) ->
      if Mvalue.truthy (eval_expr env a) then
        Mvalue.Bool (Mvalue.truthy (eval_expr env b))
      else Mvalue.Bool true
  | Ast.Binop (op, a, b) -> binop op (eval_expr env a) (eval_expr env b)
  | Ast.If_expr (c, t, e) ->
      if Mvalue.truthy (eval_expr env c) then eval_expr env t
      else eval_expr env e
  | Ast.Call (recv, name, args) -> eval_call env (eval_expr env recv) name args

and eval_lambda env args what =
  match args with
  | [ Ast.Lambda (x, body) ] ->
      fun v -> eval_expr (Env.add x v env) body
  | _ -> fail "%s expects a single lambda argument (x | expr)" what

and eval_positional env args what n =
  let vals =
    List.map
      (function
        | Ast.Positional e -> eval_expr env e
        | Ast.Lambda _ -> fail "%s does not take a lambda" what)
      args
  in
  if List.length vals <> n then
    fail "%s expects %d argument(s), got %d" what n (List.length vals);
  vals

and eval_call env recv name args =
  let lambda () = eval_lambda env args name in
  let pos n = eval_positional env args name n in
  match (recv, name) with
  (* Collection operations. *)
  | Mvalue.Seq items, "select" ->
      let f = lambda () in
      Mvalue.Seq (List.filter (fun v -> Mvalue.truthy (f v)) items)
  | Mvalue.Seq items, "reject" ->
      let f = lambda () in
      Mvalue.Seq (List.filter (fun v -> not (Mvalue.truthy (f v))) items)
  | Mvalue.Seq items, "collect" ->
      let f = lambda () in
      Mvalue.Seq (List.map f items)
  | Mvalue.Seq items, "exists" ->
      let f = lambda () in
      Mvalue.Bool (List.exists (fun v -> Mvalue.truthy (f v)) items)
  | Mvalue.Seq items, "forAll" ->
      let f = lambda () in
      Mvalue.Bool (List.for_all (fun v -> Mvalue.truthy (f v)) items)
  | Mvalue.Seq items, "selectOne" -> (
      let f = lambda () in
      match List.find_opt (fun v -> Mvalue.truthy (f v)) items with
      | Some v -> v
      | None -> Mvalue.Null)
  | Mvalue.Seq items, "count" ->
      let f = lambda () in
      Mvalue.Num
        (float_of_int
           (List.length (List.filter (fun v -> Mvalue.truthy (f v)) items)))
  | Mvalue.Seq items, "sortBy" ->
      let f = lambda () in
      let keyed = List.map (fun v -> (f v, v)) items in
      Mvalue.Seq
        (List.map snd
           (List.stable_sort (fun (a, _) (b, _) -> compare_values a b) keyed))
  | Mvalue.Seq items, "size" ->
      ignore (pos 0);
      Mvalue.Num (float_of_int (List.length items))
  | Mvalue.Seq items, "isEmpty" ->
      ignore (pos 0);
      Mvalue.Bool (items = [])
  | Mvalue.Seq items, "notEmpty" ->
      ignore (pos 0);
      Mvalue.Bool (items <> [])
  | Mvalue.Seq items, "first" -> (
      ignore (pos 0);
      match items with v :: _ -> v | [] -> Mvalue.Null)
  | Mvalue.Seq items, "last" -> (
      ignore (pos 0);
      match List.rev items with v :: _ -> v | [] -> Mvalue.Null)
  | Mvalue.Seq items, "at" -> (
      match pos 1 with
      | [ i ] -> (
          let idx = int_of_float (as_num "at" i) in
          match List.nth_opt items idx with
          | Some v -> v
          | None -> fail "at(%d): out of bounds (size %d)" idx (List.length items))
      | _ -> assert false)
  | Mvalue.Seq items, "includes" -> (
      match pos 1 with
      | [ v ] -> Mvalue.Bool (List.exists (equal_values v) items)
      | _ -> assert false)
  | Mvalue.Seq items, "indexOf" -> (
      match pos 1 with
      | [ v ] ->
          let rec go i = function
            | [] -> -1
            | x :: tl -> if equal_values v x then i else go (i + 1) tl
          in
          Mvalue.Num (float_of_int (go 0 items))
      | _ -> assert false)
  | Mvalue.Seq items, "sum" ->
      ignore (pos 0);
      Mvalue.Num (List.fold_left (fun acc v -> acc +. as_num "sum" v) 0.0 items)
  | Mvalue.Seq items, "avg" ->
      ignore (pos 0);
      if items = [] then fail "avg of empty sequence"
      else
        Mvalue.Num
          (List.fold_left (fun acc v -> acc +. as_num "avg" v) 0.0 items
          /. float_of_int (List.length items))
  | Mvalue.Seq items, "min" -> (
      ignore (pos 0);
      match items with
      | [] -> Mvalue.Null
      | first :: rest ->
          List.fold_left
            (fun acc v -> if compare_values v acc < 0 then v else acc)
            first rest)
  | Mvalue.Seq items, "max" -> (
      ignore (pos 0);
      match items with
      | [] -> Mvalue.Null
      | first :: rest ->
          List.fold_left
            (fun acc v -> if compare_values v acc > 0 then v else acc)
            first rest)
  | Mvalue.Seq items, "flatten" ->
      ignore (pos 0);
      Mvalue.Seq
        (List.concat_map
           (function Mvalue.Seq inner -> inner | v -> [ v ])
           items)
  | Mvalue.Seq items, "distinct" ->
      ignore (pos 0);
      let rec dedup seen = function
        | [] -> List.rev seen
        | v :: tl ->
            if List.exists (equal_values v) seen then dedup seen tl
            else dedup (v :: seen) tl
      in
      Mvalue.Seq (dedup [] items)
  (* String operations. *)
  | Mvalue.Str s, "toUpperCase" ->
      ignore (pos 0);
      Mvalue.Str (String.uppercase_ascii s)
  | Mvalue.Str s, "toLowerCase" ->
      ignore (pos 0);
      Mvalue.Str (String.lowercase_ascii s)
  | Mvalue.Str s, "trim" ->
      ignore (pos 0);
      Mvalue.Str (String.trim s)
  | Mvalue.Str s, "length" ->
      ignore (pos 0);
      Mvalue.Num (float_of_int (String.length s))
  | Mvalue.Str s, "startsWith" -> (
      match pos 1 with
      | [ p ] ->
          let p = as_str "startsWith" p in
          Mvalue.Bool
            (String.length s >= String.length p
            && String.sub s 0 (String.length p) = p)
      | _ -> assert false)
  | Mvalue.Str s, "endsWith" -> (
      match pos 1 with
      | [ p ] ->
          let p = as_str "endsWith" p in
          Mvalue.Bool
            (String.length s >= String.length p
            && String.sub s (String.length s - String.length p) (String.length p)
               = p)
      | _ -> assert false)
  | Mvalue.Str s, "contains" -> (
      match pos 1 with
      | [ p ] ->
          let p = as_str "contains" p in
          let n = String.length s and m = String.length p in
          let rec search i =
            if i + m > n then false
            else if String.sub s i m = p then true
            else search (i + 1)
          in
          Mvalue.Bool (m = 0 || search 0)
      | _ -> assert false)
  | Mvalue.Str s, "split" -> (
      match pos 1 with
      | [ sep ] ->
          let sep = as_str "split" sep in
          if sep = "" then fail "split: empty separator"
          else
            let parts = ref [] in
            let buf = Buffer.create 16 in
            let n = String.length s and m = String.length sep in
            let rec go i =
              if i >= n then parts := Buffer.contents buf :: !parts
              else if i + m <= n && String.sub s i m = sep then begin
                parts := Buffer.contents buf :: !parts;
                Buffer.clear buf;
                go (i + m)
              end
              else begin
                Buffer.add_char buf s.[i];
                go (i + 1)
              end
            in
            go 0;
            Mvalue.Seq (List.rev_map (fun p -> Mvalue.Str p) !parts)
      | _ -> assert false)
  | Mvalue.Str s, "replace" -> (
      match pos 2 with
      | [ a; b ] ->
          let a = as_str "replace" a and b = as_str "replace" b in
          if a = "" then fail "replace: empty pattern"
          else
            let buf = Buffer.create (String.length s) in
            let n = String.length s and m = String.length a in
            let rec go i =
              if i >= n then ()
              else if i + m <= n && String.sub s i m = a then begin
                Buffer.add_string buf b;
                go (i + m)
              end
              else begin
                Buffer.add_char buf s.[i];
                go (i + 1)
              end
            in
            go 0;
            Mvalue.Str (Buffer.contents buf)
      | _ -> assert false)
  | Mvalue.Str s, "toNumber" -> (
      ignore (pos 0);
      match Spreadsheet.number s with
      | Some f -> Mvalue.Num f
      | None -> fail "toNumber: %S is not numeric" s)
  (* Record operations. *)
  | Mvalue.Record fields, "fields" ->
      ignore (pos 0);
      Mvalue.Seq (List.map (fun (k, _) -> Mvalue.Str k) fields)
  | Mvalue.Record _, "has" -> (
      match pos 1 with
      | [ n ] ->
          Mvalue.Bool (Option.is_some (Mvalue.field recv (as_str "has" n)))
      | _ -> assert false)
  | Mvalue.Record _, "get" -> (
      match pos 1 with
      | [ n ] -> (
          match Mvalue.field recv (as_str "get" n) with
          | Some v -> v
          | None -> Mvalue.Null)
      | _ -> assert false)
  (* Number methods. *)
  | Mvalue.Num _, _ -> (
      match num_method recv name with
      | Some v ->
          ignore (pos 0);
          v
      | None -> fail "number has no method '%s'" name)
  | recv, name ->
      fail "%s has no method '%s'" (Mvalue.type_name recv) name

let rec exec_stmts env last = function
  | [] -> (env, last)
  | Ast.Var_decl (name, e) :: rest | Ast.Assign (name, e) :: rest ->
      let v = eval_expr env e in
      exec_stmts (Env.add name v env) last rest
  | Ast.Expr_stmt e :: rest ->
      let v = eval_expr env e in
      exec_stmts env v rest
  | Ast.Return e :: _ -> raise (Returned (eval_expr env e))
  | Ast.If_stmt (c, then_, else_) :: rest ->
      let branch = if Mvalue.truthy (eval_expr env c) then then_ else else_ in
      let env, last = exec_stmts env last branch in
      exec_stmts env last rest

let run env program =
  match exec_stmts env Mvalue.Null program with
  | _, last -> last
  | exception Returned v -> v

let run_string env src = run env (Parser.parse_program src)
