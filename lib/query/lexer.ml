exception Lex_error of { pos : int; message : string }

let fail pos message = raise (Lex_error { pos; message })

let keyword = function
  | "true" -> Some Token.TRUE
  | "false" -> Some Token.FALSE
  | "null" -> Some Token.NULL
  | "var" -> Some Token.VAR
  | "return" -> Some Token.RETURN
  | "if" -> Some Token.IF
  | "else" -> Some Token.ELSE
  | "and" -> Some Token.AND
  | "or" -> Some Token.OR
  | "not" -> Some Token.NOT
  | "mod" -> Some Token.MOD
  | "implies" -> Some Token.IMPLIES
  | _ -> None

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  (* Failures report the byte offset in the payload and line:column in the
     message (the lexer is the only place that still has the source). *)
  let fail pos message =
    fail pos (Printf.sprintf "%s at %s" message (Pos.describe_offset src pos))
  in
  let tokens = ref [] in
  let emit pos t = tokens := (t, pos) :: !tokens in
  let rec go i =
    if i >= n then emit i Token.EOF
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec skip j =
            if j + 1 >= n then fail i "unterminated comment"
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else skip (j + 1)
          in
          go (skip (i + 2))
      | '(' -> emit i Token.LPAREN; go (i + 1)
      | ')' -> emit i Token.RPAREN; go (i + 1)
      | '[' -> emit i Token.LBRACKET; go (i + 1)
      | ']' -> emit i Token.RBRACKET; go (i + 1)
      | '.' -> emit i Token.DOT; go (i + 1)
      | ',' -> emit i Token.COMMA; go (i + 1)
      | ';' -> emit i Token.SEMI; go (i + 1)
      | '|' -> emit i Token.BAR; go (i + 1)
      | '+' -> emit i Token.PLUS; go (i + 1)
      | '-' -> emit i Token.MINUS; go (i + 1)
      | '*' -> emit i Token.STAR; go (i + 1)
      | '/' -> emit i Token.SLASH; go (i + 1)
      | '=' -> emit i Token.EQ; go (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
          emit i Token.ASSIGN;
          go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
          emit i Token.NEQ;
          go (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' ->
          emit i Token.LE;
          go (i + 2)
      | '<' -> emit i Token.LT; go (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' ->
          emit i Token.GE;
          go (i + 2)
      | '>' -> emit i Token.GT; go (i + 1)
      | ('"' | '\'') as quote ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then fail i "unterminated string"
            else if src.[j] = quote then j + 1
            else if src.[j] = '\\' && j + 1 < n then begin
              (match src.[j + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | c -> Buffer.add_char buf c);
              str (j + 2)
            end
            else begin
              Buffer.add_char buf src.[j];
              str (j + 1)
            end
          in
          let next = str (i + 1) in
          emit i (Token.STRING (Buffer.contents buf));
          go next
      | c when is_digit c ->
          let rec num j =
            if j < n && (is_digit src.[j] || src.[j] = '.') then num (j + 1)
            else if
              j < n
              && (src.[j] = 'e' || src.[j] = 'E')
              && j + 1 < n
              && (is_digit src.[j + 1] || src.[j + 1] = '-' || src.[j + 1] = '+')
            then begin
              let k = j + 2 in
              let rec exp k = if k < n && is_digit src.[k] then exp (k + 1) else k in
              exp k
            end
            else j
          in
          let next = num i in
          let text = String.sub src i (next - i) in
          (match float_of_string_opt text with
          | Some f -> emit i (Token.NUMBER f)
          | None -> fail i (Printf.sprintf "invalid number %S" text));
          go next
      | c when is_ident_start c ->
          let rec ident j =
            if j < n && is_ident_char src.[j] then ident (j + 1) else j
          in
          let next = ident i in
          let text = String.sub src i (next - i) in
          emit i
            (match keyword text with
            | Some t -> t
            | None -> Token.IDENT text);
          go next
      | c -> fail i (Printf.sprintf "unexpected character '%c'" c)
  in
  go 0;
  List.rev !tokens
