exception Parse_error of { pos : int; message : string }

type state = { mutable toks : (Token.t * int) list }

let fail pos message = raise (Parse_error { pos; message })

let peek st =
  match st.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Token.EOF, 0)

let advance st =
  match st.toks with _ :: tl -> st.toks <- tl | [] -> ()

let expect st tok =
  let t, p = peek st in
  if Token.equal t tok then advance st
  else
    fail p
      (Printf.sprintf "expected %s, found %s" (Token.describe tok)
         (Token.describe t))

let expect_ident st =
  match peek st with
  | Token.IDENT name, _ ->
      advance st;
      name
  | t, p -> fail p (Printf.sprintf "expected identifier, found %s" (Token.describe t))

(* Nodes whose position a diagnostic may want (operands of operators,
   navigation, calls) are wrapped in [Ast.At] with the byte offset of the
   token that introduced them. *)
let at p e = Ast.At (p, e)

let rec parse_expr st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | Token.IMPLIES, p ->
      advance st;
      let rhs = parse_implies st in
      at p (Ast.Binop (Ast.Implies, lhs, rhs))
  | _ -> lhs

and parse_or st =
  let rec go lhs =
    match peek st with
    | Token.OR, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Or, lhs, parse_and st)))
    | _ -> lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    match peek st with
    | Token.AND, p ->
        advance st;
        go (at p (Ast.Binop (Ast.And, lhs, parse_cmp st)))
    | _ -> lhs
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ, p -> Some (Ast.Eq, p)
    | Token.NEQ, p -> Some (Ast.Neq, p)
    | Token.LT, p -> Some (Ast.Lt, p)
    | Token.LE, p -> Some (Ast.Le, p)
    | Token.GT, p -> Some (Ast.Gt, p)
    | Token.GE, p -> Some (Ast.Ge, p)
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some (op, p) ->
      advance st;
      at p (Ast.Binop (op, lhs, parse_add st))

and parse_add st =
  let rec go lhs =
    match peek st with
    | Token.PLUS, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Add, lhs, parse_mul st)))
    | Token.MINUS, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Sub, lhs, parse_mul st)))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Token.STAR, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Mul, lhs, parse_unary st)))
    | Token.SLASH, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Div, lhs, parse_unary st)))
    | Token.MOD, p ->
        advance st;
        go (at p (Ast.Binop (Ast.Mod, lhs, parse_unary st)))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS, p ->
      advance st;
      at p (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.NOT, p ->
      advance st;
      at p (Ast.Unop (Ast.Not, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go e =
    match peek st with
    | Token.DOT, _ ->
        advance st;
        let p = snd (peek st) in
        let name = expect_ident st in
        (match peek st with
        | Token.LPAREN, _ ->
            advance st;
            let args = parse_args st in
            expect st Token.RPAREN;
            go (at p (Ast.Call (e, name, args)))
        | _ -> go (at p (Ast.Field (e, name))))
    | Token.LBRACKET, p ->
        advance st;
        let idx = parse_expr st in
        expect st Token.RBRACKET;
        go (at p (Ast.Index (e, idx)))
    | _ -> e
  in
  go (parse_primary st)

and parse_args st =
  match peek st with
  | Token.RPAREN, _ -> []
  | _ ->
      (* A leading `IDENT |` introduces a lambda argument. *)
      let first =
        match st.toks with
        | (Token.IDENT name, _) :: (Token.BAR, _) :: rest ->
            st.toks <- rest;
            Ast.Lambda (name, parse_expr st)
        | _ -> Ast.Positional (parse_expr st)
      in
      let rec more acc =
        match peek st with
        | Token.COMMA, _ ->
            advance st;
            more (Ast.Positional (parse_expr st) :: acc)
        | _ -> List.rev acc
      in
      more [ first ]

and parse_primary st =
  match peek st with
  | Token.NUMBER f, p ->
      advance st;
      at p (Ast.Number f)
  | Token.STRING s, p ->
      advance st;
      at p (Ast.String s)
  | Token.TRUE, p ->
      advance st;
      at p (Ast.Bool true)
  | Token.FALSE, p ->
      advance st;
      at p (Ast.Bool false)
  | Token.NULL, p ->
      advance st;
      at p Ast.Null
  | Token.IDENT "Sequence", p ->
      advance st;
      expect st Token.LPAREN;
      let items =
        match peek st with
        | Token.RPAREN, _ -> []
        | _ ->
            let rec go acc =
              let e = parse_expr st in
              match peek st with
              | Token.COMMA, _ ->
                  advance st;
                  go (e :: acc)
              | _ -> List.rev (e :: acc)
            in
            go []
      in
      expect st Token.RPAREN;
      at p (Ast.Seq_lit items)
  | Token.IDENT name, p ->
      advance st;
      at p (Ast.Ident name)
  | Token.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IF, p ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_expr st in
      expect st Token.ELSE;
      let else_ = parse_expr st in
      at p (Ast.If_expr (cond, then_, else_))
  | t, p -> fail p (Printf.sprintf "unexpected %s" (Token.describe t))

let rec parse_stmt st =
  match peek st with
  | Token.VAR, _ ->
      advance st;
      let name = expect_ident st in
      expect st Token.ASSIGN;
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Var_decl (name, e)
  | Token.RETURN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Return e
  | Token.IF, _ ->
      (* Statement-level if: 'if' '(' e ')' block ('else' block)?
         Disambiguated from the expression form by trying the statement
         form first; an expression-if inside a statement needs parens. *)
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_ = parse_block st in
      let else_ =
        match peek st with
        | Token.ELSE, _ ->
            advance st;
            parse_block st
        | _ -> []
      in
      Ast.If_stmt (cond, then_, else_)
  | Token.IDENT name, _ -> (
      (* Could be `x := e;` or an expression statement. *)
      match st.toks with
      | (Token.IDENT _, _) :: (Token.ASSIGN, _) :: rest ->
          st.toks <- rest;
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Assign (name, e)
      | _ ->
          let e = parse_expr st in
          expect st Token.SEMI;
          Ast.Expr_stmt e)
  | _ ->
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Expr_stmt e

and parse_block st =
  (* No '{' '}' tokens in the lexer; blocks are single statements. *)
  [ parse_stmt st ]

(* Re-raise with the position rendered as line:column — the payload keeps
   the raw byte offset for programmatic consumers (the lint driver). *)
let located src f =
  try f ()
  with Parse_error { pos; message } ->
    raise (Parse_error
             { pos;
               message =
                 Printf.sprintf "%s at %s" message (Pos.describe_offset src pos)
             })

let parse_program src =
  located src @@ fun () ->
  let st = { toks = Lexer.tokenize src } in
  (* A bare expression (no trailing ';') is a one-expression program. *)
  let rec stmts acc =
    match peek st with
    | Token.EOF, _ -> List.rev acc
    | _ ->
        (* Try a statement; if the expression is not followed by ';' and we
           are at EOF, accept it as the program's result. *)
        let saved = st.toks in
        (match parse_stmt st with
        | s -> stmts (s :: acc)
        | exception Parse_error _ when acc = [] || true -> (
            st.toks <- saved;
            let e = parse_expr st in
            match peek st with
            | Token.EOF, _ -> List.rev (Ast.Return e :: acc)
            | t, p ->
                fail p (Printf.sprintf "unexpected %s" (Token.describe t))))
  in
  stmts []

let parse_expression src =
  located src @@ fun () ->
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | Token.EOF, _ -> ()
  | t, p -> fail p (Printf.sprintf "trailing %s" (Token.describe t)));
  e
