type t = { line : int; col : int }

let of_offset src off =
  let n = String.length src in
  let stop = if off < 0 then 0 else min off n in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to stop - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = stop - !bol + 1 }

let to_string { line; col } = Printf.sprintf "%d:%d" line col

let pp ppf p = Format.pp_print_string ppf (to_string p)

let describe_offset src off = to_string (of_offset src off)
