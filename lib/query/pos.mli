(** Source positions for query-language diagnostics.

    The lexer and parser track plain byte offsets (cheap to carry in
    tokens); this module converts an offset back into a 1-based
    line:column position against the original source text.  Both the
    exception messages of {!Lexer}/{!Parser} and the lint diagnostics of
    the query type checker render positions through here, so every
    surface shows the same ["line:column"] notation. *)

type t = { line : int; col : int }
(** 1-based line and column. *)

val of_offset : string -> int -> t
(** [of_offset src off] locates byte [off] in [src].  Offsets past the
    end of [src] locate just after the last character; newlines are
    ['\n'] (a CRLF counts as ending the line at the ['\r']). *)

val to_string : t -> string
(** ["line:col"], e.g. ["3:14"]. *)

val pp : Format.formatter -> t -> unit

val describe_offset : string -> int -> string
(** [to_string (of_offset src off)] — the one-liner every renderer
    wants. *)
