type ty = Num | Str | Bool | Null | Seq of ty | Record | Any

let rec ty_name = function
  | Num -> "number"
  | Str -> "string"
  | Bool -> "boolean"
  | Null -> "null"
  | Seq Any -> "sequence"
  | Seq t -> "sequence of " ^ ty_name t
  | Record -> "record"
  | Any -> "any"

type error = { offset : int option; pos : Pos.t option; message : string }

let pp_error ppf e =
  match e.pos with
  | Some p -> Format.fprintf ppf "%a: %s" Pos.pp p e.message
  | None -> Format.pp_print_string ppf e.message

type arity = Lambda | Fixed of int

(* ---------- the built-in catalogue (mirrors Interp.eval_call) ---------- *)

type cls = Cseq | Cstr | Cnum | Crec

let cls_name = function
  | Cseq -> "Seq"
  | Cstr -> "Str"
  | Cnum -> "Num"
  | Crec -> "Record"

(* Result of a call, as a function of the receiver's sequence element type
   and the lambda body's type. *)
type result =
  | Const of ty
  | Elem  (** an element of the receiver sequence *)
  | Same_seq  (** the receiver sequence's own type *)
  | Seq_of_body  (** [collect]: sequence of the lambda body's type *)

type sig_ = {
  s_cls : cls;
  s_name : string;
  s_arity : arity;
  s_argty : ty list;  (** expected positional argument types *)
  s_result : result;
}

let sig_ cls name arity argty result =
  { s_cls = cls; s_name = name; s_arity = arity; s_argty = argty; s_result = result }

let catalogue =
  [
    (* Collections. *)
    sig_ Cseq "select" Lambda [] Same_seq;
    sig_ Cseq "reject" Lambda [] Same_seq;
    sig_ Cseq "collect" Lambda [] Seq_of_body;
    sig_ Cseq "exists" Lambda [] (Const Bool);
    sig_ Cseq "forAll" Lambda [] (Const Bool);
    sig_ Cseq "selectOne" Lambda [] Elem;
    sig_ Cseq "sortBy" Lambda [] Same_seq;
    sig_ Cseq "count" Lambda [] (Const Num);
    sig_ Cseq "size" (Fixed 0) [] (Const Num);
    sig_ Cseq "isEmpty" (Fixed 0) [] (Const Bool);
    sig_ Cseq "notEmpty" (Fixed 0) [] (Const Bool);
    sig_ Cseq "first" (Fixed 0) [] Elem;
    sig_ Cseq "last" (Fixed 0) [] Elem;
    sig_ Cseq "at" (Fixed 1) [ Num ] Elem;
    sig_ Cseq "includes" (Fixed 1) [ Any ] (Const Bool);
    sig_ Cseq "indexOf" (Fixed 1) [ Any ] (Const Num);
    sig_ Cseq "sum" (Fixed 0) [] (Const Num);
    sig_ Cseq "avg" (Fixed 0) [] (Const Num);
    sig_ Cseq "min" (Fixed 0) [] Elem;
    sig_ Cseq "max" (Fixed 0) [] Elem;
    sig_ Cseq "flatten" (Fixed 0) [] (Const (Seq Any));
    sig_ Cseq "distinct" (Fixed 0) [] Same_seq;
    (* Strings. *)
    sig_ Cstr "toUpperCase" (Fixed 0) [] (Const Str);
    sig_ Cstr "toLowerCase" (Fixed 0) [] (Const Str);
    sig_ Cstr "trim" (Fixed 0) [] (Const Str);
    sig_ Cstr "length" (Fixed 0) [] (Const Num);
    sig_ Cstr "startsWith" (Fixed 1) [ Str ] (Const Bool);
    sig_ Cstr "endsWith" (Fixed 1) [ Str ] (Const Bool);
    sig_ Cstr "contains" (Fixed 1) [ Str ] (Const Bool);
    sig_ Cstr "split" (Fixed 1) [ Str ] (Const (Seq Str));
    sig_ Cstr "replace" (Fixed 2) [ Str; Str ] (Const Str);
    sig_ Cstr "toNumber" (Fixed 0) [] (Const Num);
    (* Numbers. *)
    sig_ Cnum "abs" (Fixed 0) [] (Const Num);
    sig_ Cnum "floor" (Fixed 0) [] (Const Num);
    sig_ Cnum "ceil" (Fixed 0) [] (Const Num);
    sig_ Cnum "round" (Fixed 0) [] (Const Num);
    sig_ Cnum "toStr" (Fixed 0) [] (Const Str);
    (* Records. *)
    sig_ Crec "fields" (Fixed 0) [] (Const (Seq Str));
    sig_ Crec "has" (Fixed 1) [ Str ] (Const Bool);
    sig_ Crec "get" (Fixed 1) [ Str ] (Const Any);
  ]

let builtins =
  List.map (fun s -> (cls_name s.s_cls, s.s_name, s.s_arity)) catalogue

(* ---------- type algebra ---------- *)

let rec join a b =
  match (a, b) with
  | a, b when a = b -> a
  | Seq a, Seq b -> Seq (join a b)
  | _ -> Any

(* [compat expected actual]: could a value of [actual] be accepted where
   [expected] is required?  [Any] on either side is always fine — the
   checker never rejects on unknown shapes. *)
let rec compat expected actual =
  match (expected, actual) with
  | Any, _ | _, Any -> true
  | Seq a, Seq b -> compat a b
  | a, b -> a = b

let class_of = function
  | Seq _ -> Some Cseq
  | Str -> Some Cstr
  | Num -> Some Cnum
  | Record -> Some Crec
  | Bool | Null | Any -> None

let elem_of = function Seq t -> t | _ -> Any

(* ---------- inference ---------- *)

module Env = Map.Make (String)

type state = { mutable errs : (int option * string) list }

let check_program ?source ?(env = []) prog =
  let st = { errs = [] } in
  let err cur fmt =
    Format.kasprintf (fun m -> st.errs <- (cur, m) :: st.errs) fmt
  in
  let initial =
    List.fold_left (fun m name -> Env.add name Any m) Env.empty env
  in
  let rec infer env cur e =
    match e with
    | Ast.At (p, e) -> infer env (Some p) e
    | Ast.Number _ -> Num
    | Ast.String _ -> Str
    | Ast.Bool _ -> Bool
    | Ast.Null -> Null
    | Ast.Seq_lit items ->
        let ts = List.map (infer env cur) items in
        Seq (match ts with [] -> Any | t :: tl -> List.fold_left join t tl)
    | Ast.Ident name -> (
        match Env.find_opt name env with
        | Some t -> t
        | None ->
            err cur "unknown identifier '%s'" name;
            Any)
    | Ast.Field (e, name) -> (
        match infer env cur e with
        | Record | Any -> Any
        | Seq (Record | Any | Seq _) | Seq Null -> Seq Any
        | Seq ((Num | Str | Bool) as t) ->
            err cur "cannot navigate '.%s' on a sequence of %s elements" name
              (ty_name t);
            Seq Any
        | (Num | Str | Bool | Null) as t ->
            err cur "cannot navigate '.%s' on %s" name (ty_name t);
            Any)
    | Ast.Index (e, i) ->
        let t = infer env cur e in
        let it = infer env cur i in
        if not (compat Num it) then
          err (node_pos cur i) "index: expected a number, got %s" (ty_name it);
        (match t with
        | Seq elt -> elt
        | Any -> Any
        | t ->
            err cur "cannot index %s" (ty_name t);
            Any)
    | Ast.Unop (Ast.Neg, e) ->
        let t = infer env cur e in
        if not (compat Num t) then
          err (node_pos cur e) "cannot negate %s" (ty_name t);
        Num
    | Ast.Unop (Ast.Not, e) ->
        ignore (infer env cur e);
        Bool
    | Ast.Binop (op, a, b) -> infer_binop env cur op a b
    | Ast.If_expr (c, t, e) ->
        ignore (infer env cur c);
        join (infer env cur t) (infer env cur e)
    | Ast.Call (recv, name, args) -> infer_call env cur recv name args
  and node_pos cur e = match Ast.pos_of e with Some p -> Some p | None -> cur
  and infer_binop env cur op a b =
    let ta = infer env cur a and tb = infer env cur b in
    let mismatch what =
      err cur "operator %s incompatible with %s and %s" what (ty_name ta)
        (ty_name tb)
    in
    match op with
    | Ast.Add -> (
        match (ta, tb) with
        | Num, Num -> Num
        | Str, (Str | Num) | Num, Str -> Str
        | Seq x, Seq y -> Seq (join x y)
        | Any, (Num | Str | Seq _ | Any) | (Num | Str | Seq _), Any -> Any
        | _ ->
            mismatch "'+'";
            Any)
    | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
        if not (compat Num ta && compat Num tb) then
          mismatch
            (match op with
            | Ast.Sub -> "'-'"
            | Ast.Mul -> "'*'"
            | Ast.Div -> "'/'"
            | _ -> "'mod'");
        Num
    | Ast.Eq | Ast.Neq -> Bool
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        let rec comparable a b =
          match (a, b) with
          | Any, _ | _, Any -> true
          | Seq a, Seq b -> comparable a b
          | a, b -> a = b && a <> Record
        in
        if not (comparable ta tb) then
          err cur "cannot compare %s with %s" (ty_name ta) (ty_name tb);
        Bool
    | Ast.And | Ast.Or | Ast.Implies -> Bool
  and infer_call env cur recv name args =
    (* [cur] is the method-name token's position: the parser wraps the
       whole [Call] node in [At] at that offset. *)
    let pos = cur in
    let recv_t = infer env cur recv in
    let by_name = List.filter (fun s -> String.equal s.s_name name) catalogue in
    let candidates =
      match class_of recv_t with
      | Some c -> List.filter (fun s -> s.s_cls = c) by_name
      | None when recv_t = Any -> by_name
      | None -> []
    in
    let check_args s =
      (* Shape already matched; verify positional argument types. *)
      (match s.s_arity with
      | Lambda -> ()
      | Fixed _ ->
          List.iteri
            (fun i arg ->
              match (arg, List.nth_opt s.s_argty i) with
              | Ast.Positional e, Some expected ->
                  let t = infer env cur e in
                  if not (compat expected t) then
                    err (node_pos cur e) "%s: expected a %s, got %s" name
                      (ty_name expected) (ty_name t)
              | _ -> ())
            args);
      (* Extra sanity the evaluator enforces element-wise. *)
      if (name = "sum" || name = "avg") then begin
        match recv_t with
        | Seq ((Str | Bool | Record | Seq _) as t) ->
            err pos "%s: expected numeric elements, got a sequence of %s" name
              (ty_name t)
        | _ -> ()
      end;
      match s.s_result with
      | Const t -> t
      | Elem -> elem_of recv_t
      | Same_seq -> ( match recv_t with Seq _ -> recv_t | _ -> Seq Any)
      | Seq_of_body -> (
          match args with
          | [ Ast.Lambda (x, body) ] ->
              Seq (infer (Env.add x (elem_of recv_t) env) cur body)
          | _ -> Seq Any)
    in
    let shape_matches s =
      match s.s_arity with
      | Lambda -> ( match args with [ Ast.Lambda _ ] -> true | _ -> false)
      | Fixed n ->
          List.length args = n
          && List.for_all
               (function Ast.Positional _ -> true | Ast.Lambda _ -> false)
               args
    in
    (* Check lambda bodies even when the call is otherwise wrong, so their
       own errors still surface. *)
    let visit_lambdas () =
      List.iter
        (function
          | Ast.Lambda (x, body) ->
              ignore (infer (Env.add x (elem_of recv_t) env) cur body)
          | Ast.Positional e -> ignore (infer env cur e))
        args
    in
    if by_name = [] then begin
      err pos "no built-in method '%s'" name;
      visit_lambdas ();
      Any
    end
    else if candidates = [] then begin
      err pos "%s has no method '%s'" (ty_name recv_t) name;
      visit_lambdas ();
      Any
    end
    else
      match List.find_opt shape_matches candidates with
      | Some s -> check_args s
      | None ->
          (match candidates with
          | { s_arity = Lambda; _ } :: _ ->
              err pos "%s expects a single lambda argument (x | expr)" name
          | { s_arity = Fixed n; _ } :: _ ->
              if List.exists (function Ast.Lambda _ -> true | _ -> false) args
              then err pos "%s does not take a lambda" name
              else
                err pos "%s expects %d argument(s), got %d" name n
                  (List.length args)
          | [] -> ());
          visit_lambdas ();
          Any
  in
  let merge a b =
    (* Bindings introduced in either branch survive the join (the
       evaluator threads the taken branch's environment onwards). *)
    Env.union (fun _ x y -> Some (join x y)) a b
  in
  let rec exec env = function
    | [] -> env
    | (Ast.Var_decl (n, e) | Ast.Assign (n, e)) :: rest ->
        let t = infer env None e in
        exec (Env.add n t env) rest
    | Ast.Expr_stmt e :: rest | Ast.Return e :: rest ->
        ignore (infer env None e);
        exec env rest
    | Ast.If_stmt (c, then_, else_) :: rest ->
        ignore (infer env None c);
        let et = exec env then_ and ef = exec env else_ in
        exec (merge (merge env et) ef) rest
  in
  ignore (exec initial prog);
  List.rev_map
    (fun (off, message) ->
      {
        offset = off;
        pos =
          (match (source, off) with
          | Some src, Some o -> Some (Pos.of_offset src o)
          | _ -> None);
        message;
      })
    st.errs

let check_source ?env src =
  let strip_suffix message pos =
    (* The parser/lexer already embed "at line:col"; the structured error
       carries the position separately, so drop the duplicate. *)
    let suffix = " at " ^ Pos.describe_offset src pos in
    if String.length message >= String.length suffix
       && String.sub message
            (String.length message - String.length suffix)
            (String.length suffix)
          = suffix
    then String.sub message 0 (String.length message - String.length suffix)
    else message
  in
  match Parser.parse_program src with
  | prog -> check_program ~source:src ?env prog
  | exception Parser.Parse_error { pos; message } ->
      [
        {
          offset = Some pos;
          pos = Some (Pos.of_offset src pos);
          message = "parse error: " ^ strip_suffix message pos;
        };
      ]
  | exception Lexer.Lex_error { pos; message } ->
      [
        {
          offset = Some pos;
          pos = Some (Pos.of_offset src pos);
          message = "lex error: " ^ strip_suffix message pos;
        };
      ]
