(** Static type-and-arity checker for the query language.

    Extraction constraints (the paper's EOL scripts) used to fail only at
    evaluation time, with a {!Interp.Runtime_error} raised from deep
    inside an FMEA run.  This pass walks the {!Ast} first and reports —
    without evaluating anything — the errors that are decidable
    statically:

    - unknown identifiers (variables never declared and not bound by the
      caller's model environment);
    - unknown built-in methods, and methods called on a receiver whose
      inferred type cannot have them (e.g. [1.trim()]);
    - wrong arity for every built-in in the {!Interp} catalogue,
      including lambda-vs-positional argument misuse;
    - operator type mismatches ([true - 1], ['a' < 1], indexing a
      number...).

    Inference is optimistic: model data enters as {!Any} and anything
    involving {!Any} is accepted (the checker never false-positives on
    data-dependent shapes — missing record fields, for instance, remain a
    runtime concern).  A program accepted with a fully concrete typing
    therefore never raises a {!Interp.Runtime_error} for an
    unknown-method, unknown-identifier or arity reason. *)

type ty =
  | Num
  | Str
  | Bool
  | Null
  | Seq of ty
  | Record
  | Any  (** unknown/model-provided — compatible with everything *)

val ty_name : ty -> string

type error = {
  offset : int option;  (** byte offset of the offending node, if known *)
  pos : Pos.t option;  (** line:column, when the source text was given *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** ["3:14: select expects a single lambda argument (x | expr)"] — the
    position prefix is omitted when unknown. *)

type arity =
  | Lambda  (** exactly one [x | expr] argument *)
  | Fixed of int  (** [n] positional arguments *)

val builtins : (string * string * arity) list
(** The full built-in catalogue as (receiver class, method, arity) — the
    receiver class is ["Seq"], ["Str"], ["Num"] or ["Record"].  Tests
    iterate this to cover every method. *)

val check_program : ?source:string -> ?env:string list -> Ast.program -> error list
(** All static errors, in source order.  [env] lists the identifiers the
    caller will bind at evaluation time (model roots); [source] enables
    line:column positions. *)

val check_source : ?env:string list -> string -> error list
(** Parse and {!check_program}.  Lex and parse failures are returned as a
    single-element error list rather than raised. *)
