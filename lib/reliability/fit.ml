type t = float

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Fit.of_float: non-finite";
  if f < 0.0 then invalid_arg "Fit.of_float: negative FIT";
  f

let to_failures_per_hour fit = fit *. 1e-9

let of_failures_per_hour rate = of_float (rate /. 1e-9)

let check_pct what pct =
  if pct < 0.0 || pct > 100.0 then
    invalid_arg (Printf.sprintf "Fit.%s: percentage %g outside [0,100]" what pct)

let share fit ~distribution_pct =
  check_pct "share" distribution_pct;
  fit *. distribution_pct /. 100.0

let residual fit ~coverage_pct =
  check_pct "residual" coverage_pct;
  fit *. (1.0 -. (coverage_pct /. 100.0))

let sum = List.fold_left ( +. ) 0.0

let failure_probability fit ~mission_hours =
  if mission_hours < 0.0 then
    invalid_arg "Fit.failure_probability: negative mission time";
  (* -expm1 keeps precision at the FIT scale, where lambda*t is tiny. *)
  -.Float.expm1 (-.(to_failures_per_hour fit) *. mission_hours)

let pp ppf fit = Format.fprintf ppf "%g FIT" fit

let equal = Float.equal

let compare = Float.compare
