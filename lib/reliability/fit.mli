(** Failure-In-Time arithmetic.

    1 FIT = 1e-9 failures/hour.  FIT values add across failure modes and
    components (constant-rate assumption), scale by failure-mode
    distribution shares and shrink under diagnostic coverage. *)

type t = float
(** FIT, non-negative. *)

val of_float : float -> t
(** Raises [Invalid_argument] on negatives or non-finite values. *)

val to_failures_per_hour : t -> float
(** [fit * 1e-9]. *)

val of_failures_per_hour : float -> t

val share : t -> distribution_pct:float -> t
(** The FIT slice owned by one failure mode: [fit * pct / 100].  Raises
    [Invalid_argument] when the percentage is outside [0, 100]. *)

val residual : t -> coverage_pct:float -> t
(** FIT left undetected by a safety mechanism: [fit * (1 - cov/100)].
    Raises [Invalid_argument] when the coverage is outside [0, 100]. *)

val sum : t list -> t

val failure_probability : t -> mission_hours:float -> float
(** Probability that a constant-rate failure occurs within the mission:
    [1 - exp(-fit * 1e-9 * mission_hours)] — the exponential CDF at the
    mission time.  The single source of the FIT → probability conversion
    used by fault-tree quantification and Monte-Carlo assessment.
    Raises [Invalid_argument] on a negative mission time. *)

val pp : Format.formatter -> t -> unit
(** Prints like the paper's tables: ["3 FIT"], ["4.5 FIT"]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
