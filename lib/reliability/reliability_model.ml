type failure_mode = {
  fm_name : string;
  distribution_pct : float;
  fault : Circuit.Fault.t option;
  loss_of_function : bool;
}
[@@deriving eq, show]

type entry = {
  component_type : string;
  fit : Fit.t;
  failure_modes : failure_mode list;
}
[@@deriving eq, show]

type t = entry list (* newest first; find takes the newest *)

exception Format_error of string

let empty = []

let canon name =
  let low = String.lowercase_ascii (String.trim name) in
  match Circuit.Library.find low with
  | Some info -> info.Circuit.Library.block_type
  | None -> low

let add t entry =
  let key = canon entry.component_type in
  entry :: List.filter (fun e -> not (String.equal (canon e.component_type) key)) t

let of_entries entries = List.fold_left add empty entries

let find t name =
  let key = canon name in
  List.find_opt (fun e -> String.equal (canon e.component_type) key) t

let entries t = List.rev t

let loss_like name fault =
  match fault with
  | Some Circuit.Fault.Open_circuit -> true
  | Some _ -> false
  | None -> Option.is_some (Circuit.Fault.of_failure_mode_name name)

let mode ?fault ?loss name pct =
  let fault =
    match fault with
    | Some f -> Some f
    | None -> Circuit.Fault.of_failure_mode_name name
  in
  let loss_of_function =
    match loss with Some l -> l | None -> loss_like name fault
  in
  { fm_name = name; distribution_pct = pct; fault; loss_of_function }

let table_ii =
  of_entries
    [
      {
        component_type = "diode";
        fit = Fit.of_float 10.0;
        failure_modes = [ mode "Open" 30.0; mode "Short" 70.0 ];
      };
      {
        component_type = "capacitor";
        fit = Fit.of_float 2.0;
        failure_modes = [ mode "Open" 30.0; mode "Short" 70.0 ];
      };
      {
        component_type = "inductor";
        fit = Fit.of_float 15.0;
        failure_modes = [ mode "Open" 30.0; mode "Short" 70.0 ];
      };
      {
        component_type = "microcontroller";
        fit = Fit.of_float 300.0;
        failure_modes = [ mode "RAM Failure" 100.0 ];
      };
    ]

let synthetic_catalogue =
  of_entries
    [
      {
        component_type = "resistor";
        fit = Fit.of_float 5.0;
        failure_modes =
          [ mode "Open" 60.0; mode "Short" 30.0; mode "Drift" 10.0 ];
      };
      {
        component_type = "load";
        fit = Fit.of_float 20.0;
        failure_modes = [ mode "Open" 50.0; mode "Short" 50.0 ];
      };
      {
        component_type = "vsource";
        fit = Fit.of_float 50.0;
        failure_modes =
          [
            mode ~fault:(Circuit.Fault.Stuck_value 0.0) ~loss:true "Stuck Low"
              70.0;
            mode ~fault:(Circuit.Fault.Parameter_shift 1.25) ~loss:false
              "Drift High" 30.0;
          ];
      };
      {
        component_type = "current_sensor";
        fit = Fit.of_float 10.0;
        failure_modes = [ mode "Open" 100.0 ];
      };
    ]

let of_spreadsheet workbook =
  let sheet = Modelio.Spreadsheet.first_sheet workbook in
  let require_number what raw =
    match Modelio.Spreadsheet.number raw with
    | Some f -> f
    | None -> raise (Format_error (Printf.sprintf "%s: not a number: %S" what raw))
  in
  let tbl = sheet.Modelio.Spreadsheet.table in
  let get row name = Modelio.Csv.field tbl row name in
  let missing name =
    raise (Format_error (Printf.sprintf "missing column %S" name))
  in
  List.iter
    (fun c ->
      if Option.is_none (Modelio.Csv.column_index tbl c) then missing c)
    [ "Component"; "FIT"; "Failure_Mode"; "Distribution" ];
  (* Continuation rows leave Component/FIT blank (paper Table II layout). *)
  let finished, current =
    List.fold_left
      (fun (done_, current) row ->
        let comp = Option.value ~default:"" (get row "Component") in
        let fit_raw = Option.value ~default:"" (get row "FIT") in
        let fm_name = Option.value ~default:"" (get row "Failure_Mode") in
        let dist_raw = Option.value ~default:"" (get row "Distribution") in
        if String.trim fm_name = "" then
          raise (Format_error "row without a failure mode");
        let fm = mode fm_name (require_number "Distribution" dist_raw) in
        if String.trim comp = "" then
          match current with
          | None -> raise (Format_error "continuation row before any component")
          | Some entry ->
              (done_, Some { entry with failure_modes = entry.failure_modes @ [ fm ] })
        else
          let entry =
            {
              component_type = comp;
              fit = Fit.of_float (require_number "FIT" fit_raw);
              failure_modes = [ fm ];
            }
          in
          let done_ =
            match current with Some e -> e :: done_ | None -> done_
          in
          (done_, Some entry))
      ([], None) tbl.Modelio.Csv.rows
  in
  let all =
    match current with Some e -> List.rev (e :: finished) | None -> List.rev finished
  in
  of_entries all

let of_json json =
  let open Modelio in
  let components =
    match Json.member "components" json with
    | Some (Json.List items) -> items
    | Some _ | None -> raise (Format_error "expected a 'components' array")
  in
  let str what v =
    match Json.to_str v with
    | Some s -> s
    | None -> raise (Format_error (Printf.sprintf "%s: expected a string" what))
  in
  let num what v =
    match Json.to_float v with
    | Some f -> f
    | None -> raise (Format_error (Printf.sprintf "%s: expected a number" what))
  in
  let parse_fm v =
    let name =
      match Json.member "name" v with
      | Some s -> str "failure mode name" s
      | None -> raise (Format_error "failure mode without a name")
    in
    let dist =
      match Json.member "distribution" v with
      | Some d -> num "distribution" d
      | None -> raise (Format_error "failure mode without a distribution")
    in
    let loss = Option.bind (Json.member "loss_of_function" v) Json.to_bool in
    mode ?loss name dist
  in
  let parse_component v =
    let ctype =
      match Json.member "type" v with
      | Some s -> str "component type" s
      | None -> raise (Format_error "component without a type")
    in
    let fit =
      match Json.member "fit" v with
      | Some f -> num "fit" f
      | None -> raise (Format_error "component without a FIT")
    in
    let fms =
      match Json.member "failure_modes" v with
      | Some (Json.List items) -> List.map parse_fm items
      | Some _ | None -> []
    in
    { component_type = ctype; fit = Fit.of_float fit; failure_modes = fms }
  in
  of_entries (List.map parse_component components)

let to_spreadsheet t =
  let rows =
    List.concat_map
      (fun e ->
        List.mapi
          (fun i fm ->
            [
              (if i = 0 then e.component_type else "");
              (if i = 0 then Printf.sprintf "%g" e.fit else "");
              fm.fm_name;
              Printf.sprintf "%g%%" fm.distribution_pct;
            ])
          e.failure_modes)
      (entries t)
  in
  Modelio.Spreadsheet.of_csv ~name:"reliability"
    ([ "Component"; "FIT"; "Failure_Mode"; "Distribution" ] :: rows)

let validate t =
  List.concat_map
    (fun e ->
      let problems = ref [] in
      let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      if e.failure_modes <> [] then begin
        let sum =
          List.fold_left (fun s fm -> s +. fm.distribution_pct) 0.0 e.failure_modes
        in
        if Float.abs (sum -. 100.0) > 0.5 then
          note "%s: failure-mode distributions sum to %g%%" e.component_type sum;
        if e.fit = 0.0 then
          note "%s: zero FIT but failure modes declared" e.component_type
      end;
      let names = List.map (fun fm -> String.lowercase_ascii fm.fm_name) e.failure_modes in
      if List.length (List.sort_uniq String.compare names) <> List.length names
      then note "%s: duplicate failure-mode names" e.component_type;
      List.rev !problems)
    (entries t)
