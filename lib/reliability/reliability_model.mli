(** The component reliability model (DECISIVE Step 3, Table II).

    Maps a component *type* to its FIT and failure modes with probability
    distributions.  Loaded from spreadsheets (the paper's Excel route), from
    JSON, or built programmatically; entries can also fall back to the
    block catalogue ({!Circuit.Library}). *)

type failure_mode = {
  fm_name : string;
  distribution_pct : float;
  fault : Circuit.Fault.t option;
      (** how to inject this mode into a circuit; [None] means the injection
          FMEA must warn and skip (Algorithm 1's warning branch). *)
  loss_of_function : bool;
      (** whether Algorithm 1 treats this mode as path-breaking. *)
}
[@@deriving eq, show]

type entry = {
  component_type : string;
  fit : Fit.t;
  failure_modes : failure_mode list;
}
[@@deriving eq, show]

type t

val empty : t

val add : t -> entry -> t
(** Replaces any previous entry for the same (case-insensitive) type. *)

val of_entries : entry list -> t

val find : t -> string -> entry option
(** Case-insensitive; resolves {!Circuit.Library} aliases (["MC"] →
    ["microcontroller"]) before lookup. *)

val entries : t -> entry list

val table_ii : t
(** The paper's Table II: Diode 10 FIT (Open 30 / Short 70), Capacitor 2,
    Inductor 15, MC 300 (RAM Failure 100). *)

val synthetic_catalogue : t
(** Failure modes for the element kinds of {!Circuit.Generator} netlists
    (resistor, load, vsource, current_sensor) — used by the scaling
    benchmarks, where every injectable mode exercises a faulted solve. *)

exception Format_error of string

val of_spreadsheet : Modelio.Spreadsheet.t -> t
(** Expects columns Component, FIT, Failure_Mode, Distribution; the
    Component and FIT cells may be left blank on continuation rows, as in
    the paper's Table II layout.  Failure modes are mapped to faults with
    {!Circuit.Fault.of_failure_mode_name}.  Raises {!Format_error}. *)

val of_json : Modelio.Json.t -> t
(** [{"components": [{"type": ..., "fit": ..., "failure_modes":
    [{"name":..., "distribution": ..., "loss_of_function": ...}]}]}].
    Raises {!Format_error}. *)

val to_spreadsheet : t -> Modelio.Spreadsheet.t

val validate : t -> string list
(** Distribution sums that deviate from 100 % by more than 0.5, duplicate
    failure-mode names, zero-FIT entries with failure modes. *)
