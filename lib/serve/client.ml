type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s (is `same serve` running?)"
           path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc t request =
  let line = Modelio.Json.to_string (Protocol.request_to_json request) in
  match Protocol.write_frame t.oc line with
  | exception Sys_error m -> Error (Printf.sprintf "send failed: %s" m)
  | () -> (
      match Protocol.read_frame t.ic with
      | None -> Error "server closed the connection"
      | exception Sys_error m -> Error (Printf.sprintf "receive failed: %s" m)
      | Some reply -> (
          match Modelio.Json.parse reply with
          | exception Modelio.Json.Parse_error { pos; message } ->
              Error
                (Printf.sprintf "bad response JSON at offset %d: %s" pos
                   message)
          | json -> (
              match Modelio.Json.(Option.bind (member "ok" json) to_bool) with
              | Some true -> Ok json
              | Some false | None ->
                  Error
                    (match
                       Modelio.Json.(Option.bind (member "error" json) to_str)
                     with
                    | Some m -> m
                    | None -> "malformed response envelope"))))

type analysis_response = {
  r_output : string;
  r_exit : int;
  r_cached : bool;
  r_coalesced : bool;
}

let analyse t a =
  match rpc t (Protocol.Analyse a) with
  | Error _ as e -> e
  | Ok json -> (
      let str k = Modelio.Json.(Option.bind (member k json) to_str) in
      let num k = Modelio.Json.(Option.bind (member k json) to_float) in
      let bool_ k =
        Option.value ~default:false
          Modelio.Json.(Option.bind (member k json) to_bool)
      in
      match (str "output", num "exit") with
      | Some r_output, Some exit ->
          Ok
            {
              r_output;
              r_exit = int_of_float exit;
              r_cached = bool_ "cached";
              r_coalesced = bool_ "coalesced";
            }
      | _ -> Error "malformed analyse response")

let one_shot ~socket request =
  match connect socket with
  | Error _ as e -> e
  | Ok t ->
      let r = rpc t request in
      close t;
      r
