(** Client side of the `same serve` protocol: connect, exchange
    newline-delimited JSON frames, decode response envelopes. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix socket. *)

val close : t -> unit

val rpc : t -> Protocol.request -> (Modelio.Json.t, string) result
(** One request/response round-trip on the open connection.  [Error] on
    transport failures, malformed response JSON, or an
    [{"ok": false}] envelope (carrying the server's error message). *)

type analysis_response = {
  r_output : string;
  r_exit : int;
  r_cached : bool;
  r_coalesced : bool;
}

val analyse :
  t -> Protocol.analyse -> (analysis_response, string) result
(** {!rpc} an [analyse] request and decode the envelope. *)

val one_shot :
  socket:string -> Protocol.request -> (Modelio.Json.t, string) result
(** Connect, {!rpc} once, close — what `same client` and `--connect`
    use. *)
