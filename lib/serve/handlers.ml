(* One handler per analysis kind, each mirroring its `same` subcommand:
   same inputs, same library calls, same rendered report — minus
   anything nondeterministic (timings), so responses are bit-identical
   across SAME_JOBS and safely content-addressed. *)

let param params k = List.assoc_opt k params

let list_param params k =
  match param params k with
  | None -> []
  | Some s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")

let parse_diagram text =
  try Ok (Blockdiag.Text_format.parse text) with
  | Blockdiag.Text_format.Parse_error { line; message } ->
      Error (Printf.sprintf "diagram:%d: %s" line message)
  | Invalid_argument m -> Error m

let parse_reliability = function
  | None -> Ok Reliability.Reliability_model.table_ii
  | Some text -> (
      try
        Ok
          (Reliability.Reliability_model.of_spreadsheet
             (Modelio.Spreadsheet.of_csv ~name:"reliability"
                (Modelio.Csv.parse text)))
      with
      | Reliability.Reliability_model.Format_error m ->
          Error (Printf.sprintf "reliability: %s" m)
      | Modelio.Csv.Parse_error { line; message } ->
          Error (Printf.sprintf "reliability:%d: %s" line message)
      | Invalid_argument m -> Error (Printf.sprintf "reliability: %s" m))

let parse_sm = function
  | None -> Ok Reliability.Sm_model.extended_catalogue
  | Some text -> (
      try
        Ok
          (Reliability.Sm_model.of_spreadsheet
             (Modelio.Spreadsheet.of_csv ~name:"safety-mechanisms"
                (Modelio.Csv.parse text)))
      with
      | Reliability.Sm_model.Format_error m ->
          Error (Printf.sprintf "safety-mechanisms: %s" m)
      | Modelio.Csv.Parse_error { line; message } ->
          Error (Printf.sprintf "safety-mechanisms:%d: %s" line message)
      | Invalid_argument m -> Error (Printf.sprintf "safety-mechanisms: %s" m))

let injection_options params =
  {
    Fmea.Injection_fmea.default_options with
    exclude = list_param params "exclude";
    monitored_sensors =
      (match list_param params "monitored" with [] -> None | ids -> Some ids);
  }

let err fmt = Printf.ksprintf (fun m -> ("error: " ^ m ^ "\n", 1)) fmt

let ( let* ) r k = match r with Error m -> err "%s" m | Ok v -> k v

(* ---------- fmea ---------- *)

let table_report table =
  Format.asprintf "%a@.%a@." Fmea.Table.pp table Fmea.Metrics.pp_breakdown
    (Fmea.Metrics.compute table)

let run_fmea ~engine a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let params = a.Protocol.a_params in
  let exclude = list_param params "exclude" in
  let monitored_sensors =
    match list_param params "monitored" with [] -> None | ids -> Some ids
  in
  match
    Decisive.Api.analyse ~engine ~exclude ?monitored_sensors diagram
      reliability
  with
  | table -> (table_report table, 0)
  | exception Fmea.Injection_fmea.Golden_run_failed m ->
      err "golden simulation failed: %s" m

(* ---------- fmeda ---------- *)

let target_of params =
  match param params "target" with
  | None -> Ok Ssam.Requirement.ASIL_B
  | Some s -> (
      match Ssam.Requirement.integrity_level_of_string s with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "unknown integrity level %S" s))

let run_fmeda ~engine a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let* sm_model = parse_sm a.Protocol.a_sm in
  let* target = target_of a.Protocol.a_params in
  let params = a.Protocol.a_params in
  let exclude = list_param params "exclude" in
  let monitored_sensors =
    match list_param params "monitored" with [] -> None | ids -> Some ids
  in
  match
    Decisive.Api.analyse ~engine ~exclude ?monitored_sensors diagram
      reliability
  with
  | exception Fmea.Injection_fmea.Golden_run_failed m ->
      err "golden simulation failed: %s" m
  | table ->
      let conversion = Blockdiag.To_netlist.convert diagram in
      let refinement =
        Decisive.Api.refine ~engine ~target
          ~component_types:conversion.Blockdiag.To_netlist.block_types table
          sm_model
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (table_report refinement.Decisive.Api.refined_table);
      Buffer.add_string buf
        (Format.asprintf "%a@."
           (fun ppf () ->
             Fmea.Asil.pp_verdict ppf ~target
               ~spfm:refinement.Decisive.Api.achieved_spfm)
           ());
      (match refinement.Decisive.Api.chosen with
      | Some c ->
          List.iter
            (fun (d : Fmea.Fmeda.deployment) ->
              Buffer.add_string buf
                (Format.asprintf "deploy %s on %s/%s@."
                   d.Fmea.Fmeda.mechanism.Reliability.Sm_model.sm_name
                   d.Fmea.Fmeda.target_component
                   d.Fmea.Fmeda.target_failure_mode))
            c.Optimize.Search.deployments
      | None -> Buffer.add_string buf "no deployment meets the target\n");
      (Buffer.contents buf, 0)

(* ---------- fta ---------- *)

let run_fta a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let params = a.Protocol.a_params in
  let engine_choice =
    match param params "engine" with
    | Some "bdd" -> `Bdd
    | Some "mocus" -> `Mocus
    | _ -> `Auto
  in
  let max_card =
    Option.bind (param params "max_cardinality") int_of_string_opt
  in
  let lowered =
    match Fta.From_ssam.of_diagram ~reliability diagram with
    | tree -> Ok (tree, `Structural)
    | exception Fta.From_ssam.No_paths c -> Error c
    | exception Fta.From_ssam.Cyclic _ -> (
        let root = Decisive.Api.functional_root ~reliability diagram in
        match Fta.From_ssam.generate root with
        | tree -> Ok (tree, `Paths)
        | exception Fta.From_ssam.No_paths c -> Error c)
  in
  match lowered with
  | Error c -> err "no input-output paths through %s" c
  | Ok (tree, route) -> (
      match Fta.Cut_sets.minimal ~engine:engine_choice tree with
      | exception Invalid_argument m -> err "%s (retry with engine=bdd)" m
      | all_sets ->
          let buf = Buffer.create 1024 in
          let bpf fmt = Printf.bprintf buf fmt in
          bpf "%s\n" (Format.asprintf "%a" Fta.Fault_tree.pp_ascii tree);
          (match route with
          | `Structural -> ()
          | `Paths ->
              bpf
                "note: cyclic connection structure — lowered by path \
                 enumeration\n");
          let sets =
            match max_card with
            | None -> all_sets
            | Some k -> List.filter (fun s -> List.length s <= k) all_sets
          in
          bpf "minimal cut sets (%d%s):\n" (List.length sets)
            (match max_card with
            | None -> ""
            | Some k ->
                Printf.sprintf " of %d, cardinality <= %d"
                  (List.length all_sets) k);
          List.iter (fun s -> bpf "  {%s}\n" (String.concat ", " s)) sets;
          let probs = Fta.Quant.event_probabilities tree in
          bpf "top event (BDD-exact, 10,000 h): %.3e\n"
            (Fta.Quant.top_probability_exact tree probs);
          bpf "top event (rare-event bound):    %.3e\n"
            (Fta.Quant.rare_event_bound all_sets probs);
          let top5 xs = List.filteri (fun i _ -> i < 5) xs in
          List.iter
            (fun (e, v) -> bpf "  birnbaum       %-28s %.3e\n" e v)
            (top5 (Fta.Quant.birnbaum tree probs));
          List.iter
            (fun (e, v) -> bpf "  fussell-vesely %-28s %.3e\n" e v)
            (top5 (Fta.Quant.fussell_vesely tree probs));
          (Buffer.contents buf, 0))

(* ---------- assess ---------- *)

(* The CLI's text report minus its wall-clock lines (Mtrials/s, elapsed):
   a daemon response must be bit-identical for a fixed seed whatever the
   machine load, and the cache must not freeze a stale timing into every
   future answer. *)
let run_assess a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let params = a.Protocol.a_params in
  let tree =
    match Fta.From_ssam.of_diagram ~reliability diagram with
    | tree -> Ok tree
    | exception Fta.From_ssam.No_paths c ->
        Error (Printf.sprintf "no input-output paths through %s" c)
    | exception Fta.From_ssam.Cyclic _ -> (
        let root = Decisive.Api.functional_root ~reliability diagram in
        match Fta.From_ssam.generate root with
        | tree -> Ok tree
        | exception Fta.From_ssam.No_paths c ->
            Error (Printf.sprintf "no input-output paths through %s" c))
  in
  let* tree = tree in
  let config =
    {
      Assess.Mc.default with
      Assess.Mc.mission_hours =
        (match Option.bind (param params "mission_hours") float_of_string_opt with
        | Some h -> h
        | None -> Assess.Mc.default.Assess.Mc.mission_hours);
      trials = Option.bind (param params "trials") int_of_string_opt;
      rel_precision =
        Option.bind (param params "rel_precision") float_of_string_opt;
      seed =
        (match Option.bind (param params "seed") int_of_string_opt with
        | Some s -> s
        | None -> Assess.Mc.default.Assess.Mc.seed);
      sampling =
        (match param params "method" with
        | Some "importance" -> Assess.Mc.Importance
        | Some "stratified" -> Assess.Mc.Stratified
        | _ -> Assess.Mc.Direct);
    }
  in
  match Assess.Mc.run config tree with
  | exception Invalid_argument m -> err "%s" m
  | r ->
      let buf = Buffer.create 512 in
      let bpf fmt = Printf.bprintf buf fmt in
      bpf "top event (%s, %g h mission): %.6e +/- %.1e (99%% CI)\n"
        (Assess.Mc.sampling_to_string r.Assess.Mc.sampling)
        r.Assess.Mc.mission_hours r.Assess.Mc.top_probability
        r.Assess.Mc.halfwidth;
      bpf "trials: %d  (%d instructions)\n" r.Assess.Mc.trials
        r.Assess.Mc.instrs;
      (match (r.Assess.Mc.exact, r.Assess.Mc.exact_delta) with
      | Some exact, Some delta ->
          bpf "BDD-exact cross-check: %.6e  delta %.1e  %s\n" exact delta
            (if delta <= r.Assess.Mc.halfwidth then "(inside CI)"
             else "(OUTSIDE CI)")
      | _ -> ());
      let exit_code =
        if param params "check" = Some "true" then
          match r.Assess.Mc.exact_delta with
          | Some delta when delta <= r.Assess.Mc.halfwidth -> 0
          | Some _ ->
              bpf
                "error: estimate outside the 99%% CI of the BDD-exact \
                 probability\n";
              1
          | None ->
              bpf
                "error: check needs the BDD-exact cross-check (tree too \
                 large)\n";
              1
        else 0
      in
      (Buffer.contents buf, exit_code)

(* ---------- diagnose ---------- *)

let run_diagnose a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let params = a.Protocol.a_params in
  match param params "output" with
  | None -> err "diagnose needs an \"output\" param (the observation point)"
  | Some output -> (
      let monitored = list_param params "monitored" in
      let exclude = list_param params "exclude" in
      let model = Dataflow.Model.of_diagram ~monitored ~reliability diagram in
      let structural = param params "structural" = Some "true" in
      let warn = Buffer.create 64 in
      let verify =
        if structural then None
        else
          let options = { Fmea.Injection_fmea.default_options with exclude } in
          match
            Dataflow.Diagnose.circuit_verifier ~options ~reliability ~output
              diagram
          with
          | Ok v -> Some v
          | Error why ->
              Printf.bprintf warn
                "warning: numeric verification unavailable (%s); reporting \
                 structural candidates\n"
                why;
              None
      in
      match Dataflow.Diagnose.diagnose ?verify model ~output with
      | Error m -> err "%s" m
      | Ok report ->
          let body =
            match param params "format" with
            | Some "json" ->
                Modelio.Json.to_string ~indent:2
                  (Dataflow.Diagnose.to_json report)
                ^ "\n"
            | Some "sarif" ->
                Modelio.Json.to_string ~indent:2
                  (Dataflow.Diagnose.to_sarif report)
                ^ "\n"
            | _ -> Dataflow.Diagnose.to_text report
          in
          ( Buffer.contents warn ^ body,
            if report.Dataflow.Diagnose.agree then 0 else 1 ))

(* ---------- lint ---------- *)

let run_lint a =
  let* diagram = parse_diagram a.Protocol.a_diagram in
  (* Mirror `same lint DIAGRAM`: a diagram always lints against a
     reliability and SM view, falling back to the built-in Table II /
     extended catalogue when the client sent none — exactly as the CLI
     does when -r / -s are omitted. *)
  let* reliability = parse_reliability a.Protocol.a_reliability in
  let* sm = parse_sm a.Protocol.a_sm in
  let params = a.Protocol.a_params in
  let label key default =
    match param params key with Some n when n <> "" -> n | _ -> default
  in
  let opt_label key default source =
    Option.map (fun _ -> label key default) source
  in
  let queries =
    match param params "query" with
    | None -> []
    | Some src -> [ (label "qname" "query", src) ]
  in
  let input =
    {
      Lint.Input.empty with
      Lint.Input.diagram = Some (label "name" "diagram", diagram);
      reliability =
        Some
          (opt_label "rname" "reliability" a.Protocol.a_reliability,
           reliability);
      sm = Some (opt_label "sname" "safety-mechanisms" a.Protocol.a_sm, sm);
      queries;
      exclude = list_param params "exclude";
      monitored = list_param params "monitored";
    }
  in
  let min_severity =
    Option.bind (param params "severity") Lint.Rule.severity_of_string
  in
  let diagnostics = Lint.Driver.run ?min_severity input in
  let body =
    match param params "format" with
    | Some "json" ->
        Modelio.Json.to_string ~indent:2 (Lint.Driver.to_json diagnostics)
        ^ "\n"
    | _ -> Lint.Driver.to_text diagnostics
  in
  (body, if Lint.Driver.has_errors diagnostics then 1 else 0)

let analyse ~engine (a : Protocol.analyse) =
  match a.Protocol.a_analysis with
  | Protocol.Fmea -> run_fmea ~engine a
  | Protocol.Fmeda -> run_fmeda ~engine a
  | Protocol.Fta -> run_fta a
  | Protocol.Assess -> run_assess a
  | Protocol.Diagnose -> run_diagnose a
  | Protocol.Lint -> run_lint a
