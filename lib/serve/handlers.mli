(** Analysis execution behind the daemon: parse the request's inline
    model texts, run the same library calls the CLI would, and render the
    CLI's (deterministic) text output.

    Every handler returns [(output, exit_code)] with the convention of
    the `same` CLI: analysis findings and verdicts land in [output],
    model/parameter problems render as ["error: ..."] with a non-zero
    exit.  Outputs never include wall-clock measurements, so a response
    is bit-identical across [SAME_JOBS] settings and cacheable by request
    fingerprint. *)

val analyse : engine:Engine.Pipeline.t -> Protocol.analyse -> string * int

val table_report : Fmea.Table.t -> string
(** The CLI's FMEA report: the table plus the metrics breakdown. *)

(** {1 Shared model parsing (also used for sessions)} *)

val parse_diagram : string -> (Blockdiag.Diagram.t, string) result

val parse_reliability :
  string option -> (Reliability.Reliability_model.t, string) result
(** [None] is the paper's Table II default, like the CLI. *)

val parse_sm : string option -> (Reliability.Sm_model.t, string) result

val injection_options :
  (string * string) list -> Fmea.Injection_fmea.options
(** [exclude]/[monitored] comma-separated params to injection options. *)

val param : (string * string) list -> string -> string option

val list_param : (string * string) list -> string -> string list
(** Comma-separated, trimmed, empties dropped. *)
