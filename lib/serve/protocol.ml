type analysis = Fmea | Fmeda | Fta | Assess | Diagnose | Lint

let analysis_to_string = function
  | Fmea -> "fmea"
  | Fmeda -> "fmeda"
  | Fta -> "fta"
  | Assess -> "assess"
  | Diagnose -> "diagnose"
  | Lint -> "lint"

let analysis_of_string = function
  | "fmea" -> Some Fmea
  | "fmeda" -> Some Fmeda
  | "fta" -> Some Fta
  | "assess" -> Some Assess
  | "diagnose" -> Some Diagnose
  | "lint" -> Some Lint
  | _ -> None

type analyse = {
  a_analysis : analysis;
  a_diagram : string;
  a_reliability : string option;
  a_sm : string option;
  a_params : (string * string) list;
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Analyse of analyse
  | Open_session of {
      o_diagram : string;
      o_reliability : string option;
      o_params : (string * string) list;
    }
  | Edit of {
      e_session : string;
      e_diagram : string option;
      e_reliability : string option;
    }
  | Close_session of string

open Modelio.Json

let opt_field name = function
  | None -> []
  | Some s -> [ (name, String s) ]

let params_to_json params =
  match params with
  | [] -> []
  | ps -> [ ("params", Object (List.map (fun (k, v) -> (k, String v)) ps)) ]

let request_to_json = function
  | Ping -> Object [ ("cmd", String "ping") ]
  | Stats -> Object [ ("cmd", String "stats") ]
  | Shutdown -> Object [ ("cmd", String "shutdown") ]
  | Analyse a ->
      Object
        ([
           ("cmd", String "analyse");
           ("analysis", String (analysis_to_string a.a_analysis));
           ("diagram", String a.a_diagram);
         ]
        @ opt_field "reliability" a.a_reliability
        @ opt_field "sm" a.a_sm
        @ params_to_json a.a_params)
  | Open_session { o_diagram; o_reliability; o_params } ->
      Object
        ([ ("cmd", String "open"); ("diagram", String o_diagram) ]
        @ opt_field "reliability" o_reliability
        @ params_to_json o_params)
  | Edit { e_session; e_diagram; e_reliability } ->
      Object
        ([ ("cmd", String "edit"); ("session", String e_session) ]
        @ opt_field "diagram" e_diagram
        @ opt_field "reliability" e_reliability)
  | Close_session s ->
      Object [ ("cmd", String "close"); ("session", String s) ]

let str_member name j = Option.bind (member name j) to_str

let params_of_json j =
  match member "params" j with
  | None -> Ok []
  | Some (Object fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, String v) :: rest -> go ((k, v) :: acc) rest
        | (k, _) :: _ ->
            Error (Printf.sprintf "param %S must be a string" k)
      in
      go [] fields
  | Some _ -> Error "params must be an object of strings"

let request_of_json j =
  let ( let* ) = Result.bind in
  match str_member "cmd" j with
  | None -> Error "missing \"cmd\""
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some "analyse" -> (
      let* params = params_of_json j in
      match str_member "analysis" j with
      | None -> Error "analyse: missing \"analysis\""
      | Some kind -> (
          match analysis_of_string kind with
          | None -> Error (Printf.sprintf "analyse: unknown analysis %S" kind)
          | Some a_analysis -> (
              match str_member "diagram" j with
              | None -> Error "analyse: missing \"diagram\""
              | Some a_diagram ->
                  Ok
                    (Analyse
                       {
                         a_analysis;
                         a_diagram;
                         a_reliability = str_member "reliability" j;
                         a_sm = str_member "sm" j;
                         a_params = params;
                       }))))
  | Some "open" -> (
      let* params = params_of_json j in
      match str_member "diagram" j with
      | None -> Error "open: missing \"diagram\""
      | Some o_diagram ->
          Ok
            (Open_session
               {
                 o_diagram;
                 o_reliability = str_member "reliability" j;
                 o_params = params;
               }))
  | Some "edit" -> (
      match str_member "session" j with
      | None -> Error "edit: missing \"session\""
      | Some e_session ->
          let e_diagram = str_member "diagram" j in
          let e_reliability = str_member "reliability" j in
          if e_diagram = None && e_reliability = None then
            Error "edit: give \"diagram\" and/or \"reliability\""
          else Ok (Edit { e_session; e_diagram; e_reliability }))
  | Some "close" -> (
      match str_member "session" j with
      | None -> Error "close: missing \"session\""
      | Some s -> Ok (Close_session s))
  | Some cmd -> Error (Printf.sprintf "unknown cmd %S" cmd)

(* The request fingerprint covers everything that can change the answer:
   kind, model texts, and the parameters in a canonical (sorted) order so
   two clients spelling the same request differently still share it. *)
let fingerprint a =
  let module F = Engine.Fingerprint in
  let opt = function None -> "\x00absent" | Some s -> s in
  let params =
    List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) a.a_params
  in
  F.node
    (F.leaf (analysis_to_string a.a_analysis)
    :: F.leaf a.a_diagram
    :: F.leaf (opt a.a_reliability)
    :: F.leaf (opt a.a_sm)
    :: List.map (fun (k, v) -> F.leaf (k ^ "\x00" ^ v)) params)

let ok fields = Object (("ok", Bool true) :: fields)

let error msg = Object [ ("ok", Bool false); ("error", String msg) ]

let read_frame ic = In_channel.input_line ic

let write_frame oc line =
  if String.contains line '\n' then
    invalid_arg "Protocol.write_frame: embedded newline";
  output_string oc line;
  output_char oc '\n';
  flush oc
