(** The `same serve` wire protocol: newline-delimited JSON over a Unix
    domain socket.

    Each request is one compact JSON object on one line; each response is
    one compact JSON object on one line (the printer escapes embedded
    newlines, so framing never splits a value).  Requests are
    {e content-addressed}: {!fingerprint} hashes everything that can
    change an analysis answer — the analysis kind, the full model texts
    and every parameter — and the server uses that hash for single-flight
    coalescing and for the shared result cache.  Two tenants posting the
    same models get the same hash, and therefore share one computation. *)

type analysis = Fmea | Fmeda | Fta | Assess | Diagnose | Lint

val analysis_to_string : analysis -> string

val analysis_of_string : string -> analysis option

type analyse = {
  a_analysis : analysis;
  a_diagram : string;  (** block-diagram model, [.bd] text format *)
  a_reliability : string option;  (** reliability model, CSV text *)
  a_sm : string option;  (** safety-mechanism model, CSV text *)
  a_params : (string * string) list;
      (** analysis-specific knobs (sorted canonically by {!fingerprint}):
          [exclude], [monitored] (comma-separated ids), [target],
          [max_cardinality], [engine], [mission_hours], [trials],
          [rel_precision], [method], [seed], [check], [output],
          [structural], [severity], [query], [format] *)
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Analyse of analyse
  | Open_session of {
      o_diagram : string;
      o_reliability : string option;
      o_params : (string * string) list;
    }
  | Edit of {
      e_session : string;
      e_diagram : string option;
      e_reliability : string option;
    }
  | Close_session of string

val request_to_json : request -> Modelio.Json.t

val request_of_json : Modelio.Json.t -> (request, string) result

val fingerprint : analyse -> Engine.Fingerprint.t
(** Content hash of an analysis request: kind, model texts and
    canonically-ordered parameters.  Equal fingerprints get coalesced
    in flight and share cache entries across sessions and tenants. *)

(** {1 Responses} *)

val ok : (string * Modelio.Json.t) list -> Modelio.Json.t
(** [{"ok": true, ...fields}] *)

val error : string -> Modelio.Json.t
(** [{"ok": false, "error": msg}] *)

(** {1 Framing} *)

val read_frame : in_channel -> string option
(** One line (without the terminator); [None] at end of stream. *)

val write_frame : out_channel -> string -> unit
(** Write the line, the ['\n'] terminator, and flush.  Raises
    [Invalid_argument] if the payload itself contains a newline. *)
