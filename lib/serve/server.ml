type config = {
  socket_path : string;
  cache_dir : string option;
  jobs : int;
}

type stats = {
  requests : int;
  analyses_computed : int;
  analyses_cached : int;
  analyses_coalesced : int;
  sessions_open : int;
}

type t = {
  config : config;
  engine : Engine.Pipeline.t;
  sessions : Session.t;
  flight : (string * int) Singleflight.t;
  listen_fd : Unix.file_descr;
  (* Self-pipe: [stop] writes a byte so the select-based accept loop
     wakes immediately instead of on the next connection. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  c_requests : int Atomic.t;
  c_computed : int Atomic.t;
  c_cached : int Atomic.t;
  c_coalesced : int Atomic.t;
  (* Requests currently executing an analysis — the denominator of the
     per-request job budget. *)
  active : int Atomic.t;
  workers : (int, Thread.t) Hashtbl.t;
  workers_lock : Mutex.t;
  mutable accept_thread : Thread.t option;
}

let src = Logs.Src.create "serve" ~doc:"analysis daemon"

module Log = (val Logs.src_log src : Logs.LOG)

open Modelio.Json

(* ---------- per-request dispatch ---------- *)

(* Fair-share budget: with [a] requests in flight each gets an equal
   slice of the pool, never less than one domain.  A lone request still
   gets the whole pool. *)
let budget t =
  let a = Stdlib.max 1 (Atomic.get t.active) in
  Stdlib.max 1 (t.config.jobs / a)

let with_request_slot t f =
  Atomic.incr t.active;
  Fun.protect ~finally:(fun () -> Atomic.decr t.active) @@ fun () ->
  Exec.with_jobs (budget t) f

let handle_analyse t (a : Protocol.analyse) =
  let fp = Protocol.fingerprint a in
  let key = Engine.Fingerprint.to_hex fp in
  let computed = ref false in
  let compute () =
    Engine.Pipeline.memo t.engine ~stage:"serve.response" ~key:fp (fun () ->
        computed := true;
        with_request_slot t (fun () -> Handlers.analyse ~engine:t.engine a))
  in
  let (output, exit_code), outcome = Singleflight.run t.flight ~key compute in
  let coalesced = outcome = Singleflight.Coalesced in
  let cached = (not coalesced) && not !computed in
  if coalesced then Atomic.incr t.c_coalesced
  else if cached then Atomic.incr t.c_cached
  else Atomic.incr t.c_computed;
  Protocol.ok
    [
      ("exit", Number (float_of_int exit_code));
      ("output", String output);
      ("cached", Bool cached);
      ("coalesced", Bool coalesced);
    ]

let handle_open t ~o_diagram ~o_reliability ~o_params =
  match Handlers.parse_diagram o_diagram with
  | Error m -> Protocol.error m
  | Ok diagram -> (
      match Handlers.parse_reliability o_reliability with
      | Error m -> Protocol.error m
      | Ok reliability -> (
          let options = Handlers.injection_options o_params in
          match
            with_request_slot t (fun () ->
                Engine.Pipeline.injection_fmea t.engine ~options diagram
                  reliability)
          with
          | exception Fmea.Injection_fmea.Golden_run_failed m ->
              Protocol.error (Printf.sprintf "golden simulation failed: %s" m)
          | table ->
              let s =
                Session.open_session t.sessions ~options ~diagram ~reliability
                  ~table
              in
              Protocol.ok
                [
                  ("session", String s.Session.s_id);
                  ("revision", Number 0.);
                  ( "rows",
                    Number (float_of_int (List.length table.Fmea.Table.rows))
                  );
                  ("output", String (Handlers.table_report table));
                ]))

(* Rows of [table] absent from [previous] (matched on the full row, so a
   changed classification reports as changed).  Analysis order is kept. *)
let changed_rows ~previous table =
  List.filter
    (fun row ->
      not (List.exists (Fmea.Table.equal_row row) previous.Fmea.Table.rows))
    table.Fmea.Table.rows

let row_json (r : Fmea.Table.row) =
  Object
    [
      ("component", String r.Fmea.Table.component);
      ("failure_mode", String r.Fmea.Table.failure_mode);
      ("distribution_pct", Number r.Fmea.Table.distribution_pct);
      ("safety_related", Bool r.Fmea.Table.safety_related);
      ("impact", String r.Fmea.Table.impact);
      ("single_point_fit", Number r.Fmea.Table.single_point_fit);
    ]

let handle_edit t ~e_session ~e_diagram ~e_reliability =
  match Session.find t.sessions e_session with
  | None -> Protocol.error (Printf.sprintf "no such session %S" e_session)
  | Some s -> (
      let parsed_diagram =
        match e_diagram with
        | None -> Ok None
        | Some text -> Result.map Option.some (Handlers.parse_diagram text)
      in
      let parsed_reliability =
        match e_reliability with
        | None -> Ok None
        | Some text ->
            Result.map Option.some (Handlers.parse_reliability (Some text))
      in
      match (parsed_diagram, parsed_reliability) with
      | Error m, _ | _, Error m -> Protocol.error m
      | Ok new_diagram, Ok new_reliability -> (
          (* Serialise edits to one session: the reuse baseline must be
             the table this edit replaces. *)
          Mutex.lock s.Session.s_lock;
          Fun.protect ~finally:(fun () -> Mutex.unlock s.Session.s_lock)
          @@ fun () ->
          let diagram =
            Option.value new_diagram ~default:s.Session.s_diagram
          in
          let reliability =
            Option.value new_reliability ~default:s.Session.s_reliability
          in
          let previous =
            {
              Engine.Pipeline.prev_diagram = s.Session.s_diagram;
              prev_reliability = s.Session.s_reliability;
              prev_table = s.Session.s_table;
            }
          in
          let before = Engine.Pipeline.snapshot t.engine in
          match
            with_request_slot t (fun () ->
                Engine.Pipeline.injection_fmea t.engine ~previous
                  ~options:s.Session.s_options diagram reliability)
          with
          | exception Fmea.Injection_fmea.Golden_run_failed m ->
              Protocol.error (Printf.sprintf "golden simulation failed: %s" m)
          | table ->
              let after = Engine.Pipeline.snapshot t.engine in
              let changed =
                changed_rows ~previous:s.Session.s_table table
              in
              s.Session.s_diagram <- diagram;
              s.Session.s_reliability <- reliability;
              s.Session.s_table <- table;
              s.Session.s_revision <- s.Session.s_revision + 1;
              Protocol.ok
                [
                  ("session", String s.Session.s_id);
                  ("revision", Number (float_of_int s.Session.s_revision));
                  ( "rows",
                    Number (float_of_int (List.length table.Fmea.Table.rows))
                  );
                  ("changed_rows", List (List.map row_json changed));
                  ( "rows_reused",
                    Number
                      (float_of_int
                         (after.Engine.Stats.rows_reused
                        - before.Engine.Stats.rows_reused)) );
                  ( "solves",
                    Number
                      (float_of_int
                         (Engine.Stats.solves_performed after
                        - Engine.Stats.solves_performed before)) );
                ]))

let stats_response t =
  let snap = Engine.Pipeline.snapshot t.engine in
  Protocol.ok
    [
      ("requests", Number (float_of_int (Atomic.get t.c_requests)));
      ("computed", Number (float_of_int (Atomic.get t.c_computed)));
      ("cached", Number (float_of_int (Atomic.get t.c_cached)));
      ("coalesced", Number (float_of_int (Atomic.get t.c_coalesced)));
      ("sessions", Number (float_of_int (Session.count t.sessions)));
      ("in_flight", Number (float_of_int (Singleflight.in_flight t.flight)));
      ("jobs", Number (float_of_int t.config.jobs));
      ( "engine",
        Object
          [
            ("mem_hits", Number (float_of_int snap.Engine.Stats.mem_hits));
            ("disk_hits", Number (float_of_int snap.Engine.Stats.disk_hits));
            ("misses", Number (float_of_int snap.Engine.Stats.misses));
            ( "golden_solves",
              Number (float_of_int snap.Engine.Stats.golden_solves) );
            ( "rows_classified",
              Number (float_of_int snap.Engine.Stats.rows_classified) );
            ( "rows_reused",
              Number (float_of_int snap.Engine.Stats.rows_reused) );
          ] );
    ]

let respond t request =
  match request with
  | Protocol.Ping -> Protocol.ok [ ("pong", Bool true) ]
  | Protocol.Stats -> stats_response t
  | Protocol.Shutdown -> Protocol.ok [ ("stopping", Bool true) ]
  | Protocol.Analyse a -> handle_analyse t a
  | Protocol.Open_session { o_diagram; o_reliability; o_params } ->
      handle_open t ~o_diagram ~o_reliability ~o_params
  | Protocol.Edit { e_session; e_diagram; e_reliability } ->
      handle_edit t ~e_session ~e_diagram ~e_reliability
  | Protocol.Close_session id ->
      if Session.close t.sessions id then Protocol.ok [ ("closed", Bool true) ]
      else Protocol.error (Printf.sprintf "no such session %S" id)

(* ---------- connection loop ---------- *)

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1) with _ -> ()

let request_stop t =
  if not (Atomic.exchange t.stopping true) then wake t

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some line ->
        let response, shutdown =
          match Modelio.Json.parse line with
          | exception Modelio.Json.Parse_error { pos; message } ->
              ( Protocol.error
                  (Printf.sprintf "bad JSON at offset %d: %s" pos message),
                false )
          | json -> (
              match Protocol.request_of_json json with
              | Error m -> (Protocol.error m, false)
              | Ok request -> (
                  Atomic.incr t.c_requests;
                  match respond t request with
                  | response -> (response, request = Protocol.Shutdown)
                  | exception e ->
                      (Protocol.error (Printexc.to_string e), false)))
        in
        (match
           Protocol.write_frame oc (Modelio.Json.to_string response)
         with
        | () -> ()
        | exception _ -> raise Exit);
        if shutdown then begin
          request_stop t;
          raise Exit
        end;
        loop ()
  in
  (try loop () with Exit | End_of_file | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------- accept loop ---------- *)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          if List.mem t.wake_r ready then begin
            let buf = Bytes.create 16 in
            try ignore (Unix.read t.wake_r buf 0 16)
            with Unix.Unix_error _ -> ()
          end;
          if (not (Atomic.get t.stopping)) && List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | exception Unix.Unix_error _ -> ()
            | fd, _ ->
                let worker =
                  Thread.create
                    (fun () ->
                      let id = Thread.id (Thread.self ()) in
                      Fun.protect
                        ~finally:(fun () ->
                          Mutex.lock t.workers_lock;
                          Hashtbl.remove t.workers id;
                          Mutex.unlock t.workers_lock)
                        (fun () -> serve_connection t fd))
                    ()
                in
                Mutex.lock t.workers_lock;
                Hashtbl.replace t.workers (Thread.id worker) worker;
                Mutex.unlock t.workers_lock
          end);
      loop ()
    end
  in
  loop ();
  (* Drain: wait for in-flight connections so their responses flush
     before the socket disappears. *)
  let rec drain () =
    Mutex.lock t.workers_lock;
    let pending =
      Hashtbl.fold (fun id th acc -> (id, th) :: acc) t.workers []
    in
    Mutex.unlock t.workers_lock;
    match pending with
    | [] -> ()
    | entries ->
        List.iter
          (fun (id, th) ->
            (try Thread.join th with _ -> ());
            Mutex.lock t.workers_lock;
            Hashtbl.remove t.workers id;
            Mutex.unlock t.workers_lock)
          entries;
        drain ()
  in
  drain ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ());
  Engine.Pipeline.save_cost_state t.engine;
  Atomic.set t.stopped true

let start config =
  let engine =
    Engine.Pipeline.create
      ~cache:(Engine.Cache.create ?dir:config.cache_dir ())
      ()
  in
  (if Sys.file_exists config.socket_path then
     try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path)
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      config;
      engine;
      sessions = Session.create ();
      flight = Singleflight.create ();
      listen_fd;
      wake_r;
      wake_w;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      c_requests = Atomic.make 0;
      c_computed = Atomic.make 0;
      c_cached = Atomic.make 0;
      c_coalesced = Atomic.make 0;
      active = Atomic.make 0;
      workers = Hashtbl.create 16;
      workers_lock = Mutex.create ();
      accept_thread = None;
    }
  in
  Log.info (fun m ->
      m "listening on %s (jobs=%d)" config.socket_path config.jobs);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t = request_stop t

let wait t =
  match t.accept_thread with
  | Some th -> Thread.join th
  | None -> ()

let stats t =
  {
    requests = Atomic.get t.c_requests;
    analyses_computed = Atomic.get t.c_computed;
    analyses_cached = Atomic.get t.c_cached;
    analyses_coalesced = Atomic.get t.c_coalesced;
    sessions_open = Session.count t.sessions;
  }

let engine t = t.engine

(* Signal_handle does not cut it here: every thread of a quiescent
   daemon is blocked in C (select, cond_wait), so no thread reaches a
   safepoint to run the OCaml handler.  Block the signals in all threads
   (the mask is set before {!start}, so spawned threads inherit it) and
   sigwait on a dedicated thread instead — delivery is then synchronous
   and [request_stop]'s wake pipe does the rest. *)
let run config =
  let signals = [ Sys.sigterm; Sys.sigint ] in
  let previous_mask = Thread.sigmask Unix.SIG_BLOCK signals in
  let t = start config in
  let _waiter : Thread.t =
    Thread.create
      (fun () ->
        match Thread.wait_signal signals with
        | _signal -> request_stop t
        | exception _ -> ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Thread.sigmask Unix.SIG_SETMASK previous_mask))
    (fun () -> wait t)
