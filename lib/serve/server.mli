(** The `same serve` daemon: one warm {!Engine.Pipeline} behind a Unix
    domain socket, multiplexing concurrent analysis sessions.

    Three things make the warm path fast:

    - {b Request coalescing.}  Responses are content-addressed by
      {!Protocol.fingerprint}; concurrent requests with equal
      fingerprints share one in-flight computation (single-flight), and
      completed responses live in the engine's shared cache, so repeated
      requests — from any session or tenant — are served without
      re-solving.
    - {b Session multiplexing.}  Every connection is a thread on the
      shared {!Exec} pool, but each request runs under an
      {!Exec.with_jobs} budget of [max 1 (jobs / active_requests)], so a
      heavy Monte-Carlo [assess] cannot starve a cheap incremental
      [fmea] diff.
    - {b Incremental sessions.}  A client posts its model once ([open]),
      then streams edits; the server diffs model fingerprints, reuses
      unimpacted FMEA rows from the previous iteration and returns only
      the rows that changed.

    Responses never include wall-clock measurements, so they are
    bit-identical across [SAME_JOBS] settings and safe to cache. *)

type config = {
  socket_path : string;
  cache_dir : string option;  (** engine disk cache; [None] memory-only *)
  jobs : int;  (** pool width shared by all sessions *)
}

type stats = {
  requests : int;  (** requests answered (all kinds) *)
  analyses_computed : int;  (** analyse requests that ran a computation *)
  analyses_cached : int;  (** analyse requests served from the cache *)
  analyses_coalesced : int;  (** analyse requests that shared an in-flight leader *)
  sessions_open : int;
}

type t

val start : config -> t
(** Bind the socket (replacing any stale file), start the accept loop in
    a background thread and return immediately.  The engine is created
    warm: cost-model state is loaded and the first request pays any
    remaining warm-up. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, wait for in-flight requests,
    close and unlink the socket.  Idempotent; also triggered by a
    [shutdown] request or SIGTERM/SIGINT when running under {!run}. *)

val wait : t -> unit
(** Block until the server has shut down. *)

val stats : t -> stats

val engine : t -> Engine.Pipeline.t
(** The server's warm pipeline (exposed for tests and benchmarks). *)

val run : config -> unit
(** [start], install SIGTERM/SIGINT handlers that trigger {!stop}, and
    {!wait}.  This is what `same serve` calls. *)
