type session = {
  s_id : string;
  s_lock : Mutex.t;
  s_options : Fmea.Injection_fmea.options;
  mutable s_diagram : Blockdiag.Diagram.t;
  mutable s_reliability : Reliability.Reliability_model.t;
  mutable s_table : Fmea.Table.t;
  mutable s_revision : int;
}

type t = {
  lock : Mutex.t;
  sessions : (string, session) Hashtbl.t;
  mutable next : int;
}

let create () =
  { lock = Mutex.create (); sessions = Hashtbl.create 16; next = 0 }

let open_session t ~options ~diagram ~reliability ~table =
  Mutex.lock t.lock;
  t.next <- t.next + 1;
  let s =
    {
      s_id = Printf.sprintf "s%d" t.next;
      s_lock = Mutex.create ();
      s_options = options;
      s_diagram = diagram;
      s_reliability = reliability;
      s_table = table;
      s_revision = 0;
    }
  in
  Hashtbl.add t.sessions s.s_id s;
  Mutex.unlock t.lock;
  s

let find t id =
  Mutex.lock t.lock;
  let s = Hashtbl.find_opt t.sessions id in
  Mutex.unlock t.lock;
  s

let close t id =
  Mutex.lock t.lock;
  let existed = Hashtbl.mem t.sessions id in
  Hashtbl.remove t.sessions id;
  Mutex.unlock t.lock;
  existed

let count t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.lock;
  n
