(** The daemon's session table: one entry per client model under
    incremental editing.

    A session holds the artefacts the incremental engine needs for
    diff-driven row reuse — the previous diagram, reliability model and
    FMEA table ({!Engine.Pipeline.previous}).  A client posts its model
    once ([open]), then streams edits; each edit re-analyses against the
    previous iteration and the server returns only the rows that
    changed.

    The table itself is mutex-guarded; each session additionally carries
    its own lock so concurrent edits to {e one} session serialise (an
    edit's reuse baseline must be the table it replaces) while edits to
    different sessions proceed in parallel. *)

type session = {
  s_id : string;
  s_lock : Mutex.t;
  s_options : Fmea.Injection_fmea.options;
  mutable s_diagram : Blockdiag.Diagram.t;
  mutable s_reliability : Reliability.Reliability_model.t;
  mutable s_table : Fmea.Table.t;
  mutable s_revision : int;
}

type t

val create : unit -> t

val open_session :
  t ->
  options:Fmea.Injection_fmea.options ->
  diagram:Blockdiag.Diagram.t ->
  reliability:Reliability.Reliability_model.t ->
  table:Fmea.Table.t ->
  session
(** Fresh session with a server-unique id ("s1", "s2", ...). *)

val find : t -> string -> session option

val close : t -> string -> bool
(** [true] if the session existed. *)

val count : t -> int
