type 'a state = Running | Done of ('a, exn) result

type 'a cell = { mutable state : 'a state; cond : Condition.t }

type 'a t = { lock : Mutex.t; cells : (string, 'a cell) Hashtbl.t }

type outcome = Led | Coalesced

let create () = { lock = Mutex.create (); cells = Hashtbl.create 16 }

let run t ~key f =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.cells key with
  | Some cell ->
      (* Follower: wait (on the table lock's condition) for the leader to
         publish, then share its result.  The cell stays readable after
         the leader removed it from the table — we hold a reference. *)
      let rec await () =
        match cell.state with
        | Running ->
            Condition.wait cell.cond t.lock;
            await ()
        | Done r -> r
      in
      let r = await () in
      Mutex.unlock t.lock;
      (match r with Ok v -> (v, Coalesced) | Error e -> raise e)
  | None ->
      let cell = { state = Running; cond = Condition.create () } in
      Hashtbl.add t.cells key cell;
      Mutex.unlock t.lock;
      let r = match f () with v -> Ok v | exception e -> Error e in
      Mutex.lock t.lock;
      cell.state <- Done r;
      Hashtbl.remove t.cells key;
      Condition.broadcast cell.cond;
      Mutex.unlock t.lock;
      (match r with Ok v -> (v, Led) | Error e -> raise e)

let in_flight t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.cells in
  Mutex.unlock t.lock;
  n
