(** Single-flight request deduplication.

    Concurrent calls under one key share a single execution of the
    computation: the first arrival (the {e leader}) runs it; every caller
    that arrives while it is still in flight (a {e follower}) blocks and
    receives the leader's result — value or exception — without running
    anything.  Once the leader finishes, the key is vacated: later calls
    start a fresh flight (a persistent result cache, not this module, is
    responsible for serving them cheaply).

    This is the coalescing half of the `same serve` daemon: N identical
    concurrent requests cost ~1 solve. *)

type 'a t

type outcome =
  | Led  (** this caller executed the computation *)
  | Coalesced  (** this caller shared an in-flight leader's result *)

val create : unit -> 'a t

val run : 'a t -> key:string -> (unit -> 'a) -> 'a * outcome
(** If the leader's computation raised, every sharing caller re-raises
    the same exception. *)

val in_flight : 'a t -> int
(** Keys currently being computed. *)
