type severity = Error | Warning [@@deriving eq, show]

type issue = { severity : severity; element : Base.id; message : string }
[@@deriving eq, show]

type finding = {
  f_rule : string;
  f_severity : severity;
  f_element : Base.id;
  f_message : string;
  f_hint : string option;
}
[@@deriving eq, show]

let rules =
  [
    ("SSAM001", Error, "duplicate element id");
    ("SSAM002", Error, "dangling reference");
    ("SSAM003", Error, "malformed relationship");
    ("SSAM004", Error, "safety mechanism covers a non-failure-mode");
    ("SSAM005", Error, "bad failure-mode hazard link");
    ("SSAM006", Error, "numeric range violation");
    ("SSAM007", Warning, "failure-mode distributions do not sum to 100%");
    ("SSAM008", Warning, "unreachable architecture component");
    ("SSAM009", Warning, "failure modes declared without a FIT row");
    ("SSAM010", Warning, "integrity target without allocated requirement");
  ]

let pp_issue ppf i =
  Format.fprintf ppf "%s: [%s] %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.element i.message

let pp_finding ppf f =
  Format.fprintf ppf "%s %s: [%s] %s" f.f_rule
    (match f.f_severity with Error -> "error" | Warning -> "warning")
    f.f_element f.f_message

type adder = string -> ?hint:string -> severity -> Base.id -> string -> unit

let errors issues = List.filter (fun i -> i.severity = Error) issues

let warnings issues = List.filter (fun i -> i.severity = Warning) issues

(* Collect every id in declaration order, including duplicates, so
   uniqueness can be checked (Model.index silently keeps the first). *)
let collect_ids model =
  let acc = ref [] in
  let push (m : Base.meta) = acc := m.Base.id :: !acc in
  push model.Model.model_meta;
  List.iter
    (fun (p : Requirement.package) ->
      push p.Requirement.package_meta;
      List.iter
        (fun e -> push (Requirement.element_meta e))
        p.Requirement.elements;
      List.iter
        (fun (i : Requirement.package_interface) ->
          push i.Requirement.interface_meta)
        p.Requirement.interfaces)
    model.Model.requirement_packages;
  List.iter
    (fun (p : Hazard.package) ->
      push p.Hazard.package_meta;
      List.iter
        (fun e ->
          push (Hazard.element_meta e);
          match e with
          | Hazard.Situation s ->
              List.iter (fun c -> push c.Hazard.cause_meta) s.Hazard.causes
          | Hazard.Measure _ -> ())
        p.Hazard.elements)
    model.Model.hazard_packages;
  List.iter
    (fun (p : Architecture.package) ->
      push p.Architecture.package_meta;
      List.iter
        (function
          | Architecture.Relationship r -> push r.Architecture.rel_meta
          | Architecture.Component root ->
              Architecture.iter_components
                (fun c ->
                  push c.Architecture.c_meta;
                  List.iter
                    (fun (io : Architecture.io_node) ->
                      push io.Architecture.io_meta)
                    c.Architecture.io_nodes;
                  List.iter
                    (fun (fm : Architecture.failure_mode) ->
                      push fm.Architecture.fm_meta;
                      List.iter
                        (fun (fe : Architecture.failure_effect) ->
                          push fe.Architecture.fe_meta)
                        fm.Architecture.effects)
                    c.Architecture.failure_modes;
                  List.iter
                    (fun (sm : Architecture.safety_mechanism) ->
                      push sm.Architecture.sm_meta)
                    c.Architecture.safety_mechanisms;
                  List.iter
                    (fun (f : Architecture.func) -> push f.Architecture.fn_meta)
                    c.Architecture.functions;
                  List.iter
                    (fun (r : Architecture.relationship) ->
                      push r.Architecture.rel_meta)
                    c.Architecture.connections)
                root)
        p.Architecture.elements)
    model.Model.component_packages;
  List.iter
    (fun (p : Mbsa.package) ->
      push p.Mbsa.package_meta;
      List.iter (fun a -> push a.Mbsa.ar_meta) p.Mbsa.artifacts;
      List.iter (fun t -> push t.Mbsa.tl_meta) p.Mbsa.traces)
    model.Model.mbsa_packages;
  List.rev !acc

let check_duplicates ids (add : adder) =
  let seen = Hashtbl.create 97 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then
        add "SSAM001" ~hint:"rename one of the elements" Error id
          "duplicate element id"
      else Hashtbl.add seen id ())
    ids

let check_numeric_component (add : adder) (c : Architecture.component) =
  let cid = Architecture.component_id c in
  if c.Architecture.fit < 0.0 then add "SSAM006" Error cid "negative FIT";
  List.iter
    (fun (fm : Architecture.failure_mode) ->
      let fid = fm.Architecture.fm_meta.Base.id in
      let d = fm.Architecture.distribution_pct in
      if d < 0.0 || d > 100.0 then
        add "SSAM006" Error fid
          (Printf.sprintf "failure-mode distribution %.2f%% outside [0,100]" d))
    c.Architecture.failure_modes;
  if c.Architecture.failure_modes <> [] then begin
    let sum =
      List.fold_left
        (fun s (fm : Architecture.failure_mode) ->
          s +. fm.Architecture.distribution_pct)
        0.0 c.Architecture.failure_modes
    in
    if Float.abs (sum -. 100.0) > 0.5 then
      add "SSAM007"
        ~hint:"make the distribution percentages of the component's failure \
               modes sum to 100"
        Warning cid
        (Printf.sprintf "failure-mode distributions sum to %.2f%%, not 100%%"
           sum)
  end;
  List.iter
    (fun (sm : Architecture.safety_mechanism) ->
      let sid = sm.Architecture.sm_meta.Base.id in
      let cov = sm.Architecture.coverage_pct in
      if cov < 0.0 || cov > 100.0 then
        add "SSAM006" Error sid
          (Printf.sprintf "diagnostic coverage %.2f%% outside [0,100]" cov);
      if sm.Architecture.sm_cost < 0.0 then
        add "SSAM006" Error sid "negative SM cost")
    c.Architecture.safety_mechanisms;
  List.iter
    (fun (io : Architecture.io_node) ->
      match (io.Architecture.lower_limit, io.Architecture.upper_limit) with
      | Some lo, Some hi when lo > hi ->
          add "SSAM006" Error io.Architecture.io_meta.Base.id
            (Printf.sprintf "IO limits inverted (%.3g > %.3g)" lo hi)
      | _ -> ())
    c.Architecture.io_nodes

let check_references model idx (add : adder) =
  let resolves id = Option.is_some (Model.lookup idx id) in
  let check_ref owner kind id =
    if not (resolves id) then
      add "SSAM002"
        ~hint:"fix the id or add the referenced element"
        Error owner
        (Printf.sprintf "dangling %s reference to '%s'" kind id)
  in
  let check_meta_cites (m : Base.meta) =
    List.iter (fun id -> check_ref m.Base.id "cite" id) m.Base.cites
  in
  (* Citations everywhere. *)
  Model.iter_entities (fun e -> check_meta_cites (Model.entity_meta e)) idx;
  (* Architecture-specific referential checks. *)
  List.iter
    (fun (p : Architecture.package) ->
      let check_relationship ~scope (r : Architecture.relationship) =
        let rid = r.Architecture.rel_meta.Base.id in
        let endpoint cid node =
          (match Model.lookup idx cid with
          | Some (Model.E_component c) ->
              (match scope with
              | Some allowed
                when not (List.exists (String.equal cid) allowed) ->
                  add "SSAM003" Warning rid
                    (Printf.sprintf
                       "relationship endpoint '%s' is not a direct child of \
                        the enclosing component"
                       cid)
              | Some _ | None -> ());
              (match node with
              | Some nid ->
                  let io_ids =
                    List.map
                      (fun (io : Architecture.io_node) ->
                        io.Architecture.io_meta.Base.id)
                      c.Architecture.io_nodes
                  in
                  if not (List.exists (String.equal nid) io_ids) then
                    add "SSAM003" Error rid
                      (Printf.sprintf "IO node '%s' not on component '%s'" nid
                         cid)
              | None -> ())
          | Some _ ->
              add "SSAM003" Error rid
                (Printf.sprintf "relationship endpoint '%s' is not a component"
                   cid)
          | None ->
              add "SSAM003" Error rid
                (Printf.sprintf "dangling relationship endpoint '%s'" cid))
        in
        endpoint r.Architecture.from_component r.Architecture.from_node;
        endpoint r.Architecture.to_component r.Architecture.to_node
      in
      List.iter
        (function
          | Architecture.Relationship r -> check_relationship ~scope:None r
          | Architecture.Component root ->
              Architecture.iter_components
                (fun c ->
                  let child_ids =
                    List.map Architecture.component_id
                      c.Architecture.children
                    @ [ Architecture.component_id c ]
                  in
                  List.iter
                    (check_relationship ~scope:(Some child_ids))
                    c.Architecture.connections;
                  (* SM covers must name failure modes of the same component. *)
                  let fm_ids =
                    List.map
                      (fun (fm : Architecture.failure_mode) ->
                        fm.Architecture.fm_meta.Base.id)
                      c.Architecture.failure_modes
                  in
                  List.iter
                    (fun (sm : Architecture.safety_mechanism) ->
                      List.iter
                        (fun fmid ->
                          if not (List.exists (String.equal fmid) fm_ids) then
                            add "SSAM004"
                              ~hint:"point the mechanism's covers list at a \
                                     failure mode declared on its component"
                              Error sm.Architecture.sm_meta.Base.id
                              (Printf.sprintf
                                 "safety mechanism covers '%s', not a failure \
                                  mode of component '%s'"
                                 fmid
                                 (Architecture.component_id c)))
                        sm.Architecture.covers)
                    c.Architecture.safety_mechanisms;
                  (* Hazard links on failure modes must resolve to situations. *)
                  List.iter
                    (fun (fm : Architecture.failure_mode) ->
                      List.iter
                        (fun hid ->
                          match Model.lookup idx hid with
                          | Some (Model.E_hazard (Hazard.Situation _)) -> ()
                          | Some _ ->
                              add "SSAM005" Error
                                fm.Architecture.fm_meta.Base.id
                                (Printf.sprintf
                                   "'%s' is not a hazardous situation" hid)
                          | None ->
                              add "SSAM005" Error
                                fm.Architecture.fm_meta.Base.id
                                (Printf.sprintf
                                   "dangling hazard reference '%s'" hid))
                        fm.Architecture.hazards)
                    c.Architecture.failure_modes)
                root)
        p.Architecture.elements;
      List.iter
        (fun (i : Architecture.package_interface) ->
          List.iter
            (fun id -> check_ref i.Architecture.interface_meta.Base.id "export" id)
            i.Architecture.exports)
        p.Architecture.interfaces)
    model.Model.component_packages;
  (* Requirement interfaces and relationships. *)
  List.iter
    (fun (p : Requirement.package) ->
      List.iter
        (function
          | Requirement.Relationship r ->
              check_ref r.Requirement.rel_meta.Base.id "requirement source"
                r.Requirement.source;
              check_ref r.Requirement.rel_meta.Base.id "requirement target"
                r.Requirement.target
          | Requirement.Requirement _ -> ())
        p.Requirement.elements;
      List.iter
        (fun (i : Requirement.package_interface) ->
          List.iter
            (fun id ->
              check_ref i.Requirement.interface_meta.Base.id "export" id)
            i.Requirement.exports)
        p.Requirement.interfaces)
    model.Model.requirement_packages;
  (* Hazard mitigation links. *)
  List.iter
    (fun (p : Hazard.package) ->
      List.iter
        (fun (m : Hazard.control_measure) ->
          List.iter
            (fun id -> check_ref m.Hazard.cm_meta.Base.id "mitigates" id)
            m.Hazard.mitigates)
        (Hazard.measures p))
    model.Model.hazard_packages;
  (* MBSA package references and traces. *)
  List.iter
    (fun (p : Mbsa.package) ->
      let pid = p.Mbsa.package_meta.Base.id in
      List.iter (check_ref pid "requirement package") p.Mbsa.requirement_packages;
      List.iter (check_ref pid "hazard package") p.Mbsa.hazard_packages;
      List.iter (check_ref pid "component package") p.Mbsa.component_packages;
      List.iter
        (fun (t : Mbsa.trace_link) ->
          check_ref t.Mbsa.tl_meta.Base.id "trace source" t.Mbsa.trace_source;
          check_ref t.Mbsa.tl_meta.Base.id "trace target" t.Mbsa.trace_target)
        p.Mbsa.traces)
    model.Model.mbsa_packages

let check_hazard_numeric model (add : adder) =
  List.iter
    (fun (p : Hazard.package) ->
      List.iter
        (fun (s : Hazard.hazardous_situation) ->
          match s.Hazard.probability with
          | Some p when p < 0.0 || p > 1.0 ->
              add "SSAM006" Error s.Hazard.hs_meta.Base.id
                (Printf.sprintf "probability %g outside [0,1]" p)
          | Some _ | None -> ())
        (Hazard.situations p))
    model.Model.hazard_packages

(* SSAM008: a leaf component of a wired package that no relationship
   touches is unreachable by any analysis path.  The connection graph is
   the shared {!Graph.Digraph} kernel (the same one the path FMEA's
   dominator analysis interns), so "touched by a relationship" is an
   O(1) interning lookup instead of a hand-rolled endpoint hashtable. *)
let check_reachability model (add : adder) =
  List.iter
    (fun (p : Architecture.package) ->
      let edges = ref [] in
      let note (r : Architecture.relationship) =
        edges := (r.Architecture.from_component, r.Architecture.to_component)
                 :: !edges
      in
      List.iter note (Architecture.relationships p);
      List.iter
        (fun root ->
          Architecture.iter_components
            (fun c -> List.iter note c.Architecture.connections)
            root)
        (Architecture.top_components p);
      let g = Graph.Digraph.of_edges (List.rev !edges) in
      if Graph.Digraph.node_count g > 0 then
        List.iter
          (fun root ->
            List.iter
              (fun (leaf : Architecture.component) ->
                let id = Architecture.component_id leaf in
                if Graph.Digraph.index g id = None then
                  add "SSAM008"
                    ~hint:"connect the component with a relationship or \
                           remove it"
                    Warning id
                    "component is not an endpoint of any relationship \
                     (unreachable in the architecture)")
              (Architecture.leaf_components root))
          (Architecture.top_components p))
    model.Model.component_packages

(* SSAM009: failure modes with no FIT row to distribute. *)
let check_fit_rows model (add : adder) =
  List.iter
    (fun (c : Architecture.component) ->
      if c.Architecture.failure_modes <> [] && c.Architecture.fit = 0.0 then
        add "SSAM009"
          ~hint:"add a FIT row for the component's type to the reliability \
                 model (DECISIVE Step 3)"
          Warning
          (Architecture.component_id c)
          (Printf.sprintf
             "declares %d failure mode(s) but has zero FIT — no FIT row \
              was aggregated"
             (List.length c.Architecture.failure_modes)))
    (Model.components model)

(* SSAM010: an integrity target on a component is vacuous until a safety
   requirement is allocated to it (Allocates trace in an MBSA package). *)
let check_allocations model (add : adder) =
  let allocated = Hashtbl.create 31 in
  List.iter
    (fun (p : Mbsa.package) ->
      List.iter
        (fun (t : Mbsa.trace_link) ->
          if t.Mbsa.trace_kind = Mbsa.Allocates then
            Hashtbl.replace allocated t.Mbsa.trace_target ())
        p.Mbsa.traces)
    model.Model.mbsa_packages;
  List.iter
    (fun (c : Architecture.component) ->
      match c.Architecture.integrity with
      | Some lvl when lvl <> Requirement.QM ->
          let id = Architecture.component_id c in
          if not (Hashtbl.mem allocated id) then
            add "SSAM010"
              ~hint:"allocate a safety requirement to the component with an \
                     Allocates trace link"
              Warning id
              (Printf.sprintf
                 "integrity target %s but no safety requirement is allocated"
                 (Requirement.integrity_level_to_string lvl))
      | Some _ | None -> ())
    (Model.components model)

let findings model =
  let acc = ref [] in
  let add : adder =
   fun rule ?hint severity element message ->
    acc :=
      {
        f_rule = rule;
        f_severity = severity;
        f_element = element;
        f_message = message;
        f_hint = hint;
      }
      :: !acc
  in
  check_duplicates (collect_ids model) add;
  let idx = Model.index model in
  List.iter
    (fun (p : Architecture.package) ->
      List.iter
        (fun c -> Architecture.iter_components (check_numeric_component add) c)
        (Architecture.top_components p))
    model.Model.component_packages;
  check_hazard_numeric model add;
  check_references model idx add;
  check_reachability model add;
  check_fit_rows model add;
  check_allocations model add;
  let all = List.rev !acc in
  List.filter (fun f -> f.f_severity = Error) all
  @ List.filter (fun f -> f.f_severity = Warning) all

let check model =
  List.map
    (fun f ->
      { severity = f.f_severity; element = f.f_element; message = f.f_message })
    (findings model)

let is_valid model = errors (check model) = []
