(** Well-formedness validation for SSAM models.

    SAME runs these checks before any automated analysis; analysis modules
    assume a model that passed {!check} with no errors.

    Each check is a named {e rule} ([SSAM001], [SSAM002], ...) so the lint
    driver ([Lint], the [same lint] subcommand) can filter, document and
    report them individually.  This module is the single source of truth
    for the SSAM rule pack: {!findings} returns rule-tagged results, and
    the historical {!check}/{!issue} API is a thin adapter over it. *)

type severity = Error | Warning [@@deriving eq, show]

type issue = {
  severity : severity;
  element : Base.id;  (** offending element *)
  message : string;
}
[@@deriving eq, show]

type finding = {
  f_rule : string;  (** rule id, e.g. ["SSAM003"] *)
  f_severity : severity;
  f_element : Base.id;
  f_message : string;
  f_hint : string option;  (** how to fix, when a generic hint exists *)
}
[@@deriving eq, show]

val rules : (string * severity * string) list
(** The SSAM rule catalogue as (id, severity, title):

    - [SSAM001] duplicate element id;
    - [SSAM002] dangling reference (citations, package-interface exports,
      hazard mitigation links, requirement relationships, MBSA package
      references and traces);
    - [SSAM003] malformed relationship (dangling endpoint, endpoint not a
      component, IO node not on the endpoint component, endpoint outside
      the enclosing component — the last one a warning);
    - [SSAM004] safety mechanism covers an id that is not a failure mode
      of its component;
    - [SSAM005] failure-mode hazard link that is dangling or names a
      non-situation;
    - [SSAM006] numeric range violation (negative FIT, distribution or
      coverage outside [0,100], negative SM cost, inverted IO limits,
      hazard probability outside [0,1]);
    - [SSAM007] failure-mode distributions of a component do not sum to
      ≈100 % (warning);
    - [SSAM008] component unreachable: no relationship connects it while
      the rest of its package is wired (warning);
    - [SSAM009] component declares failure modes but has zero FIT — no
      FIT row was aggregated onto it (warning);
    - [SSAM010] component carries an integrity target but no safety
      requirement is allocated to it (warning). *)

val findings : Model.t -> finding list
(** All findings, errors first (each group in model order). *)

val pp_finding : Format.formatter -> finding -> unit

val pp_issue : Format.formatter -> issue -> unit

val check : Model.t -> issue list
(** {!findings} stripped of rule ids and hints — the pre-lint API, kept
    for callers that predate the rule registry. *)

val errors : issue list -> issue list

val warnings : issue list -> issue list

val is_valid : Model.t -> bool
(** No [Error]-severity issues. *)
