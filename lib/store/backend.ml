type t = [ `Auto | `Full | `Lazy ]

let to_string = function `Auto -> "auto" | `Full -> "full" | `Lazy -> "lazy"

let of_string = function
  | "auto" -> Some `Auto
  | "full" -> Some `Full
  | "lazy" -> Some `Lazy
  | _ -> None

let units_of spec =
  let per_unit = Stdlib.max 1 Synthetic.unit_elements in
  Stdlib.max 1
    ((spec.Synthetic.target_elements + per_unit - 1) / per_unit)

let choose ?budget spec =
  let fits_in_budget =
    match budget with
    | None -> true
    | Some b ->
        spec.Synthetic.target_elements * Budget.bytes_per_element
        <= Budget.max_bytes b - Budget.used_bytes b
  in
  if not fits_in_budget then `Lazy
  else
    let tasks = units_of spec in
    let jobs = Exec.default_jobs () in
    match Exec.Cost.estimate ~key:"store.evaluate" with
    | Some cost -> (
        match Exec.Cost.decide ~tasks ~cost ~jobs with
        | Exec.Cost.Sequential -> `Full
        | Exec.Cost.Parallel _ -> `Lazy)
    | None ->
        (* Cold cost model: stream only when there is enough work to
           plausibly amortise window dispatch — at least a few windows'
           worth of units. *)
        if tasks >= 4 * jobs then `Lazy else `Full

let evaluate_full ~budget spec =
  match Full_store.load ~budget spec with
  | Error (`Memory_overflow _) as e -> e
  | Ok loaded ->
      let elements = Full_store.element_count loaded in
      let safety_related = Full_store.evaluate loaded in
      Full_store.release ~budget loaded;
      Ok (elements, safety_related)

let evaluate ?(backend = `Auto) ?budget spec =
  let backend =
    match backend with
    | `Full -> `Full
    | `Lazy -> `Lazy
    | `Auto -> choose ?budget spec
  in
  match backend with
  | `Full ->
      let budget =
        match budget with
        | Some b -> b
        | None ->
            (* The full store's API is budgeted; "no budget" is an
               effectively-unbounded one. *)
            Budget.create ~max_bytes:max_int
      in
      evaluate_full ~budget spec
  | `Lazy -> Lazy_store.evaluate ?budget spec
