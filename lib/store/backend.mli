(** Store backend selection.

    The streaming {!Lazy_store} wins on big sets (bounded memory, pool
    parallelism) but loses on small ones: its windowed dispatch costs
    more than Set0–Set2's entire evaluation, so Table VI's small rows ran
    slower lazily than the {!Full_store}'s load-then-evaluate.  [`Auto]
    picks per call: sets the memory budget cannot hold must stream; for
    the rest, the {!Exec.Cost} estimate for the lazy store's
    ["store.evaluate"] workload key decides whether parallel windows
    would actually clear the dispatch overhead — if the scheduler would
    run the windows sequentially anyway, the full store's direct
    evaluation is strictly cheaper.

    Both backends count verdicts in generation order, so the result is
    identical whichever one runs. *)

type t = [ `Auto | `Full | `Lazy ]

val to_string : t -> string

val of_string : string -> t option

val choose : ?budget:Budget.t -> Synthetic.spec -> [ `Full | `Lazy ]
(** The [`Auto] policy, exposed for tests and the bench report. *)

val evaluate :
  ?backend:t ->
  ?budget:Budget.t ->
  Synthetic.spec ->
  (int * int, [ `Memory_overflow of int ]) result
(** [(elements_processed, safety_related_rows)] via the chosen backend
    (default [`Auto]).  [`Full] loads everything first (charging
    [budget], overflow possible), evaluates, releases; [`Lazy] streams
    windows. *)
