(* Lock-free accounting: the parallel store evaluators charge and release
   from several domains at once, so the counter is an [Atomic] updated by
   compare-and-set — a failed charge must leave the budget untouched, and
   concurrent charges must never over-commit past [max]. *)

type t = { max : int; used : int Atomic.t }

exception Overflow of { requested : int; available : int }

let create ~max_bytes =
  if max_bytes <= 0 then invalid_arg "Budget.create: non-positive budget";
  { max = max_bytes; used = Atomic.make 0 }

let jvm_default () = create ~max_bytes:(4 * 1024 * 1024 * 1024)

let bytes_per_element = 96

let rec charge_elements t n =
  let requested = n * bytes_per_element in
  let current = Atomic.get t.used in
  let available = t.max - current in
  if requested > available then raise (Overflow { requested; available });
  if not (Atomic.compare_and_set t.used current (current + requested)) then
    charge_elements t n

let rec release_elements t n =
  let current = Atomic.get t.used in
  let next = Int.max 0 (current - (n * bytes_per_element)) in
  if not (Atomic.compare_and_set t.used current next) then release_elements t n

let used_bytes t = Atomic.get t.used

let max_bytes t = t.max

let reset t = Atomic.set t.used 0
