type loaded = { units : Ssam.Architecture.component list; elements : int }

let load ~budget spec =
  let units = ref [] in
  match
    Synthetic.iter_units spec (fun c ->
        Budget.charge_elements budget (Ssam.Architecture.count_elements c);
        units := c :: !units)
  with
  | total -> Ok { units = List.rev !units; elements = total }
  | exception Budget.Overflow _ ->
      (* Loading died midway, as EMF did; report how much was resident. *)
      let used = Budget.used_bytes budget in
      Budget.release_elements budget (used / Budget.bytes_per_element);
      Error (`Memory_overflow used)

let element_count l = l.elements

let unit_count l = List.length l.units

let unit_verdicts unit =
  let table = Fmea.Path_fmea.analyse unit in
  List.length
    (List.filter
       (fun (r : Fmea.Table.row) -> r.Fmea.Table.safety_related)
       table.Fmea.Table.rows)

let evaluate l =
  (* Every unit is already resident, so the per-unit path FMEAs are
     independent pure computations: schedule them across the domain pool
     (the cost model keeps small sets sequential) and add the verdict
     counts in unit order (integer sums — identical to the sequential
     result for any schedule). *)
  List.fold_left ( + ) 0
    (Exec.scheduled_map ~key:"store.evaluate" unit_verdicts l.units)

let release ~budget l =
  List.iter
    (fun c ->
      Budget.release_elements budget (Ssam.Architecture.count_elements c))
    l.units
