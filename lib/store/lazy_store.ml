let analyse_unit unit =
  let table = Fmea.Path_fmea.analyse unit in
  List.length
    (List.filter
       (fun (r : Fmea.Table.row) -> r.Fmea.Table.safety_related)
       table.Fmea.Table.rows)

(* How many units may be resident at once: one per worker, but never more
   than the memory budget can hold ([Synthetic.unit_elements] bounds every
   generated unit, padding units included).  An unbudgeted run parallelises
   freely; a tight budget degrades gracefully to the sequential window of
   one, whose charge/analyse/release sequence — and overflow behaviour —
   is exactly the pre-parallel store's. *)
let window_units budget =
  let jobs = Exec.default_jobs () in
  match budget with
  | None -> jobs
  | Some b ->
      let fits =
        Budget.max_bytes b / (Budget.bytes_per_element * Synthetic.unit_elements)
      in
      Int.max 1 (Int.min jobs fits)

let evaluate ?budget spec =
  let window = window_units budget in
  let safety_related = ref 0 in
  let buffer = ref [] in
  let buffered = ref 0 in
  let flush () =
    let units = List.rev !buffer in
    buffer := [];
    buffered := 0;
    (* Units were charged on entry (in generation order); analyse the
       whole window across the domain pool, then release.  Integer
       verdict counts summed in unit order: bit-identical to the
       sequential store for every window size. *)
    let verdicts =
      Exec.scheduled_map ~key:"store.evaluate"
        (fun (u, _) -> analyse_unit u)
        units
    in
    safety_related := List.fold_left ( + ) !safety_related verdicts;
    List.iter
      (fun (_, n) ->
        match budget with
        | Some b -> Budget.release_elements b n
        | None -> ())
      units
  in
  match
    Synthetic.iter_units spec (fun unit ->
        let n = Ssam.Architecture.count_elements unit in
        (match budget with
        | Some b -> Budget.charge_elements b n
        | None -> ());
        buffer := (unit, n) :: !buffer;
        incr buffered;
        if !buffered >= window then flush ())
  with
  | total ->
      if !buffered > 0 then flush ();
      Ok (total, !safety_related)
  | exception Budget.Overflow _ ->
      let used = match budget with Some b -> Budget.used_bytes b | None -> 0 in
      Error (`Memory_overflow used)

let peak_resident_elements _spec =
  Synthetic.unit_elements * window_units None
