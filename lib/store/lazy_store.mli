(** The streaming/indexed store — the paper's future-work fix
    ("integrate a scalable model indexing (or model storage) framework
    into SAME", citing Hawk [23]).

    Units are generated, analysed in bounded windows and dropped, so peak
    memory is one unit per worker regardless of set size: Set5 becomes
    analysable.  The benches contrast this ablation against
    {!Full_store}. *)

val evaluate :
  ?budget:Budget.t -> Synthetic.spec -> (int * int, [ `Memory_overflow of int ]) result
(** [(elements_processed, safety_related_rows)].  Units are analysed in
    windows on the {!Exec} domain pool; the window is the pool's job
    count, capped so a full window always fits the [budget] (a tight
    budget degrades to the sequential one-unit window).  With a [budget],
    each unit is charged on entry and released after its window is
    analysed; overflow is only possible if a single unit exceeds the
    whole budget.  The verdict counts are summed in generation order, so
    the result is identical for every window size. *)

val peak_resident_elements : Synthetic.spec -> int
(** The store's memory high-water mark in elements (one unit per pool
    worker at the current {!Exec.default_jobs}), for the ablation
    report. *)
