#!/bin/sh
# CI entry point: build, test, and lint the example models.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== lint: example models =="
# The alias runs `same lint` over examples/models: clean models must
# exit 0, seeded-bad ones must be caught (non-zero).
dune build @lint

echo "== lint: clean model gate =="
SAME=_build/default/bin/same.exe
"$SAME" lint examples/models/psu.bd -q examples/models/spfm.eol

echo "== lint: seeded defects are caught =="
for args in \
  "examples/models/bad_psu.bd" \
  "examples/models/psu.bd -s examples/models/bad_sm.csv" \
  "-q examples/models/bad_query.eol"; do
  if "$SAME" lint $args >/dev/null 2>&1; then
    echo "FAIL: 'same lint $args' should have reported errors" >&2
    exit 1
  fi
done

echo "CI OK"
