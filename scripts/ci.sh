#!/bin/sh
# CI entry point: build, test, and lint the example models.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== lint: example models =="
# The alias runs `same lint` over examples/models: clean models must
# exit 0, seeded-bad ones must be caught (non-zero).
dune build @lint

echo "== lint: clean model gate =="
SAME=_build/default/bin/same.exe
"$SAME" lint examples/models/psu.bd -q examples/models/spfm.eol

echo "== lint: seeded defects are caught =="
for args in \
  "examples/models/bad_psu.bd" \
  "examples/models/psu.bd -s examples/models/bad_sm.csv" \
  "-q examples/models/bad_query.eol"; do
  if "$SAME" lint $args >/dev/null 2>&1; then
    echo "FAIL: 'same lint $args' should have reported errors" >&2
    exit 1
  fi
done

echo "== lint: SARIF report on the seeded-bad diagram =="
# Uploaded as a CI artifact; findings must survive the SARIF round trip.
"$SAME" lint examples/models/bad_psu.bd --format json > lint.sarif || true
python3 - <<'EOF'
import json, sys
with open("lint.sarif") as f:
    s = json.load(f)
if s.get("version") != "2.1.0":
    sys.exit("lint.sarif: not SARIF 2.1.0")
run = s["runs"][0]
if not run["results"]:
    sys.exit("lint.sarif: no findings on the seeded-bad diagram")
rules = run["tool"]["driver"]["rules"]
for r in rules:
    if "helpUri" not in r or "name" not in r:
        sys.exit(f"lint.sarif: rule {r.get('id')} missing helpUri/name")
print(f"lint.sarif OK: {len(run['results'])} findings, {len(rules)} rule descriptors")
EOF

echo "== diagnose: backward diagnosis agrees with forward injection =="
# Exit 0 asserts the forward/backward oracle itself.
"$SAME" diagnose examples/models/psu.bd --output CS1 -e DC1 > /dev/null

echo "== fta: BDD engine end to end on the example diagram =="
# Structural lowering -> BDD cut sets -> exact quantification, via the CLI.
"$SAME" fta --from examples/models/psu.bd --max-cardinality 2 --engine bdd \
  -o _build/fta_smoke.txt
grep -q "BDD-exact" _build/fta_smoke.txt

echo "== assess: Monte-Carlo CLI smoke (deterministic across SAME_JOBS) =="
# --check exits non-zero unless the estimate lands inside the 99% CI of
# the BDD-exact probability; run under both job settings and compare.
SAME_JOBS=1 "$SAME" assess examples/models/psu.bd --trials 1000000 \
  -o json --check > _build/assess_j1.json
SAME_JOBS=4 "$SAME" assess examples/models/psu.bd --trials 1000000 \
  -o json --check > _build/assess_j4.json
python3 - <<'EOF'
import json, sys
a = json.load(open("_build/assess_j1.json"))
b = json.load(open("_build/assess_j4.json"))
for k in ("top_probability", "ci_halfwidth", "trials", "exact"):
    if a[k] != b[k]:
        sys.exit(f"assess CLI: {k} differs across SAME_JOBS 1 vs 4 "
                 f"({a[k]!r} != {b[k]!r})")
print(f"assess CLI OK: P(top) {a['top_probability']:.3e} "
      f"+/- {a['ci_halfwidth']:.1e}, bit-identical across SAME_JOBS")
EOF

echo "== serve: warm-engine daemon smoke =="
SOCK=_build/ci-serve.sock
rm -f "$SOCK"
"$SAME" serve --socket "$SOCK" -j 4 &
SERVE_PID=$!
ok=0
for _ in $(seq 1 100); do
  if [ -S "$SOCK" ]; then ok=1; break; fi
  sleep 0.1
done
[ "$ok" -eq 1 ] || { echo "FAIL: daemon socket never appeared" >&2; exit 1; }
"$SAME" client ping --socket "$SOCK" > /dev/null

echo "== serve: warm answers equal the cold CLI =="
"$SAME" fmea examples/models/psu.bd > _build/serve_cold.txt
"$SAME" fmea examples/models/psu.bd --connect "$SOCK" > _build/serve_warm1.txt
"$SAME" fmea examples/models/psu.bd --connect "$SOCK" > _build/serve_warm2.txt
cmp _build/serve_cold.txt _build/serve_warm1.txt
cmp _build/serve_warm1.txt _build/serve_warm2.txt
"$SAME" lint examples/models/psu.bd > _build/serve_lint_cold.txt
"$SAME" lint examples/models/psu.bd --connect "$SOCK" > _build/serve_lint_warm.txt
cmp _build/serve_lint_cold.txt _build/serve_lint_warm.txt
"$SAME" fta --from examples/models/psu.bd --engine bdd > _build/serve_fta_cold.txt
"$SAME" fta --from examples/models/psu.bd --engine bdd \
  --connect "$SOCK" > _build/serve_fta_warm.txt
cmp _build/serve_fta_cold.txt _build/serve_fta_warm.txt

echo "== serve: N identical concurrent requests, one computation =="
before=$("$SAME" client stats --socket "$SOCK" \
  | python3 -c "import json,sys; print(json.load(sys.stdin)['computed'])")
cc_pids=""
for i in 1 2 3 4; do
  "$SAME" assess examples/models/psu.bd --trials 2000000 --seed 9 \
    --connect "$SOCK" > "_build/serve_cc_$i.txt" &
  cc_pids="$cc_pids $!"
done
for pid in $cc_pids; do wait "$pid"; done
after=$("$SAME" client stats --socket "$SOCK" \
  | python3 -c "import json,sys; print(json.load(sys.stdin)['computed'])")
solves=$((after - before))
[ "$solves" -eq 1 ] || {
  echo "FAIL: $solves computations for 4 identical concurrent requests" >&2
  exit 1
}
cmp _build/serve_cc_1.txt _build/serve_cc_2.txt
cmp _build/serve_cc_1.txt _build/serve_cc_3.txt
cmp _build/serve_cc_1.txt _build/serve_cc_4.txt

echo "== serve: responses bit-identical across daemon job counts =="
SOCK1=_build/ci-serve-j1.sock
rm -f "$SOCK1"
"$SAME" serve --socket "$SOCK1" -j 1 &
SERVE1_PID=$!
ok=0
for _ in $(seq 1 100); do
  if [ -S "$SOCK1" ]; then ok=1; break; fi
  sleep 0.1
done
[ "$ok" -eq 1 ] || { echo "FAIL: -j 1 daemon socket never appeared" >&2; exit 1; }
"$SAME" assess examples/models/psu.bd --trials 2000000 --seed 9 \
  --connect "$SOCK1" > _build/serve_j1.txt
cmp _build/serve_cc_1.txt _build/serve_j1.txt
"$SAME" client shutdown --socket "$SOCK1" > /dev/null
wait "$SERVE1_PID" || {
  echo "FAIL: -j 1 daemon exited non-zero after shutdown request" >&2; exit 1
}

echo "== serve: clean shutdown on SIGTERM =="
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
  echo "FAIL: daemon exited non-zero on SIGTERM" >&2; exit 1
}
[ ! -S "$SOCK" ] || { echo "FAIL: daemon left its socket behind" >&2; exit 1; }

echo "== bench --smoke: fta + assess + regression acceptance =="
SAME_JOBS=4 dune exec bench/main.exe -- --smoke > /dev/null
python3 - <<'EOF'
import json, sys
with open("BENCH_results.json") as f:
    r = json.load(f)
fta = r.get("fta")
if not fta:
    sys.exit("fta section is empty")
published = [e for e in fta if "speedup" in e]
beyond = [e for e in fta if e.get("beyond_cap")]
if not published or not beyond:
    sys.exit("fta section is missing a subject class")
for e in published:
    if not e["identical"]:
        sys.exit(f"{e['name']}: BDD cut sets != MOCUS cut sets")
    if e["speedup"] < 1.0:
        sys.exit(f"{e['name']}: BDD speedup {e['speedup']:.2f}x below 1.0x")
b = beyond[0]
if not b["mocus_raises"]:
    sys.exit(f"{b['name']}: MOCUS unexpectedly fit under the 100k cap")
if not b["exact"]:
    sys.exit(f"{b['name']}: beyond-cap BDD solve not exact")
print("fta OK: " + ", ".join(
    f"{e['name']} {e['speedup']:.0f}x" for e in published) +
    f"; {b['cut_sets']:.0f} cut sets solved past the cap")

assess = r.get("assess")
if not assess:
    sys.exit("assess section is empty")
for e in assess:
    if e["trials_per_sec"] < 1e6:
        sys.exit(f"{e['name']}: {e['trials_per_sec']:.0f} trials/s "
                 f"below the 1e6 floor")
    if not e["within_ci"]:
        sys.exit(f"{e['name']}: estimate {e['estimate']:.6e} outside the "
                 f"99% CI of exact {e['exact']:.6e}")
print("assess OK: " + ", ".join(
    f"{e['name']} {e['trials_per_sec'] / 1e6:.0f}M/s" for e in assess))

inc = r.get("incremental")
if not inc:
    sys.exit("incremental section is empty")
for e in inc:
    # A warm engine reuses fingerprints, conversions and cached rows from
    # the previous revision; it must never lose to a cold run.
    if e["warm_s"] > e["cold_s"]:
        sys.exit(f"{e['name']}: warm {e['warm_s'] * 1e3:.2f} ms slower "
                 f"than cold {e['cold_s'] * 1e3:.2f} ms")
    if not e["identical"]:
        sys.exit(f"{e['name']}: warm table != cold table")
print("incremental OK: " + ", ".join(
    f"{e['name']} warm {e['warm_s'] * 1e3:.2f} ms vs cold "
    f"{e['cold_s'] * 1e3:.2f} ms" for e in inc))

batch = r.get("batch_fmea")
if not batch:
    sys.exit("batch_fmea section is empty")
for e in batch:
    # Fleet-mode sharing (golden dedup + duplicate-variant dedup) must
    # beat independent cold runs on wall clock, not only on solve counts.
    if e["speedup"] < 1.0:
        sys.exit(f"{e['name']}: fleet speedup {e['speedup']:.2f}x "
                 f"below 1.0x")
print("batch_fmea OK: " + ", ".join(
    f"{e['name']} {e['speedup']:.2f}x" for e in batch))

serve = r.get("serve")
if not serve:
    sys.exit("serve section is empty")
for e in serve:
    # The warm daemon must clear the published 10x one-edit latency win
    # over a cold CLI process, and N identical concurrent requests must
    # coalesce onto exactly one solve with bit-identical replies.
    if e["warm_p50_s"] * 10.0 > e["cold_cli_s"]:
        sys.exit(f"{e['name']}: warm p50 {e['warm_p50_s'] * 1e3:.2f} ms "
                 f"not 10x under cold CLI {e['cold_cli_s'] * 1e3:.2f} ms")
    if e["coalesced_solves"] != 1:
        sys.exit(f"{e['name']}: {e['coalesced_solves']:.0f} solves for "
                 f"{e['coalesced_requests']:.0f} identical requests")
    if not e["identical"]:
        sys.exit(f"{e['name']}: coalesced replies differ")
print("serve OK: " + ", ".join(
    f"{e['name']} {e['speedup']:.0f}x warm, "
    f"{e['coalesced_requests']:.0f} requests -> 1 solve" for e in serve))
EOF

echo "CI OK"
