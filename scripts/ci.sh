#!/bin/sh
# CI entry point: build, test, and lint the example models.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== lint: example models =="
# The alias runs `same lint` over examples/models: clean models must
# exit 0, seeded-bad ones must be caught (non-zero).
dune build @lint

echo "== lint: clean model gate =="
SAME=_build/default/bin/same.exe
"$SAME" lint examples/models/psu.bd -q examples/models/spfm.eol

echo "== lint: seeded defects are caught =="
for args in \
  "examples/models/bad_psu.bd" \
  "examples/models/psu.bd -s examples/models/bad_sm.csv" \
  "-q examples/models/bad_query.eol"; do
  if "$SAME" lint $args >/dev/null 2>&1; then
    echo "FAIL: 'same lint $args' should have reported errors" >&2
    exit 1
  fi
done

echo "== lint: SARIF report on the seeded-bad diagram =="
# Uploaded as a CI artifact; findings must survive the SARIF round trip.
"$SAME" lint examples/models/bad_psu.bd --format json > lint.sarif || true
python3 - <<'EOF'
import json, sys
with open("lint.sarif") as f:
    s = json.load(f)
if s.get("version") != "2.1.0":
    sys.exit("lint.sarif: not SARIF 2.1.0")
run = s["runs"][0]
if not run["results"]:
    sys.exit("lint.sarif: no findings on the seeded-bad diagram")
rules = run["tool"]["driver"]["rules"]
for r in rules:
    if "helpUri" not in r or "name" not in r:
        sys.exit(f"lint.sarif: rule {r.get('id')} missing helpUri/name")
print(f"lint.sarif OK: {len(run['results'])} findings, {len(rules)} rule descriptors")
EOF

echo "== diagnose: backward diagnosis agrees with forward injection =="
# Exit 0 asserts the forward/backward oracle itself.
"$SAME" diagnose examples/models/psu.bd --output CS1 -e DC1 > /dev/null

echo "== fta: BDD engine end to end on the example diagram =="
# Structural lowering -> BDD cut sets -> exact quantification, via the CLI.
"$SAME" fta --from examples/models/psu.bd --max-cardinality 2 --engine bdd \
  -o _build/fta_smoke.txt
grep -q "BDD-exact" _build/fta_smoke.txt

echo "== bench --smoke: fta acceptance (BDD >= MOCUS, beyond-cap exact) =="
dune exec bench/main.exe -- --smoke > /dev/null
python3 - <<'EOF'
import json, sys
with open("BENCH_results.json") as f:
    r = json.load(f)
fta = r.get("fta")
if not fta:
    sys.exit("fta section is empty")
published = [e for e in fta if "speedup" in e]
beyond = [e for e in fta if e.get("beyond_cap")]
if not published or not beyond:
    sys.exit("fta section is missing a subject class")
for e in published:
    if not e["identical"]:
        sys.exit(f"{e['name']}: BDD cut sets != MOCUS cut sets")
    if e["speedup"] < 1.0:
        sys.exit(f"{e['name']}: BDD speedup {e['speedup']:.2f}x below 1.0x")
b = beyond[0]
if not b["mocus_raises"]:
    sys.exit(f"{b['name']}: MOCUS unexpectedly fit under the 100k cap")
if not b["exact"]:
    sys.exit(f"{b['name']}: beyond-cap BDD solve not exact")
print("fta OK: " + ", ".join(
    f"{e['name']} {e['speedup']:.0f}x" for e in published) +
    f"; {b['cut_sets']:.0f} cut sets solved past the cap")
EOF

echo "CI OK"
