(* Tests for the analyst process model: the deterministic RNG, the cost
   model calibration, and the RQ1/RQ3 experiments. *)

open Analyst

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 10 (fun _ -> Rng.float a) in
  let ys = List.init 10 (fun _ -> Rng.float b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Rng.create 43 in
  let zs = List.init 10 (fun _ -> Rng.float c) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_ranges () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.range rng ~min:2 ~max:6 in
    if v < 2 || v > 6 then Alcotest.fail "range out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done;
  Alcotest.check_raises "bad range" (Invalid_argument "Rng.range: min > max")
    (fun () -> ignore (Rng.range rng ~min:3 ~max:2))

let test_rng_distributions () =
  let rng = Rng.create 99 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.gaussian rng ~mean:10.0 ~stddev:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "gaussian mean ~10, got %g" mean) true
    (Float.abs (mean -. 10.0) < 0.1);
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "bernoulli ~0.25, got %g" rate) true
    (Float.abs (rate -. 0.25) < 0.02)

let test_rng_split () =
  (* Splitting is pure: the parent's sequence is unchanged by it. *)
  let a = Rng.create 42 and b = Rng.create 42 in
  let _ = Rng.split a 0 and _ = Rng.split a 7 in
  Alcotest.(check bool) "split leaves parent untouched" true
    (List.init 10 (fun _ -> Rng.next_int64 a)
    = List.init 10 (fun _ -> Rng.next_int64 b));
  (* Same index twice gives the same stream; distinct indices differ. *)
  let p = Rng.create 5 in
  Alcotest.(check bool) "same index, same stream" true
    (Rng.next_int64 (Rng.split p 3) = Rng.next_int64 (Rng.split p 3));
  Alcotest.(check bool) "distinct indices, distinct streams" true
    (Rng.next_int64 (Rng.split p 3) <> Rng.next_int64 (Rng.split p 4));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split: negative stream index") (fun () ->
      ignore (Rng.split p (-1)));
  (* Statistical smoke: the first 1k draws of 64 sibling streams (and of
     the parent) never collide — 65k SplitMix64 outputs are birthday-safe
     by ~2^25, so any collision means the split is broken. *)
  let seen = Hashtbl.create (65 * 1_000) in
  let collisions = ref 0 in
  let drain rng =
    for _ = 1 to 1_000 do
      let v = Rng.next_int64 rng in
      if Hashtbl.mem seen v then incr collisions else Hashtbl.add seen v ()
    done
  in
  let master = Rng.create 2024 in
  for i = 0 to 63 do
    drain (Rng.split master i)
  done;
  drain master;
  Alcotest.(check int) "no collision across 65 streams x 1k draws" 0
    !collisions

let test_rng_exponential () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~rate:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "exponential mean ~1/4, got %g" mean)
    true
    (Float.abs (mean -. 0.25) < 0.01);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.0))

(* ---------- Cost model / durations ---------- *)

let profile_a =
  {
    Process.system_name = "A";
    element_count = 102;
    analysable_components = 34;
    failure_mode_count = 67;
    safety_related_count = 7;
  }

let profile_b =
  {
    Process.system_name = "B";
    element_count = 230;
    analysable_components = 70;
    failure_mode_count = 139;
    safety_related_count = 15;
  }

let test_duration_calibration () =
  (* Manual System A with 5 iterations lands near the paper's 505 min. *)
  let rng = Rng.create 1 in
  let s =
    Process.duration ~rng ~mode:Cost_model.Manual
      ~profile:Cost_model.participant_a ~iterations:5 profile_a
  in
  Alcotest.(check bool)
    (Printf.sprintf "manual A in [400, 620], got %g" s.Process.minutes)
    true
    (s.Process.minutes > 400.0 && s.Process.minutes < 620.0);
  let rng = Rng.create 1 in
  let a =
    Process.duration ~rng ~mode:Cost_model.Assisted
      ~profile:Cost_model.participant_b ~iterations:2 profile_a
  in
  Alcotest.(check bool)
    (Printf.sprintf "assisted A in [40, 90], got %g" a.Process.minutes)
    true
    (a.Process.minutes > 40.0 && a.Process.minutes < 90.0)

let test_duration_breakdown () =
  let rng = Rng.create 2 in
  let s =
    Process.duration ~rng ~mode:Cost_model.Manual
      ~profile:Cost_model.participant_a ~iterations:3 profile_a
  in
  (* Breakdown sums to the total and is sorted descending. *)
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 s.Process.breakdown in
  Alcotest.(check bool) "breakdown sums to total" true
    (Float.abs (total -. s.Process.minutes) < 1e-6);
  let values = List.map snd s.Process.breakdown in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Float.compare b a) values = values);
  (* Manual mode has no tool activities. *)
  Alcotest.(check bool) "no tool rows in manual" true
    (not (List.mem_assoc "automated runs" s.Process.breakdown))

let test_iterations_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let m = Process.draw_iterations ~rng ~mode:Cost_model.Manual in
    let a = Process.draw_iterations ~rng ~mode:Cost_model.Assisted in
    if m < 2 || m > 6 || a < 2 || a > 6 then Alcotest.fail "iterations out of 2..6"
  done

(* ---------- Efficiency study (RQ3 / Table V) ---------- *)

let test_efficiency_shape () =
  let rows =
    Experiment.efficiency_study ~seed:2022 ~systems:(profile_a, profile_b)
  in
  Alcotest.(check int) "eight rows (two settings)" 8 (List.length rows);
  (* Every manual run is slower than every assisted run of the same system. *)
  List.iter
    (fun system ->
      let of_mode m =
        List.filter
          (fun r -> r.Experiment.mode = m && r.Experiment.system = system)
          rows
      in
      let slowest_assisted =
        List.fold_left
          (fun acc r -> Float.max acc r.Experiment.time_minutes)
          0.0
          (of_mode Cost_model.Assisted)
      in
      List.iter
        (fun r ->
          Alcotest.(check bool) "manual slower than assisted" true
            (r.Experiment.time_minutes > slowest_assisted))
        (of_mode Cost_model.Manual))
    [ "A"; "B" ];
  (* The paper's headline: "approximately a tenfold increase in efficiency". *)
  let speedup = Experiment.speedup rows in
  Alcotest.(check bool) (Printf.sprintf "speedup ~10x, got %.1f" speedup) true
    (speedup > 6.0 && speedup < 14.0)

let test_efficiency_deterministic () =
  let a = Experiment.efficiency_study ~seed:5 ~systems:(profile_a, profile_b) in
  let b = Experiment.efficiency_study ~seed:5 ~systems:(profile_a, profile_b) in
  Alcotest.(check bool) "same seed reproduces" true (a = b)

(* ---------- Correctness study (RQ1) ---------- *)

let automated_table = Decisive.Systems.automated_fmea Decisive.Systems.system_a

let test_correctness_components_agree () =
  (* Across many seeds, the manual analyst never changes the set of
     safety-related components — the paper's key observation. *)
  for seed = 1 to 30 do
    let r =
      Experiment.correctness_study ~seed ~name:"A" ~element_count:102
        automated_table
    in
    Alcotest.(check bool)
      (Printf.sprintf "components agree (seed %d)" seed)
      true r.Experiment.components_agree
  done

let test_correctness_difference_band () =
  (* Row-level differences stay small (the paper: 1.5% and 2.67%). *)
  let total = ref 0.0 in
  for seed = 1 to 30 do
    let r =
      Experiment.correctness_study ~seed ~name:"A" ~element_count:102
        automated_table
    in
    total := !total +. r.Experiment.difference_pct
  done;
  let mean = !total /. 30.0 in
  Alcotest.(check bool) (Printf.sprintf "mean diff in [0.3, 5], got %g" mean)
    true
    (mean > 0.3 && mean < 5.0)

let test_manual_classification_conservative_only () =
  let rng = Rng.create 11 in
  let manual =
    Process.manual_classification ~rng ~profile:Cost_model.participant_a
      automated_table
  in
  (* No safety-related row was downgraded. *)
  List.iter2
    (fun (auto : Fmea.Table.row) (man : Fmea.Table.row) ->
      if auto.Fmea.Table.safety_related then
        Alcotest.(check bool) "no downgrade" true man.Fmea.Table.safety_related)
    automated_table.Fmea.Table.rows manual.Fmea.Table.rows

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "rng split streams" `Quick test_rng_split;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential;
    Alcotest.test_case "rng distributions" `Quick test_rng_distributions;
    Alcotest.test_case "duration calibration" `Quick test_duration_calibration;
    Alcotest.test_case "duration breakdown" `Quick test_duration_breakdown;
    Alcotest.test_case "iterations bounds" `Quick test_iterations_bounds;
    Alcotest.test_case "efficiency shape" `Quick test_efficiency_shape;
    Alcotest.test_case "efficiency deterministic" `Quick test_efficiency_deterministic;
    Alcotest.test_case "correctness: components agree" `Quick
      test_correctness_components_agree;
    Alcotest.test_case "correctness: difference band" `Quick
      test_correctness_difference_band;
    Alcotest.test_case "manual classification conservative" `Quick
      test_manual_classification_conservative_only;
  ]
