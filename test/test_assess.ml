(* Tests for the bit-parallel Monte-Carlo assessment engine: tape
   compilation and evaluation against naive per-lane semantics, CI
   coverage against the BDD-exact oracle, determinism across job
   counts, and the rare-event value of importance sampling. *)

open Assess

let b ?rate id = Fta.Fault_tree.basic ?rate_fit:rate id

(* ---------- program: compile / eval ---------- *)

(* Naive single-trial evaluation: the semantics eval must match lane by
   lane. *)
let rec truth assignment tree =
  match tree with
  | Fta.Fault_tree.Basic e -> List.assoc e.Fta.Fault_tree.event_id assignment
  | Fta.Fault_tree.And (_, cs) -> List.for_all (truth assignment) cs
  | Fta.Fault_tree.Or (_, cs) -> List.exists (truth assignment) cs
  | Fta.Fault_tree.Koon (_, k, cs) ->
      List.length (List.filter (truth assignment) cs) >= k

let eval_lanes tree vars =
  let prog = Program.compile tree in
  let scratch = Program.scratch prog in
  Program.eval prog scratch ~vars

let test_eval_basic_gates () =
  let t =
    Fta.Fault_tree.or_ "top" [ b "a"; Fta.Fault_tree.and_ "g" [ b "b"; b "c" ] ]
  in
  (* lanes: a fails in lane 0, b&c in lane 1, only b in lane 2 *)
  let vars = [| 0b001; 0b110; 0b010 |] in
  Alcotest.(check int) "a or (b and c)" 0b011 (eval_lanes t vars land 0b111)

let test_eval_koon_exhaustive () =
  (* 2oo3 and 3oo5 checked on every lane of every input combination by
     packing the 2^n combinations into lanes. *)
  List.iter
    (fun (k, n) ->
      let events = List.init n (fun i -> b (Printf.sprintf "e%d" i)) in
      let t = Fta.Fault_tree.koon "v" ~k events in
      let combos = 1 lsl n in
      assert (combos <= Program.word_bits);
      (* lane l encodes combination l: event i fails iff bit i of l *)
      let vars =
        Array.init n (fun i ->
            let w = ref 0 in
            for l = 0 to combos - 1 do
              if (l lsr i) land 1 = 1 then w := !w lor (1 lsl l)
            done;
            !w)
      in
      let got = eval_lanes t vars in
      for l = 0 to combos - 1 do
        let assignment =
          List.init n (fun i ->
              (Printf.sprintf "e%d" i, (l lsr i) land 1 = 1))
        in
        let expected = truth assignment t in
        Alcotest.(check bool)
          (Printf.sprintf "%doo%d lane %d" k n l)
          expected
          ((got lsr l) land 1 = 1)
      done)
    [ (2, 3); (3, 5); (1, 4); (4, 4) ]

let test_popcount () =
  Alcotest.(check int) "zero" 0 (Program.popcount 0);
  Alcotest.(check int) "one" 1 (Program.popcount 1);
  Alcotest.(check int) "all lanes" Program.word_bits
    (Program.popcount Program.all_lanes);
  Alcotest.(check int) "alternating" 29 (Program.popcount 0x2AAAAAAAAAAAAAA);
  Alcotest.(check int) "high lane only" 1
    (Program.popcount (1 lsl (Program.word_bits - 1)))

let test_shared_subtree_compiles_once () =
  let shared = Fta.Fault_tree.and_ "g" [ b "a"; b "b" ] in
  let t = Fta.Fault_tree.or_ "top" [ shared; shared ] in
  (* 2 loads + 1 AND + 1 OR: the physically shared gate is not recompiled. *)
  Alcotest.(check int) "tape length" 4 (Program.n_instrs (Program.compile t))

(* Random tree whose events carry rates — reuse the shape of the fta
   tests' generator, bounded to 12 distinct events. *)
let tree_gen depth next_id =
  let leaf =
    QCheck.Gen.map
      (fun i ->
        let i = i mod next_id in
        b ~rate:(10.0 *. float_of_int (i + 1)) (Printf.sprintf "e%d" i))
      (QCheck.Gen.int_range 0 (next_id - 1))
  in
  let rec go depth =
    QCheck.Gen.(
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map
                (fun cs -> Fta.Fault_tree.and_ "g" cs)
                (list_size (int_range 1 3) (go (depth - 1))) );
            ( 1,
              map
                (fun cs -> Fta.Fault_tree.or_ "g" cs)
                (list_size (int_range 1 3) (go (depth - 1))) );
            ( 1,
              map2
                (fun cs k ->
                  Fta.Fault_tree.koon "v"
                    ~k:(1 + (k mod List.length cs))
                    cs)
                (list_size (int_range 2 4) (go (depth - 1)))
                (int_range 0 3) );
          ])
  in
  go depth

let prop_eval_matches_naive =
  QCheck.Test.make ~name:"tape eval = naive per-lane evaluation" ~count:120
    QCheck.(
      make
        Gen.(
          pair (tree_gen 3 12) (array_size (return 12) (int_range min_int max_int))))
    (fun (t, words) ->
      let events = Fta.Fault_tree.basic_events t in
      let vars =
        Array.init (List.length events) (fun i -> words.(i mod Array.length words))
      in
      let got = eval_lanes t vars in
      List.for_all
        (fun l ->
          let assignment =
            List.mapi
              (fun i (e : Fta.Fault_tree.event) ->
                (e.Fta.Fault_tree.event_id, (vars.(i) lsr l) land 1 = 1))
              events
          in
          truth assignment t = ((got lsr l) land 1 = 1))
        (List.init Program.word_bits Fun.id))

(* ---------- mc: CI coverage vs the BDD oracle ---------- *)

(* A long mission makes the generator's 10..120 FIT rates land on
   well-conditioned probabilities (0.1 .. 0.7), where 100k trials
   discriminate sharply. *)
let mission_hours = 1.0e7

let exact_of tree =
  Fta.Quant.top_probability_exact tree
    (Fta.Quant.event_probabilities ~mission_hours tree)

let prop_estimate_within_ci_of_exact =
  QCheck.Test.make
    ~name:"MC estimate within 99% CI of BDD-exact (jobs 1 = jobs 4)"
    ~count:60
    (QCheck.make (tree_gen 3 12))
    (fun t ->
      let config =
        {
          Mc.default with
          Mc.mission_hours;
          trials = Some 100_000;
          exact = Mc.Skip;
        }
      in
      let r1 = Mc.run ~jobs:1 config t in
      let r4 = Mc.run ~jobs:4 config t in
      let exact = exact_of t in
      (* Bit-identical across job counts... *)
      Float.equal r1.Mc.top_probability r4.Mc.top_probability
      && Float.equal r1.Mc.halfwidth r4.Mc.halfwidth
      (* ...and inside a widened interval (6 sigma rather than the
         reported 2.58 sigma, so the property is near-deterministic
         under QCheck's random seeds). *)
      && Float.abs (r1.Mc.top_probability -. exact)
         <= Float.max (6.0 /. 2.576 *. r1.Mc.halfwidth) 1e-9)

let test_fixed_seed_ci_covers_exact () =
  (* The reported interval itself (no widening) at a fixed seed: a 2oo3
     vote over unequal channels plus a common-cause OR. *)
  let t =
    Fta.Fault_tree.or_ "top"
      [
        Fta.Fault_tree.koon "vote" ~k:2
          [ b ~rate:40.0 "ch1"; b ~rate:55.0 "ch2"; b ~rate:70.0 "ch3" ];
        b ~rate:5.0 "cc";
      ]
  in
  let config =
    { Mc.default with Mc.mission_hours; trials = Some 504_000 }
  in
  let r = Mc.run config t in
  let exact = exact_of t in
  Alcotest.(check (option (float 1e-12)))
    "exact cross-check recorded" (Some exact) r.Mc.exact;
  Alcotest.(check bool)
    (Printf.sprintf "exact %.6g inside %.6g +/- %.3g" exact
       r.Mc.top_probability r.Mc.halfwidth)
    true
    (Float.abs (r.Mc.top_probability -. exact) <= r.Mc.halfwidth);
  Alcotest.(check bool) "trials rounded to replicates" true
    (r.Mc.trials >= 504_000 && r.Mc.trials mod Mc.trials_per_replicate = 0)

let test_determinism_across_jobs () =
  let t =
    Fta.Fault_tree.and_ "top"
      [ b ~rate:100.0 "a"; Fta.Fault_tree.or_ "g" [ b ~rate:60.0 "b"; b ~rate:80.0 "c" ] ]
  in
  List.iter
    (fun sampling ->
      let config =
        {
          Mc.default with
          Mc.mission_hours;
          sampling;
          trials = Some (4 * Mc.trials_per_replicate);
          exact = Mc.Skip;
        }
      in
      let r1 = Mc.run ~jobs:1 config t in
      let r4 = Mc.run ~jobs:4 config t in
      let label f = Mc.sampling_to_string sampling ^ ": " ^ f in
      Alcotest.(check (float 0.0))
        (label "estimate bit-identical")
        r1.Mc.top_probability r4.Mc.top_probability;
      Alcotest.(check (float 0.0))
        (label "halfwidth bit-identical")
        r1.Mc.halfwidth r4.Mc.halfwidth;
      Alcotest.(check (list (pair string (float 0.0))))
        (label "importances bit-identical")
        (List.map (fun e -> (e.Mc.event_id, e.Mc.importance)) r1.Mc.events)
        (List.map (fun e -> (e.Mc.event_id, e.Mc.importance)) r4.Mc.events))
    [ Mc.Direct; Mc.Importance; Mc.Stratified ]

(* ---------- mc: rare events ---------- *)

let rare_tree =
  (* AND of three 100 FIT events over a 10,000 h mission: each fails
     with p ~ 1e-3, the top event with ~1e-9.  Direct sampling at this
     budget essentially never sees it. *)
  Fta.Fault_tree.and_ "top"
    [ b ~rate:100.0 "a"; b ~rate:100.0 "b"; b ~rate:100.0 "c" ]

let test_importance_rare_event () =
  let budget = 63 * Mc.trials_per_replicate (* ~508k trials *) in
  let exact =
    Fta.Quant.top_probability_exact rare_tree
      (Fta.Quant.event_probabilities ~mission_hours:10_000.0 rare_tree)
  in
  let run sampling =
    Mc.run
      {
        Mc.default with
        Mc.sampling;
        trials = Some budget;
        exact = Mc.Skip;
      }
      rare_tree
  in
  let imp = run Mc.Importance in
  let direct = run Mc.Direct in
  Alcotest.(check bool)
    (Printf.sprintf "importance converges: %.3g +/- %.3g vs exact %.3g"
       imp.Mc.top_probability imp.Mc.halfwidth exact)
    true
    (Float.abs (imp.Mc.top_probability -. exact) <= 3.0 *. imp.Mc.halfwidth
    && imp.Mc.halfwidth <= 0.5 *. exact);
  (* The direct interval at the same budget is orders of magnitude wider
     than the importance one — the 100x-trials gap the tilting closes. *)
  Alcotest.(check bool)
    (Printf.sprintf "direct interval %.3g >= 100x importance %.3g"
       direct.Mc.halfwidth imp.Mc.halfwidth)
    true
    (direct.Mc.halfwidth >= 100.0 *. imp.Mc.halfwidth)

let test_stratified_matches_exact () =
  let t =
    Fta.Fault_tree.or_ "top"
      [
        Fta.Fault_tree.and_ "g" [ b ~rate:120.0 "a"; b ~rate:90.0 "b" ];
        b ~rate:30.0 "c";
      ]
  in
  let config =
    {
      Mc.default with
      Mc.mission_hours;
      sampling = Mc.Stratified;
      trials = Some 500_000;
      exact = Mc.Skip;
    }
  in
  let r = Mc.run config t in
  let exact = exact_of t in
  Alcotest.(check bool)
    (Printf.sprintf "stratified %.6g +/- %.3g vs exact %.6g"
       r.Mc.top_probability r.Mc.halfwidth exact)
    true
    (Float.abs (r.Mc.top_probability -. exact) <= 3.0 *. r.Mc.halfwidth)

(* ---------- mc: stopping rule and reports ---------- *)

let test_rel_precision_stopping () =
  let t =
    Fta.Fault_tree.or_ "top" [ b ~rate:50.0 "a"; b ~rate:80.0 "b" ]
  in
  let r =
    Mc.run
      {
        Mc.default with
        Mc.mission_hours;
        rel_precision = Some 0.05;
        exact = Mc.Skip;
      }
      t
  in
  Alcotest.(check bool) "converged to the requested precision" true
    (r.Mc.halfwidth <= 0.05 *. r.Mc.top_probability);
  Alcotest.(check bool) "did not blow the trial cap" true
    (r.Mc.trials <= Mc.default.Mc.max_trials)

let test_report_contents () =
  let t =
    Fta.Fault_tree.or_ "top" [ b ~rate:100.0 "hot"; b ~rate:1.0 "cold" ]
  in
  let r =
    Mc.run { Mc.default with Mc.mission_hours; trials = Some 200_000 } t
  in
  (* Importance ranking: the dominant event first. *)
  (match r.Mc.events with
  | first :: _ ->
      Alcotest.(check string) "dominant event ranked first" "hot"
        first.Mc.event_id
  | [] -> Alcotest.fail "no event reports");
  Alcotest.(check bool) "exact delta computed under Auto" true
    (match r.Mc.exact_delta with Some d -> d >= 0.0 | None -> false);
  Alcotest.(check bool) "throughput measured" true (r.Mc.trials_per_sec > 0.0);
  Alcotest.(check bool) "tape length reported" true (r.Mc.instrs >= 3)

let test_unrated_tree_degenerates () =
  (* No rates anywhere: every sampler returns exactly zero. *)
  let t = Fta.Fault_tree.or_ "top" [ b "a"; b "b" ] in
  List.iter
    (fun sampling ->
      let r =
        Mc.run
          {
            Mc.default with
            Mc.sampling;
            trials = Some Mc.trials_per_replicate;
            exact = Mc.Skip;
          }
          t
      in
      Alcotest.(check (float 0.0))
        (Mc.sampling_to_string sampling ^ ": zero estimate")
        0.0 r.Mc.top_probability)
    [ Mc.Direct; Mc.Importance; Mc.Stratified ]

let suite =
  [
    Alcotest.test_case "eval basic gates" `Quick test_eval_basic_gates;
    Alcotest.test_case "eval koon exhaustive" `Quick test_eval_koon_exhaustive;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "shared subtree compiles once" `Quick
      test_shared_subtree_compiles_once;
    QCheck_alcotest.to_alcotest prop_eval_matches_naive;
    QCheck_alcotest.to_alcotest prop_estimate_within_ci_of_exact;
    Alcotest.test_case "fixed seed: CI covers exact" `Quick
      test_fixed_seed_ci_covers_exact;
    Alcotest.test_case "determinism across jobs" `Quick
      test_determinism_across_jobs;
    Alcotest.test_case "importance sampling on a rare event" `Quick
      test_importance_rare_event;
    Alcotest.test_case "stratified matches exact" `Quick
      test_stratified_matches_exact;
    Alcotest.test_case "rel-precision stopping rule" `Quick
      test_rel_precision_stopping;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "unrated tree degenerates" `Quick
      test_unrated_tree_degenerates;
  ]
