(* Tests for the circuit simulator: elements, netlists, MNA DC analysis,
   Newton convergence, fault injection and the block catalogue. *)

open Circuit

let solve_exn nl =
  match Dc.analyse nl with
  | Ok s -> s
  | Error e -> Alcotest.fail (Format.asprintf "analysis failed: %a" Dc.pp_error e)

let check_float ?(eps = 1e-6) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected actual)
    true
    (Float.abs (expected -. actual) <= eps)

(* ---------- Element / Netlist ---------- *)

let test_element_validation () =
  Alcotest.check_raises "same node"
    (Invalid_argument "Element.make x: terminals on the same node") (fun () ->
      ignore (Element.make ~id:"x" ~kind:(Element.Resistor 1.0) "n1" "n1"));
  Alcotest.check_raises "bad resistance"
    (Invalid_argument "Element.make r: non-positive resistance") (fun () ->
      ignore (Element.make ~id:"r" ~kind:(Element.Resistor 0.0) "n1" "n2"))

let test_netlist_basics () =
  let nl =
    Netlist.of_elements "t"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 5.0) "n1" "0";
        Element.make ~id:"R" ~kind:(Element.Resistor 10.0) "n1" "GND";
      ]
  in
  Alcotest.(check int) "count" 2 (Netlist.element_count nl);
  Alcotest.(check (list string)) "nodes normalised (0 and GND are ground)"
    [ "n1" ] (Netlist.nodes nl);
  Alcotest.(check bool) "find" true (Option.is_some (Netlist.find nl "R"));
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Netlist.add: duplicate element id R") (fun () ->
      ignore (Netlist.add nl (Element.make ~id:"R" ~kind:(Element.Resistor 1.0) "a" "b")))

let test_netlist_replace_remove () =
  let nl =
    Netlist.of_elements "t"
      [ Element.make ~id:"R" ~kind:(Element.Resistor 10.0) "n1" "gnd" ]
  in
  let nl2 = Netlist.replace nl "R" (Element.Resistor 20.0) in
  (match Netlist.find nl2 "R" with
  | Some { Element.kind = Element.Resistor r; _ } -> check_float "replaced" 20.0 r
  | _ -> Alcotest.fail "missing");
  let nl3 = Netlist.remove nl2 "R" in
  Alcotest.(check int) "removed" 0 (Netlist.element_count nl3);
  Alcotest.check_raises "remove missing" Not_found (fun () ->
      ignore (Netlist.remove nl3 "R"))

let test_netlist_validate () =
  let nl =
    Netlist.of_elements "t"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 5.0) "n1" "gnd";
        (* n2-n3 florating pair: a capacitor does not conduct at DC *)
        Element.make ~id:"C" ~kind:(Element.Capacitor 1e-6) "n2" "n3";
      ]
  in
  Alcotest.(check int) "floating nodes reported" 2
    (List.length (Netlist.validate nl))

(* ---------- DC analysis on textbook circuits ---------- *)

let test_voltage_divider () =
  let nl =
    Netlist.of_elements "divider"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 10.0) "in" "gnd";
        Element.make ~id:"R1" ~kind:(Element.Resistor 1000.0) "in" "mid";
        Element.make ~id:"R2" ~kind:(Element.Resistor 1000.0) "mid" "gnd";
      ]
  in
  let s = solve_exn nl in
  (* gmin (1e-9 S per node) perturbs voltages at the 1e-5 level. *)
  check_float ~eps:1e-4 "midpoint" 5.0 (Dc.node_voltage s "mid");
  check_float ~eps:1e-6 "source current" (-0.005) (Dc.element_current s "V1")

let test_current_source () =
  let nl =
    Netlist.of_elements "isrc"
      [
        Element.make ~id:"I1" ~kind:(Element.Isource 0.001) "gnd" "n1";
        Element.make ~id:"R1" ~kind:(Element.Resistor 1000.0) "n1" "gnd";
      ]
  in
  let s = solve_exn nl in
  check_float "1mA into 1k" 1.0 (Dc.node_voltage s "n1")

let test_inductor_is_dc_short () =
  let nl =
    Netlist.of_elements "lshort"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 3.0) "a" "gnd";
        Element.make ~id:"L1" ~kind:(Element.Inductor 1e-3) "a" "b";
        Element.make ~id:"R1" ~kind:(Element.Resistor 100.0) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  check_float "no drop across L" 3.0 (Dc.node_voltage s "b");
  check_float "current through L" 0.03 (Dc.element_current s "L1")

let test_capacitor_is_dc_open () =
  let nl =
    Netlist.of_elements "copen"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 3.0) "a" "gnd";
        Element.make ~id:"R1" ~kind:(Element.Resistor 100.0) "a" "b";
        Element.make ~id:"C1" ~kind:(Element.Capacitor 1e-6) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  (* No DC current, so no drop across R1. *)
  check_float ~eps:1e-3 "b floats to source" 3.0 (Dc.node_voltage s "b");
  check_float "no current" 0.0 (Dc.element_current s "C1")

let test_diode_forward_drop () =
  let nl =
    Netlist.of_elements "dfwd"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "a" "gnd";
        Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "a" "b";
        Element.make ~id:"R1" ~kind:(Element.Resistor 1000.0) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  let drop = Dc.node_voltage s "a" -. Dc.node_voltage s "b" in
  Alcotest.(check bool) (Printf.sprintf "forward drop 0.4-0.8V, got %g" drop)
    true
    (drop > 0.4 && drop < 0.8);
  (* Shockley consistency: i = Is (exp(v/vt) - 1) at the operating point. *)
  let i = Dc.element_current s "D1" in
  let p = Element.default_diode in
  let expected =
    p.Element.saturation_current *. (exp (drop /. p.Element.thermal_voltage) -. 1.0)
  in
  check_float ~eps:1e-6 "shockley" expected i

let test_diode_reverse_blocks () =
  let nl =
    Netlist.of_elements "drev"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "a" "gnd";
        Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "b" "a";
        Element.make ~id:"R1" ~kind:(Element.Resistor 1000.0) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  Alcotest.(check bool) "reverse current negligible" true
    (Float.abs (Dc.element_current s "D1") < 1e-6)

let test_wheatstone_bridge () =
  (* Balanced bridge: zero volts across the detector. *)
  let nl =
    Netlist.of_elements "bridge"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 10.0) "top" "gnd";
        Element.make ~id:"R1" ~kind:(Element.Resistor 100.0) "top" "l";
        Element.make ~id:"R2" ~kind:(Element.Resistor 200.0) "l" "gnd";
        Element.make ~id:"R3" ~kind:(Element.Resistor 1000.0) "top" "r";
        Element.make ~id:"R4" ~kind:(Element.Resistor 2000.0) "r" "gnd";
        Element.make ~id:"VS" ~kind:Element.Voltage_sensor "l" "r";
      ]
  in
  let s = solve_exn nl in
  check_float ~eps:1e-4 "balanced" 0.0
    (List.assoc "VS" (Dc.voltage_sensor_readings s))

let test_kirchhoff_current_law () =
  (* Currents into the mid node must sum to zero. *)
  let nl =
    Netlist.of_elements "kcl"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 12.0) "in" "gnd";
        Element.make ~id:"R1" ~kind:(Element.Resistor 100.0) "in" "mid";
        Element.make ~id:"R2" ~kind:(Element.Resistor 330.0) "mid" "gnd";
        Element.make ~id:"R3" ~kind:(Element.Resistor 470.0) "mid" "gnd";
      ]
  in
  let s = solve_exn nl in
  let i_in = Dc.element_current s "R1" in
  let i_out = Dc.element_current s "R2" +. Dc.element_current s "R3" in
  (* KCL holds up to the gmin leakage path at the node. *)
  check_float ~eps:1e-6 "KCL at mid" i_in i_out

let test_open_switch_blocks () =
  let nl =
    Netlist.of_elements "sw"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "a" "gnd";
        Element.make ~id:"SW" ~kind:(Element.Switch false) "a" "b";
        Element.make ~id:"R1" ~kind:(Element.Resistor 100.0) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  Alcotest.(check bool) "load dark" true (Float.abs (Dc.node_voltage s "b") < 1e-3)

let test_current_sensor_reads_branch () =
  let nl =
    Netlist.of_elements "cs"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "a" "gnd";
        Element.make ~id:"CS" ~kind:Element.Current_sensor "a" "b";
        Element.make ~id:"R1" ~kind:(Element.Resistor 500.0) "b" "gnd";
      ]
  in
  let s = solve_exn nl in
  check_float "10mA" 0.01 (List.assoc "CS" (Dc.current_sensor_readings s));
  Alcotest.(check int) "all readings" 1 (List.length (Dc.all_sensor_readings s))

let test_no_convergence_reported () =
  (* A high-current diode chain converges too; check that errors are
     reported as values, not exceptions, for solver failures. *)
  let nl =
    Netlist.of_elements "hi"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 24.0) "a" "gnd";
        Element.make ~id:"SW" ~kind:(Element.Switch true) "a" "b";
        Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "b" "c";
        Element.make ~id:"R1" ~kind:(Element.Resistor 10.0) "c" "gnd";
      ]
  in
  match Dc.analyse nl with
  | Ok s ->
      Alcotest.(check bool) "current plausible" true
        (Dc.element_current s "R1" > 2.0 && Dc.element_current s "R1" < 2.4)
  | Error e -> Alcotest.fail (Format.asprintf "unexpected: %a" Dc.pp_error e)

(* Property: in random resistor ladders the node voltages are monotone
   (each divider step can only lower the voltage towards ground). *)
let prop_ladder_monotone =
  QCheck.Test.make ~name:"resistor ladder voltages decrease monotonically"
    ~count:60
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.return 8) (QCheck.int_range 1 1000)))
    (fun (stages, resistances) ->
      let r i = float_of_int (List.nth resistances (i mod List.length resistances) + 1) in
      let elements = ref [ Element.make ~id:"V" ~kind:(Element.Vsource 10.0) "n0" "gnd" ] in
      for i = 0 to stages - 1 do
        elements :=
          Element.make ~id:(Printf.sprintf "Rs%d" i) ~kind:(Element.Resistor (r (2 * i)))
            (Printf.sprintf "n%d" i) (Printf.sprintf "n%d" (i + 1))
          :: Element.make ~id:(Printf.sprintf "Rg%d" i)
               ~kind:(Element.Resistor (r ((2 * i) + 1)))
               (Printf.sprintf "n%d" (i + 1)) "gnd"
          :: !elements
      done;
      match Dc.analyse (Netlist.of_elements "ladder" !elements) with
      | Error _ -> false
      | Ok s ->
          let rec monotone i =
            i > stages
            || (Dc.node_voltage s (Printf.sprintf "n%d" (i - 1))
                >= Dc.node_voltage s (Printf.sprintf "n%d" i) -. 1e-9
               && monotone (i + 1))
          in
          monotone 1)

(* ---------- Fault injection ---------- *)

let psu_netlist () =
  Netlist.of_elements "psu"
    [
      Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "a" "gnd";
      Element.make ~id:"R1" ~kind:(Element.Resistor 50.0) "a" "b";
      Element.make ~id:"R2" ~kind:(Element.Resistor 50.0) "b" "gnd";
    ]

let test_fault_open () =
  let nl = Fault.inject (psu_netlist ()) ~element_id:"R1" Fault.Open_circuit in
  let s = solve_exn nl in
  Alcotest.(check bool) "b dark" true (Float.abs (Dc.node_voltage s "b") < 1e-3)

let test_fault_short () =
  let nl = Fault.inject (psu_netlist ()) ~element_id:"R1" Fault.Short_circuit in
  let s = solve_exn nl in
  Alcotest.(check bool) "b pulled up" true (Dc.node_voltage s "b" > 4.9)

let test_fault_stuck_and_shift () =
  let nl = Fault.inject (psu_netlist ()) ~element_id:"V1" (Fault.Stuck_value 2.5) in
  let s = solve_exn nl in
  check_float "stuck source" 1.25 (Dc.node_voltage s "b");
  let nl = Fault.inject (psu_netlist ()) ~element_id:"R2" (Fault.Parameter_shift 3.0) in
  (match Netlist.find nl "R2" with
  | Some { Element.kind = Element.Resistor r; _ } -> check_float "shifted" 150.0 r
  | _ -> Alcotest.fail "missing R2")

let test_fault_not_applicable () =
  (match Fault.inject (psu_netlist ()) ~element_id:"R1" (Fault.Stuck_value 1.0) with
  | exception Fault.Not_applicable _ -> ()
  | _ -> Alcotest.fail "expected Not_applicable");
  match Fault.inject (psu_netlist ()) ~element_id:"zzz" Fault.Open_circuit with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_fault_name_mapping () =
  Alcotest.(check bool) "open" true
    (Fault.of_failure_mode_name "Open" = Some Fault.Open_circuit);
  Alcotest.(check bool) "short" true
    (Fault.of_failure_mode_name "short circuit" = Some Fault.Short_circuit);
  Alcotest.(check bool) "ram failure" true
    (Fault.of_failure_mode_name "RAM Failure" = Some Fault.Open_circuit);
  Alcotest.(check bool) "drift" true
    (match Fault.of_failure_mode_name "output drift" with
    | Some (Fault.Parameter_shift _) -> true
    | _ -> false);
  Alcotest.(check bool) "unknown" true (Fault.of_failure_mode_name "jitter" = None)

(* ---------- Golden-factor injection vs full re-analysis ---------- *)

(* One element of every stamp class, so every fault → low-rank-delta rule
   in [Dc.inject] gets exercised: conductance rank-1s, RHS-only source
   faults, branch disable (rank-2), branch short, diode companion
   removal, and the zero-delta "reused" cases. *)
let mixed_netlist () =
  Netlist.of_elements "mixed"
    [
      Element.make ~id:"V1" ~kind:(Element.Vsource 12.0) "vin" "gnd";
      Element.make ~id:"R1" ~kind:(Element.Resistor 10.0) "vin" "mid";
      Element.make ~id:"CS" ~kind:Element.Current_sensor "mid" "rail";
      Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "rail" "out";
      Element.make ~id:"R2" ~kind:(Element.Resistor 100.0) "out" "gnd";
      Element.make ~id:"SW" ~kind:(Element.Switch true) "rail" "aux";
      Element.make ~id:"RL" ~kind:(Element.Load 50.0) "aux" "gnd";
      Element.make ~id:"C1" ~kind:(Element.Capacitor 1e-6) "out" "gnd";
      Element.make ~id:"L1" ~kind:(Element.Inductor 1e-3) "rail" "lout";
      Element.make ~id:"R3" ~kind:(Element.Resistor 200.0) "lout" "gnd";
      Element.make ~id:"VS" ~kind:Element.Voltage_sensor "out" "gnd";
      Element.make ~id:"I1" ~kind:(Element.Isource 0.01) "gnd" "out";
    ]

(* Same topology without the diode: the faulted circuits are linear, so
   the SMW path (with its refinement step) must agree to roundoff. *)
let mixed_linear_netlist () =
  Netlist.of_elements "mixed-linear"
    [
      Element.make ~id:"V1" ~kind:(Element.Vsource 12.0) "vin" "gnd";
      Element.make ~id:"R1" ~kind:(Element.Resistor 10.0) "vin" "mid";
      Element.make ~id:"CS" ~kind:Element.Current_sensor "mid" "rail";
      Element.make ~id:"R2" ~kind:(Element.Resistor 100.0) "rail" "out";
      Element.make ~id:"RO" ~kind:(Element.Resistor 100.0) "out" "gnd";
      Element.make ~id:"SW" ~kind:(Element.Switch true) "rail" "aux";
      Element.make ~id:"RL" ~kind:(Element.Load 50.0) "aux" "gnd";
      Element.make ~id:"C1" ~kind:(Element.Capacitor 1e-6) "out" "gnd";
      Element.make ~id:"L1" ~kind:(Element.Inductor 1e-3) "rail" "lout";
      Element.make ~id:"R3" ~kind:(Element.Resistor 200.0) "lout" "gnd";
      Element.make ~id:"VS" ~kind:Element.Voltage_sensor "out" "gnd";
      Element.make ~id:"I1" ~kind:(Element.Isource 0.01) "gnd" "out";
    ]

let injection_cases nl =
  List.concat_map
    (fun (e : Element.t) ->
      let base = [ Fault.Open_circuit; Fault.Short_circuit ] in
      let extra =
        match e.Element.kind with
        | Element.Vsource _ | Element.Isource _ ->
            [ Fault.Stuck_value 2.0; Fault.Parameter_shift 0.5 ]
        | Element.Resistor _ | Element.Load _ | Element.Inductor _
        | Element.Capacitor _ ->
            [ Fault.Parameter_shift 2.0 ]
        | _ -> []
      in
      List.map (fun f -> (e.Element.id, f)) (base @ extra))
    (Netlist.elements nl)

let observables s ids nodes =
  List.map (fun id -> Dc.element_current s id) ids
  @ List.map (fun n -> Dc.node_voltage s n) nodes
  @ List.map snd (Dc.all_sensor_readings s)

(* [eps] is relative to the observable's magnitude: Newton tolerance
   bounds voltage agreement, and currents through mΩ shorts amplify it. *)
let check_inject_matches_reanalysis ~eps ?backend nl =
  let p = Dc.prepare ?backend nl in
  let g =
    match Dc.factorise p with
    | Ok g -> g
    | Error e -> Alcotest.fail (Format.asprintf "golden failed: %a" Dc.pp_error e)
  in
  let ids = List.map (fun (e : Element.t) -> e.Element.id) (Netlist.elements nl) in
  let nodes = Netlist.nodes nl in
  List.iter
    (fun (id, fault) ->
      let what = Printf.sprintf "%s/%s" id (Fault.to_string fault) in
      let fast = Dc.inject g ~element_id:id fault in
      let slow = Dc.analyse (Fault.inject nl ~element_id:id fault) in
      match (fast, slow) with
      | Ok sf, Ok ss ->
          List.iter2
            (fun a b ->
              check_float
                ~eps:(eps *. (1.0 +. Float.max (Float.abs a) (Float.abs b)))
                what b a)
            (observables sf ids nodes) (observables ss ids nodes)
      | Error _, Error _ -> ()
      | Ok _, Error e ->
          Alcotest.fail
            (Format.asprintf "%s: re-analysis failed (%a) but inject succeeded"
               what Dc.pp_error e)
      | Error e, Ok _ ->
          Alcotest.fail
            (Format.asprintf "%s: inject failed (%a) but re-analysis succeeded"
               what Dc.pp_error e))
    (injection_cases nl)

let test_inject_matches_dense () =
  check_inject_matches_reanalysis ~eps:1e-4 (mixed_netlist ())

let test_inject_matches_linear () =
  check_inject_matches_reanalysis ~eps:1e-8 (mixed_linear_netlist ())

let test_inject_matches_sparse_backend () =
  check_inject_matches_reanalysis ~eps:1e-4 ~backend:`Sparse (mixed_netlist ())

let test_sparse_backend_matches_dense () =
  let nl = mixed_netlist () in
  let sd = solve_exn nl in
  let ss =
    match Dc.analyse ~backend:`Sparse nl with
    | Ok s -> s
    | Error e -> Alcotest.fail (Format.asprintf "sparse: %a" Dc.pp_error e)
  in
  let ids = List.map (fun (e : Element.t) -> e.Element.id) (Netlist.elements nl) in
  let nodes = Netlist.nodes nl in
  List.iter2
    (fun a b -> check_float ~eps:1e-6 "sparse vs dense" b a)
    (observables ss ids nodes) (observables sd ids nodes)

let test_inject_floating_node_singular () =
  (* With gmin = 0 an open on R1 leaves n2 with no conductive connection
     at all (the voltage sensor does not conduct): both the full
     re-analysis and the SMW path must report a singular system. *)
  let nl =
    Netlist.of_elements "floating"
      [
        Element.make ~id:"V1" ~kind:(Element.Vsource 5.0) "vin" "gnd";
        Element.make ~id:"R1" ~kind:(Element.Resistor 10.0) "vin" "n2";
        Element.make ~id:"VS" ~kind:Element.Voltage_sensor "n2" "gnd";
      ]
  in
  (match Dc.analyse ~gmin:0.0 (Fault.inject nl ~element_id:"R1" Fault.Open_circuit) with
  | Error (Dc.Singular_system _) -> ()
  | _ -> Alcotest.fail "dense re-analysis: expected Singular_system");
  List.iter
    (fun backend ->
      let p = Dc.prepare ~gmin:0.0 ~backend nl in
      match Dc.factorise p with
      | Error e ->
          Alcotest.fail (Format.asprintf "golden failed: %a" Dc.pp_error e)
      | Ok g -> (
          match Dc.inject g ~element_id:"R1" Fault.Open_circuit with
          | Error (Dc.Singular_system _) -> ()
          | _ -> Alcotest.fail "inject: expected Singular_system"))
    [ `Dense; `Sparse ]

let test_inject_paths_reported () =
  (* Exact ranks hold on the linear netlist; with diodes present Newton
     may add per-diode rank-1 corrections on top of the fault delta. *)
  let nl = mixed_linear_netlist () in
  let g =
    match Dc.factorise (Dc.prepare nl) with
    | Ok g -> g
    | Error e -> Alcotest.fail (Format.asprintf "golden: %a" Dc.pp_error e)
  in
  let path_of id fault =
    let seen = ref None in
    ignore (Dc.inject ~on_path:(fun p -> seen := Some p) g ~element_id:id fault);
    !seen
  in
  Alcotest.(check bool) "capacitor open reused" true
    (path_of "C1" Fault.Open_circuit = Some `Reused);
  Alcotest.(check bool) "closed switch short reused" true
    (path_of "SW" Fault.Short_circuit = Some `Reused);
  Alcotest.(check bool) "vsource stuck is rhs-only" true
    (path_of "V1" (Fault.Stuck_value 2.0) = Some (`Rank_update 0));
  Alcotest.(check bool) "sensor open is rank-2" true
    (path_of "CS" Fault.Open_circuit = Some (`Rank_update 2));
  Alcotest.(check bool) "resistor short is rank >= 1" true
    (match path_of "R2" Fault.Short_circuit with
    | Some (`Rank_update k) -> k >= 1
    | _ -> false)

(* ---------- Library ---------- *)

let test_library_lookup () =
  Alcotest.(check bool) "resistor" true (Option.is_some (Library.find "resistor"));
  Alcotest.(check bool) "alias MC" true
    (match Library.find "MC" with
    | Some { Library.block_type = "microcontroller"; _ } -> true
    | _ -> false);
  Alcotest.(check bool) "unknown" true (Library.find "warp-drive" = None)

let test_library_coverage () =
  let r = Library.coverage [ "resistor"; "diode"; "mcu"; "opamp"; "resistor" ] in
  Alcotest.(check int) "native" 2 (List.length r.Library.native);
  Alcotest.(check int) "workaround" 1 (List.length r.Library.via_workaround);
  Alcotest.(check int) "unsupported" 1 (List.length r.Library.unsupported);
  Alcotest.(check (float 0.01)) "pct" 75.0 r.Library.coverage_pct;
  let empty = Library.coverage [] in
  Alcotest.(check (float 0.01)) "empty is 100%" 100.0 empty.Library.coverage_pct

let test_library_distributions_sum () =
  List.iter
    (fun (b : Library.block_info) ->
      if b.Library.failure_modes <> [] then begin
        let sum =
          List.fold_left
            (fun acc fm -> acc +. fm.Library.cfm_distribution_pct)
            0.0 b.Library.failure_modes
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s distributions sum to 100" b.Library.block_type)
          true
          (Float.abs (sum -. 100.0) < 0.5)
      end)
    Library.catalogue

let suite =
  [
    Alcotest.test_case "element validation" `Quick test_element_validation;
    Alcotest.test_case "netlist basics" `Quick test_netlist_basics;
    Alcotest.test_case "netlist replace/remove" `Quick test_netlist_replace_remove;
    Alcotest.test_case "netlist validate" `Quick test_netlist_validate;
    Alcotest.test_case "voltage divider" `Quick test_voltage_divider;
    Alcotest.test_case "current source" `Quick test_current_source;
    Alcotest.test_case "inductor DC short" `Quick test_inductor_is_dc_short;
    Alcotest.test_case "capacitor DC open" `Quick test_capacitor_is_dc_open;
    Alcotest.test_case "diode forward drop" `Quick test_diode_forward_drop;
    Alcotest.test_case "diode reverse blocks" `Quick test_diode_reverse_blocks;
    Alcotest.test_case "wheatstone bridge" `Quick test_wheatstone_bridge;
    Alcotest.test_case "KCL" `Quick test_kirchhoff_current_law;
    Alcotest.test_case "open switch blocks" `Quick test_open_switch_blocks;
    Alcotest.test_case "current sensor" `Quick test_current_sensor_reads_branch;
    Alcotest.test_case "high-current diode converges" `Quick test_no_convergence_reported;
    QCheck_alcotest.to_alcotest prop_ladder_monotone;
    Alcotest.test_case "fault open" `Quick test_fault_open;
    Alcotest.test_case "fault short" `Quick test_fault_short;
    Alcotest.test_case "fault stuck/shift" `Quick test_fault_stuck_and_shift;
    Alcotest.test_case "fault not applicable" `Quick test_fault_not_applicable;
    Alcotest.test_case "fault name mapping" `Quick test_fault_name_mapping;
    Alcotest.test_case "inject matches re-analysis" `Quick test_inject_matches_dense;
    Alcotest.test_case "inject matches re-analysis (linear)" `Quick
      test_inject_matches_linear;
    Alcotest.test_case "inject matches re-analysis (sparse)" `Quick
      test_inject_matches_sparse_backend;
    Alcotest.test_case "sparse backend matches dense" `Quick
      test_sparse_backend_matches_dense;
    Alcotest.test_case "inject floating node singular" `Quick
      test_inject_floating_node_singular;
    Alcotest.test_case "inject paths reported" `Quick test_inject_paths_reported;
    Alcotest.test_case "library lookup" `Quick test_library_lookup;
    Alcotest.test_case "library coverage" `Quick test_library_coverage;
    Alcotest.test_case "library distributions" `Quick test_library_distributions_sum;
  ]

(* ---------- Transient analysis ---------- *)

let test_transient_rc_charging () =
  (* v(t) = 5 (1 - e^{-t/RC}) with RC = 1 ms. *)
  let nl =
    Netlist.of_elements "rc"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 5.0) "a" "gnd";
        Element.make ~id:"R" ~kind:(Element.Resistor 1000.0) "a" "b";
        Element.make ~id:"C" ~kind:(Element.Capacitor 1e-6) "b" "gnd";
      ]
  in
  match Transient.simulate ~initial:Transient.Zero_state nl ~dt:1e-5 ~duration:5e-3 with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  | Ok r ->
      let vb = Transient.node_voltage r "b" in
      (* One time constant: 63.2% of the rail, within backward-Euler error. *)
      check_float ~eps:0.05 "v(1ms)" (5.0 *. (1.0 -. exp (-1.0))) vb.(100);
      check_float ~eps:0.05 "fully charged" 5.0 (Transient.final_value vb);
      (match Transient.settling_time ~times:(Transient.times r) vb ~tolerance:0.05 with
      | Some ts -> Alcotest.(check bool) "settles ~4-5 tau" true (ts > 3e-3 && ts < 5e-3)
      | None -> Alcotest.fail "never settles")

let test_transient_rl_rise () =
  (* i(t) = (V/R)(1 - e^{-tR/L}), L/R = 1 ms. *)
  let nl =
    Netlist.of_elements "rl"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 10.0) "a" "gnd";
        Element.make ~id:"R" ~kind:(Element.Resistor 10.0) "a" "b";
        Element.make ~id:"L" ~kind:(Element.Inductor 1e-2) "b" "gnd";
      ]
  in
  match Transient.simulate ~initial:Transient.Zero_state nl ~dt:1e-5 ~duration:6e-3 with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  | Ok r ->
      let il = Transient.element_current r "L" in
      check_float ~eps:0.02 "i(1ms)" (1.0 *. (1.0 -. exp (-1.0))) il.(100);
      check_float ~eps:0.02 "i(final)" 1.0 (Transient.final_value il)

let test_transient_steady_state_stays () =
  (* Starting from the DC operating point with constant sources, nothing
     moves. *)
  let nl = Decisive.Case_study.power_supply_netlist in
  match Transient.simulate nl ~dt:1e-5 ~duration:1e-3 with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  | Ok r ->
      let cs1 = Transient.sensor_trace r "CS1" in
      Alcotest.(check bool) "no drift from steady state" true
        (Transient.ripple cs1 < 1e-4)

let test_transient_waveform_and_ripple () =
  (* The LC filter suppresses injected supply ripple; removing C2 lets it
     through — the time-domain role of the capacitors the DC FMEA
     excludes. *)
  let build with_c2 =
    Netlist.of_elements "psu"
      ([
         Element.make ~id:"DC1" ~kind:(Element.Vsource 5.0) "n1" "gnd";
         Element.make ~id:"D1" ~kind:(Element.Diode Element.default_diode) "n1" "n2";
         Element.make ~id:"L1" ~kind:(Element.Inductor 1e-3) "n2" "n3";
         Element.make ~id:"CS1" ~kind:Element.Current_sensor "n3" "n4";
         Element.make ~id:"MC1" ~kind:(Element.Load 100.0) "n4" "gnd";
       ]
      @
      if with_c2 then
        [ Element.make ~id:"C2" ~kind:(Element.Capacitor 1e-4) "n3" "gnd" ]
      else [])
  in
  let wave t = 5.0 +. (0.5 *. sin (2.0 *. Float.pi *. 1000.0 *. t)) in
  let ripple_of nl =
    match Transient.simulate ~waveforms:[ ("DC1", wave) ] nl ~dt:2e-6 ~duration:1e-2 with
    | Ok r -> Transient.ripple (Transient.sensor_trace r "CS1")
    | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  in
  let filtered = ripple_of (build true) in
  let unfiltered = ripple_of (build false) in
  Alcotest.(check bool)
    (Printf.sprintf "C2 suppresses ripple (%.4g vs %.4g A)" filtered unfiltered)
    true
    (unfiltered > 3.0 *. filtered)

let test_transient_voltage_sensor_trace () =
  let nl =
    Netlist.of_elements "vs"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 2.0) "a" "gnd";
        Element.make ~id:"R" ~kind:(Element.Resistor 10.0) "a" "gnd";
        Element.make ~id:"VS" ~kind:Element.Voltage_sensor "a" "gnd";
      ]
  in
  match Transient.simulate nl ~dt:1e-4 ~duration:1e-3 with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  | Ok r ->
      check_float ~eps:1e-3 "voltage sensor" 2.0
        (Transient.final_value (Transient.sensor_trace r "VS"))

let test_transient_validation () =
  let nl = psu_netlist () in
  (match Transient.simulate nl ~dt:0.0 ~duration:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on dt");
  match Transient.simulate nl ~dt:1e-3 ~duration:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on duration"

let transient_suite =
  [
    Alcotest.test_case "transient RC charging" `Quick test_transient_rc_charging;
    Alcotest.test_case "transient RL rise" `Quick test_transient_rl_rise;
    Alcotest.test_case "transient steady state" `Quick test_transient_steady_state_stays;
    Alcotest.test_case "transient ripple filtering" `Quick
      test_transient_waveform_and_ripple;
    Alcotest.test_case "transient voltage sensor" `Quick
      test_transient_voltage_sensor_trace;
    Alcotest.test_case "transient validation" `Quick test_transient_validation;
  ]

(* ---------- AC small-signal analysis ---------- *)

let ac_suite =
  let rc () =
    Netlist.of_elements "rc"
      [
        Element.make ~id:"V" ~kind:(Element.Vsource 1.0) "a" "gnd";
        Element.make ~id:"R" ~kind:(Element.Resistor 1000.0) "a" "b";
        Element.make ~id:"C" ~kind:(Element.Capacitor 1e-6) "b" "gnd";
      ]
  in
  let sweep_exn ~source nl freqs =
    match Ac.analyse ~source nl ~frequencies_hz:freqs with
    | Ok s -> s
    | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  in
  let test_rc_low_pass () =
    let freqs = Ac.log_space ~from_hz:1.0 ~to_hz:100_000.0 ~points:101 in
    let sweep = sweep_exn ~source:"V" (rc ()) freqs in
    let pts = Ac.node_response sweep "b" in
    (* Passband gain 1, stopband rolls off as 1/(wRC). *)
    let first = List.hd pts in
    check_float ~eps:1e-3 "unity at 1 Hz" 1.0 first.Ac.magnitude;
    let last = List.nth pts 100 in
    check_float ~eps:1e-4 "1/(wRC) at 100 kHz"
      (1.0 /. (2.0 *. Float.pi *. 1e5 *. 1000.0 *. 1e-6))
      last.Ac.magnitude;
    (* Cutoff near the analytic 159.2 Hz (log-grid quantised). *)
    (match Ac.cutoff_hz pts with
    | Some fc ->
        Alcotest.(check bool) (Printf.sprintf "cutoff %.1f ~ 159" fc) true
          (fc > 120.0 && fc < 220.0)
    | None -> Alcotest.fail "no cutoff found");
    (* Phase approaches -90 degrees deep in the stopband. *)
    Alcotest.(check bool) "stopband phase" true (last.Ac.phase_deg < -85.0)
  in
  let test_lc_rolloff () =
    (* Second-order filter: -40 dB/decade well above cutoff. *)
    let nl =
      Netlist.of_elements "lc"
        [
          Element.make ~id:"V" ~kind:(Element.Vsource 1.0) "a" "gnd";
          Element.make ~id:"L" ~kind:(Element.Inductor 1e-3) "a" "b";
          Element.make ~id:"C" ~kind:(Element.Capacitor 1e-5) "b" "gnd";
          Element.make ~id:"RL" ~kind:(Element.Resistor 100.0) "b" "gnd";
        ]
    in
    let sweep = sweep_exn ~source:"V" nl [ 100_000.0; 1_000_000.0 ] in
    match Ac.node_response sweep "b" with
    | [ p1; p2 ] ->
        let slope_db = p2.Ac.magnitude_db -. p1.Ac.magnitude_db in
        Alcotest.(check bool)
          (Printf.sprintf "second-order rolloff (%.1f dB/decade)" slope_db)
          true
          (slope_db < -38.0 && slope_db > -42.0)
    | _ -> Alcotest.fail "unexpected points"
  in
  let test_psu_filter_cutoff () =
    let sweep =
      sweep_exn ~source:"DC1" Decisive.Case_study.power_supply_netlist
        (Ac.log_space ~from_hz:10.0 ~to_hz:100_000.0 ~points:61)
    in
    match Ac.cutoff_hz (Ac.sensor_response sweep "CS1") with
    | Some fc ->
        (* The LC corner sits near 1/(2pi sqrt(LC)) = 1.6 kHz. *)
        Alcotest.(check bool) (Printf.sprintf "cutoff %.0f in band" fc) true
          (fc > 800.0 && fc < 5000.0)
    | None -> Alcotest.fail "no cutoff"
  in
  let test_validation () =
    (match Ac.analyse ~source:"NOPE" (rc ()) ~frequencies_hz:[ 1.0 ] with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "unknown source accepted");
    (match Ac.analyse ~source:"R" (rc ()) ~frequencies_hz:[ 1.0 ] with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "non-source accepted");
    (match Ac.analyse ~source:"V" (rc ()) ~frequencies_hz:[ 0.0 ] with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "zero frequency accepted");
    match Ac.log_space ~from_hz:10.0 ~to_hz:1.0 ~points:5 with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "bad log_space accepted"
  in
  let test_log_space () =
    let freqs = Ac.log_space ~from_hz:1.0 ~to_hz:1000.0 ~points:4 in
    Alcotest.(check int) "points" 4 (List.length freqs);
    check_float ~eps:1e-9 "first" 1.0 (List.hd freqs);
    check_float ~eps:1e-6 "last" 1000.0 (List.nth freqs 3);
    check_float ~eps:1e-6 "log spacing" 10.0 (List.nth freqs 1)
  in
  (* The prepared path (one base matrix, reactive restamps per
     frequency) must agree with analyse, and successive solves on the
     same prepared value must not contaminate each other. *)
  let test_prepared_matches_analyse () =
    let nl = Decisive.Case_study.power_supply_netlist in
    let freqs = Ac.log_space ~from_hz:10.0 ~to_hz:100_000.0 ~points:31 in
    let reference = sweep_exn ~source:"DC1" nl freqs in
    let p =
      match Ac.prepare ~source:"DC1" nl with
      | Ok p -> p
      | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
    in
    let solve_exn freqs =
      match Ac.solve p ~frequencies_hz:freqs with
      | Ok s -> s
      | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
    in
    (* A throwaway sweep first: if solve mutated the base, the real
       sweep below would drift. *)
    ignore (solve_exn [ 50.0; 5000.0 ]);
    let sweep = solve_exn freqs in
    let check_trace trace want got =
      List.iter2
        (fun (w : Ac.point) (g : Ac.point) ->
          check_float ~eps:1e-12 (trace ^ " magnitude") w.Ac.magnitude
            g.Ac.magnitude;
          check_float ~eps:1e-9 (trace ^ " phase") w.Ac.phase_deg g.Ac.phase_deg)
        want got
    in
    check_trace "CS1"
      (Ac.sensor_response reference "CS1")
      (Ac.sensor_response sweep "CS1");
    List.iter
      (fun n ->
        check_trace n (Ac.node_response reference n) (Ac.node_response sweep n))
      (Netlist.nodes nl)
  in
  [
    Alcotest.test_case "RC low-pass" `Quick test_rc_low_pass;
    Alcotest.test_case "LC -40dB/decade" `Quick test_lc_rolloff;
    Alcotest.test_case "PSU filter cutoff" `Quick test_psu_filter_cutoff;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "log_space" `Quick test_log_space;
    Alcotest.test_case "prepared sweep matches analyse" `Quick
      test_prepared_matches_analyse;
  ]

(* Cross-validation: the transient engine and the AC engine must agree —
   driving a sine at frequency f, the steady-state output ripple equals
   (peak-to-peak input) x |H(f)|. *)
let test_transient_ac_agree () =
  let nl = Decisive.Case_study.power_supply_netlist in
  let hz = 1000.0 in
  let amplitude = 0.25 in
  let ac =
    match Ac.analyse ~source:"DC1" nl ~frequencies_hz:[ hz ] with
    | Ok sweep -> (List.hd (Ac.sensor_response sweep "CS1")).Ac.magnitude
    | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  in
  let wave t = 5.0 +. (amplitude *. sin (2.0 *. Float.pi *. hz *. t)) in
  let transient_ripple =
    match
      Transient.simulate ~waveforms:[ ("DC1", wave) ] nl ~dt:1e-6 ~duration:8e-3
    with
    | Ok r -> Transient.ripple (Transient.sensor_trace r "CS1")
    | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
  in
  let predicted = 2.0 *. amplitude *. ac in
  let error = Float.abs (transient_ripple -. predicted) /. predicted in
  Alcotest.(check bool)
    (Printf.sprintf
       "transient ripple %.4g vs AC prediction %.4g (%.1f%% error)"
       transient_ripple predicted (100.0 *. error))
    true (error < 0.1)

let cross_validation_suite =
  [ Alcotest.test_case "transient vs AC" `Quick test_transient_ac_agree ]

(* ---------- synthetic generator netlists ---------- *)

let generator_suite =
  let test_ladder_shape () =
    let nl = Generator.ladder ~sections:32 in
    Alcotest.(check (list string)) "validates" [] (Netlist.validate nl);
    (* 33 ladder nodes + 2 sensor mid-nodes + 3 branch unknowns. *)
    Alcotest.(check int) "unknowns" 38 (Dc.size (Dc.prepare nl));
    let s = solve_exn nl in
    let vout = List.assoc "VOUT" (Dc.all_sensor_readings s) in
    Alcotest.(check bool) (Printf.sprintf "droop (%.3f V)" vout) true
      (vout > 0.0 && vout < 12.0);
    (* Determinism: two generations are structurally identical. *)
    Alcotest.(check bool) "deterministic" true
      (List.equal Element.equal
         (Netlist.elements nl)
         (Netlist.elements (Generator.ladder ~sections:32)))
  in
  let test_grid_shape () =
    let nl = Generator.grid ~rows:6 ~cols:6 in
    Alcotest.(check (list string)) "validates" [] (Netlist.validate nl);
    Alcotest.(check int) "unknowns" 39 (Dc.size (Dc.prepare nl));
    let s = solve_exn nl in
    let vout = List.assoc "VOUT" (Dc.all_sensor_readings s) in
    Alcotest.(check bool) (Printf.sprintf "droop (%.3f V)" vout) true
      (vout > 0.0 && vout < 12.0)
  in
  (* Acceptance-shaped check at unit-test scale: on an auto-sparse
     ladder, the golden-factor re-solve must match a dense from-scratch
     re-analysis to 1e-9 on every observable. *)
  let test_ladder_inject_accuracy () =
    let nl = Generator.ladder ~sections:160 in
    let p = Dc.prepare nl in
    Alcotest.(check bool) "auto picks sparse" true
      (Dc.backend_used p = `Sparse);
    let g =
      match Dc.factorise p with
      | Ok g -> g
      | Error e -> Alcotest.fail (Format.asprintf "%a" Dc.pp_error e)
    in
    let ids =
      List.map (fun (e : Element.t) -> e.Element.id) (Netlist.elements nl)
    in
    let nodes = Netlist.nodes nl in
    List.iter
      (fun (id, fault) ->
        let what = Printf.sprintf "%s/%s" id (Fault.to_string fault) in
        let fast =
          match Dc.inject g ~element_id:id fault with
          | Ok s -> s
          | Error e ->
              Alcotest.fail (Format.asprintf "%s: %a" what Dc.pp_error e)
        in
        let slow =
          match
            Dc.analyse ~backend:`Dense (Fault.inject nl ~element_id:id fault)
          with
          | Ok s -> s
          | Error e ->
              Alcotest.fail (Format.asprintf "%s: %a" what Dc.pp_error e)
        in
        List.iter2
          (fun a b ->
            check_float
              ~eps:(1e-9 *. (1.0 +. Float.max (Float.abs a) (Float.abs b)))
              what b a)
          (observables fast ids nodes)
          (observables slow ids nodes))
      [
        ("RS5", Fault.Open_circuit);
        ("RS5", Fault.Short_circuit);
        ("RL40", Fault.Open_circuit);
        ("RL40", Fault.Short_circuit);
        ("RS80", Fault.Parameter_shift 2.0);
        ("CS16", Fault.Open_circuit);
        ("VIN", Fault.Stuck_value 0.0);
        ("VIN", Fault.Parameter_shift 1.25);
      ]
  in
  [
    Alcotest.test_case "ladder shape" `Quick test_ladder_shape;
    Alcotest.test_case "grid shape" `Quick test_grid_shape;
    Alcotest.test_case "ladder inject accuracy 1e-9" `Quick
      test_ladder_inject_accuracy;
  ]
