(* End-to-end tests of the `same` command-line tool, driving the built
   binary the way a user would. *)

let binary =
  (* Tests run in _build/default/test/; the CLI sits next door. *)
  let candidates = [ "../bin/same.exe"; "bin/same.exe" ] in
  List.find_opt Sys.file_exists candidates

let psu_bd =
  {|diagram psu {
  block DC1 : vsource { volts = 5; }
  block D1 : diode;
  block C1 : capacitor { farads = 1e-5; }
  block L1 : inductor { henries = 0.001; }
  block C2 : capacitor { farads = 1e-5; }
  block CS1 : current_sensor;
  block MC1 : microcontroller { ohms = 100; }
  block GND1 : ground ports (conserving a);
  connect DC1.a -> D1.a;
  connect D1.b -> C1.a;
  connect D1.b -> L1.a;
  connect L1.b -> C2.a;
  connect L1.b -> CS1.a;
  connect CS1.b -> MC1.a;
  connect MC1.b -> GND1.a;
  connect DC1.b -> GND1.a;
  connect C1.b -> GND1.a;
  connect C2.b -> GND1.a;
}
|}

let with_fixture f =
  match binary with
  | None -> Alcotest.skip ()
  | Some bin ->
      let dir = Filename.temp_file "samecli" "" in
      Sys.remove dir;
      Sys.mkdir dir 0o755;
      let bd = Filename.concat dir "psu.bd" in
      let oc = open_out bd in
      output_string oc psu_bd;
      close_out oc;
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir)
        (fun () -> f ~bin ~dir ~bd)

let run cmd = Sys.command (cmd ^ " >/dev/null 2>&1")

let test_fmea_and_assure () =
  with_fixture (fun ~bin ~dir ~bd ->
      let csv = Filename.concat dir "fmeda.csv" in
      Alcotest.(check int) "fmeda exits 0" 0
        (run
           (Printf.sprintf "%s fmeda %s -e DC1 -t ASIL-B -o %s" bin bd
              (Filename.quote csv)));
      Alcotest.(check bool) "csv written" true (Sys.file_exists csv);
      Alcotest.(check int) "assure holds" 0
        (run (Printf.sprintf "%s assure %s -n PSU -t ASIL-B" bin (Filename.quote csv)));
      (* Without the SM the design misses ASIL-B: assure must fail. *)
      Alcotest.(check int) "fmea (no SM) exported" 0
        (run
           (Printf.sprintf "%s fmea %s -e DC1 -o %s" bin bd (Filename.quote csv)));
      Alcotest.(check int) "assure fails on unrefined design" 1
        (run (Printf.sprintf "%s assure %s -n PSU -t ASIL-B" bin (Filename.quote csv))))

let test_routes_and_tools () =
  with_fixture (fun ~bin ~dir:_ ~bd ->
      List.iter
        (fun route ->
          Alcotest.(check int)
            (Printf.sprintf "fmea --route %s" route)
            0
            (run (Printf.sprintf "%s fmea %s -e DC1 --route %s" bin bd route)))
        [ "injection"; "ssam"; "fta" ];
      Alcotest.(check int) "transform lossless" 0
        (run (Printf.sprintf "%s transform %s" bin bd));
      Alcotest.(check int) "coverage" 0 (run (Printf.sprintf "%s coverage %s" bin bd));
      Alcotest.(check int) "run completes" 0
        (run (Printf.sprintf "%s run %s -e DC1 -t ASIL-B -n PSU" bin bd));
      Alcotest.(check int) "bode" 0
        (run (Printf.sprintf "%s bode %s --source DC1 --points 5" bin bd)))

let test_artifacts_written () =
  with_fixture (fun ~bin ~dir ~bd ->
      let dot = Filename.concat dir "ft.dot" in
      let psa = Filename.concat dir "ft.xml" in
      let md = Filename.concat dir "concept.md" in
      Alcotest.(check int) "fta with exports" 0
        (run
           (Printf.sprintf "%s fta %s --dot %s --open-psa %s" bin bd
              (Filename.quote dot) (Filename.quote psa)));
      Alcotest.(check bool) "dot exists" true (Sys.file_exists dot);
      Alcotest.(check bool) "psa parses as xml" true
        (match Modelio.Xml.parse_file psa with
        | _ -> true
        | exception _ -> false);
      Alcotest.(check int) "report" 0
        (run
           (Printf.sprintf "%s report %s -e DC1 -t ASIL-B -n PSU -o %s" bin bd
              (Filename.quote md)));
      Alcotest.(check bool) "report exists" true (Sys.file_exists md))

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_lint () =
  with_fixture (fun ~bin ~dir ~bd ->
      Alcotest.(check int) "clean diagram lints clean" 0
        (run (Printf.sprintf "%s lint %s" bin bd));
      (* Seed a dangling connection: lint must exit non-zero. *)
      let bad = Filename.concat dir "bad.bd" in
      write_file bad
        {|diagram bad {
  block DC1 : vsource;
  block D1 : diode;
  connect DC1.a -> D1.a;
  connect D1.b -> C9.a;
}
|};
      Alcotest.(check int) "dangling endpoint is an error" 1
        (run (Printf.sprintf "%s lint %s" bin (Filename.quote bad)));
      Alcotest.(check int) "rule filter narrows to a warning" 0
        (run
           (Printf.sprintf "%s lint %s --rules BLK008" bin (Filename.quote bad)));
      Alcotest.(check int) "unknown rule id is a usage error" 2
        (run (Printf.sprintf "%s lint %s --rules NOPE99" bin bd));
      Alcotest.(check int) "no input is a usage error" 2
        (run (Printf.sprintf "%s lint" bin));
      (* The SM cross-check from the issue: a row naming a failure mode
         its component type never declares. *)
      let sm = Filename.concat dir "bad_sm.csv" in
      write_file sm
        "Component,Failure_Mode,Safety_Mechanism,Cov.,Cost(hrs)\n\
         diode,Burnout,redundant diode,90%,1\n";
      Alcotest.(check int) "undeclared SM failure mode is an error" 1
        (run (Printf.sprintf "%s lint %s -s %s" bin bd (Filename.quote sm)));
      Alcotest.(check int) "--strict blocks the analysis" 1
        (run
           (Printf.sprintf "%s fmeda %s -e DC1 -t ASIL-B -s %s --strict" bin bd
              (Filename.quote sm)));
      (* JSON output is parseable SARIF. *)
      let out = Filename.concat dir "lint.json" in
      Alcotest.(check int) "json format" 0
        (Sys.command
           (Printf.sprintf "%s lint %s --format json > %s 2>/dev/null" bin bd
              (Filename.quote out)));
      match Modelio.Json.parse_file out with
      | json ->
          Alcotest.(check (option string)) "sarif version" (Some "2.1.0")
            (Option.bind (Modelio.Json.member "version" json) Modelio.Json.to_str)
      | exception _ -> Alcotest.fail "lint --format json is not valid JSON")

let test_lint_queries () =
  with_fixture (fun ~bin ~dir ~bd:_ ->
      let good = Filename.concat dir "good.eol" in
      write_file good "var xs := Sequence(1, 2, 3);\nreturn xs.sum() > 1;\n";
      Alcotest.(check int) "well-typed query accepted" 0
        (run (Printf.sprintf "%s lint -q %s" bin (Filename.quote good)));
      let bad = Filename.concat dir "bad.eol" in
      write_file bad "var xs := Sequence(1);\nreturn xs.select();\n";
      Alcotest.(check int) "arity error rejected" 1
        (run (Printf.sprintf "%s lint -q %s" bin (Filename.quote bad))))

let test_error_handling () =
  with_fixture (fun ~bin ~dir ~bd:_ ->
      (* Malformed diagram: non-zero exit, no crash. *)
      let bad = Filename.concat dir "bad.bd" in
      let oc = open_out bad in
      output_string oc "diagram oops {";
      close_out oc;
      Alcotest.(check bool) "parse error reported" true
        (run (Printf.sprintf "%s fmea %s" bin (Filename.quote bad)) <> 0))

let suite =
  [
    Alcotest.test_case "fmeda + assure" `Slow test_fmea_and_assure;
    Alcotest.test_case "routes and tools" `Slow test_routes_and_tools;
    Alcotest.test_case "artifacts written" `Slow test_artifacts_written;
    Alcotest.test_case "lint" `Slow test_lint;
    Alcotest.test_case "lint queries" `Slow test_lint_queries;
    Alcotest.test_case "error handling" `Slow test_error_handling;
  ]
