(* Tests for lib/dataflow: the worklist fixpoint engine (termination and
   monotone ascent on cyclic graphs), the propagation model builders,
   and the backward-diagnosis-vs-forward-FMEA differential oracle. *)

module Fixpoint = Dataflow.Fixpoint
module Model = Dataflow.Model
module Passes = Dataflow.Passes
module Diagnose = Dataflow.Diagnose

let mode_keys = List.map (fun (m : Model.mode) -> m.Model.m_key)

(* ---------- fixpoint engine ---------- *)

(* Max-of-ints lattice: enough structure to watch the ascent converge on
   a cycle (a non-trivial SCC iterates until stable). *)
module MaxInt = struct
  type t = int

  let bottom = 0
  let join = max
  let leq a b = a <= b
end

let test_fixpoint_cycle_terminates () =
  let g =
    Graph.Digraph.of_edges
      [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d") ]
  in
  let weight n = match Graph.Digraph.name g n with "b" -> 7 | _ -> 1 in
  let values, stats =
    Fixpoint.solve
      (module MaxInt)
      ~jobs:1 ~direction:Fixpoint.Forward ~init:weight
      ~transfer:(fun _ v -> v)
      g
  in
  let at id = values.(Option.get (Graph.Digraph.index g id)) in
  (* The cycle pumps b's weight everywhere it reaches. *)
  List.iter
    (fun id -> Alcotest.(check int) (id ^ " saturates") 7 (at id))
    [ "a"; "b"; "c"; "d" ];
  Alcotest.(check int) "two SCCs" 2 stats.Fixpoint.sccs;
  Alcotest.(check bool) "finitely many iterations" true
    (stats.Fixpoint.iterations > 0 && stats.Fixpoint.iterations < 100)

let test_fixpoint_matches_reachability () =
  (* With an identity transfer and singleton seeds, the forward fixpoint
     over the bitset lattice is exactly transitive reachability —
     cross-checked against the BFS kernel on a cyclic graph. *)
  let g =
    Graph.Digraph.of_edges
      [
        ("a", "b"); ("b", "c"); ("c", "b"); ("c", "d"); ("e", "d"); ("d", "e");
      ]
  in
  let n = Graph.Digraph.node_count g in
  let lattice =
    (module struct
      type t = Graph.Bitset.t

      let bottom = Graph.Bitset.create n

      let join a b =
        let c = Graph.Bitset.copy a in
        ignore (Graph.Bitset.union_into ~into:c b);
        c

      let leq = Graph.Bitset.subset
    end : Fixpoint.LATTICE
      with type t = Graph.Bitset.t)
  in
  let init u =
    let s = Graph.Bitset.create n in
    Graph.Bitset.add s u;
    s
  in
  let values, _ =
    Fixpoint.solve lattice ~jobs:1 ~direction:Fixpoint.Forward ~init
      ~transfer:(fun _ v -> v)
      g
  in
  for source = 0 to n - 1 do
    let bfs = Graph.Digraph.reachable_from g [ source ] in
    for target = 0 to n - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "%s reaches %s" (Graph.Digraph.name g source)
           (Graph.Digraph.name g target))
        (Graph.Bitset.mem bfs target)
        (Graph.Bitset.mem values.(target) source)
    done
  done

let test_fixpoint_non_monotone_still_terminates () =
  (* A transfer that oscillates (flip 1<->2) is not monotone; the
     engine's ascending join (new = join old (transfer inflow)) still
     terminates and only ever moves values upward. *)
  let g = Graph.Digraph.of_edges [ ("a", "b"); ("b", "a") ] in
  let flip = function 1 -> 2 | 2 -> 1 | v -> v in
  let values, stats =
    Fixpoint.solve
      (module MaxInt)
      ~jobs:1 ~direction:Fixpoint.Forward
      ~init:(fun _ -> 1)
      ~transfer:(fun _ v -> flip v)
      g
  in
  Alcotest.(check bool) "terminated" true (stats.Fixpoint.iterations < 100);
  Array.iter
    (fun v -> Alcotest.(check bool) "never descended below init" true (v >= 1))
    values;
  Alcotest.(check bool) "the oscillation was absorbed upward" true
    (Array.exists (fun v -> v = 2) values)

(* ---------- differential oracle on generator architectures ---------- *)

let check_oracle ?(jobs = 1) (m : Model.t) =
  let forward = Passes.forward_taint ~jobs m in
  let backward = Passes.backward_reach ~jobs m in
  let agree, pairs = Passes.agreement m ~forward ~backward in
  Alcotest.(check bool) "forward/backward agree" true agree;
  (* The forward FMEA's safety-related rows are exactly the backward
     explanations of some output (all generator modes are loss-like and
     no generator component is redundant). *)
  let fmea = Passes.forward_fmea ~jobs m in
  let safety_rows =
    List.filter_map
      (fun (r : Fmea.Table.row) ->
        if r.Fmea.Table.safety_related then
          Some (r.Fmea.Table.component ^ "/" ^ r.Fmea.Table.failure_mode)
        else None)
      fmea.Fmea.Table.rows
    |> List.sort_uniq String.compare
  in
  let backward_keys =
    List.concat_map
      (fun output -> mode_keys (Passes.backward_explains m backward ~output))
      (Model.output_names m)
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string))
    "backward explanations == forward FMEA rows" safety_rows backward_keys;
  pairs

let test_diamond_oracle () =
  let m = Model.of_architecture (Circuit.Generator.diamond_arch ~stages:4) in
  let pairs = check_oracle m in
  Alcotest.(check bool) "pairs checked" true (pairs > 0);
  (* Every component reaches the final junction. *)
  let backward = Passes.backward_reach ~jobs:1 m in
  Alcotest.(check int) "all modes explain J4"
    (Model.mode_count m)
    (List.length (Passes.backward_explains m backward ~output:"J4"))

let test_grid_oracle () =
  let m = Model.of_architecture (Circuit.Generator.grid_arch ~rows:3 ~cols:4) in
  ignore (check_oracle m)

let test_jobs_deterministic () =
  let archs =
    [
      Circuit.Generator.diamond_arch ~stages:5;
      Circuit.Generator.grid_arch ~rows:4 ~cols:4;
    ]
  in
  List.iter
    (fun arch ->
      let m = Model.of_architecture arch in
      let f1 = Passes.forward_taint ~jobs:1 m in
      let f4 = Passes.forward_taint ~jobs:4 m in
      Alcotest.(check bool) "forward sets bit-identical" true
        (Array.for_all2 Graph.Bitset.equal f1.Passes.sets f4.Passes.sets);
      Alcotest.(check int) "forward iterations identical"
        f1.Passes.stats.Fixpoint.iterations f4.Passes.stats.Fixpoint.iterations;
      let b1 = Passes.backward_reach ~jobs:1 m in
      let b4 = Passes.backward_reach ~jobs:4 m in
      Alcotest.(check bool) "backward sets bit-identical" true
        (Array.for_all2 Graph.Bitset.equal b1.Passes.sets b4.Passes.sets))
    archs

let qcheck_oracle =
  QCheck.Test.make ~count:30 ~name:"random layered architectures: oracle"
    QCheck.(triple (int_range 1 6) (int_range 1 4) (int_range 1 5))
    (fun (stages, rows, cols) ->
      let check arch =
        let m = Model.of_architecture arch in
        let f1 = Passes.forward_taint ~jobs:1 m in
        let f4 = Passes.forward_taint ~jobs:4 m in
        let b1 = Passes.backward_reach ~jobs:1 m in
        let agree, _ = Passes.agreement m ~forward:f1 ~backward:b1 in
        agree
        && Array.for_all2 Graph.Bitset.equal f1.Passes.sets f4.Passes.sets
      in
      check (Circuit.Generator.diamond_arch ~stages)
      && check (Circuit.Generator.grid_arch ~rows ~cols))

(* ---------- diagnosis on the paper's PSU circuit ---------- *)

let psu_model () =
  Model.of_diagram
    ~reliability:Decisive.Case_study.reliability_model
    Decisive.Case_study.power_supply_diagram

let test_psu_structural_candidates () =
  let m = psu_model () in
  Alcotest.(check (list string)) "CS1 is the observation point" [ "CS1" ]
    (Model.output_names m);
  let backward = Passes.backward_reach ~jobs:1 m in
  (* Ground is dropped; every remaining reliability-backed block reaches
     the sensor through the electrical net. *)
  Alcotest.(check bool) "D1 open is a candidate" true
    (List.mem "D1/Open" (mode_keys (Passes.backward_explains m backward ~output:"CS1")));
  let agree, _ =
    Passes.agreement m ~forward:(Passes.forward_taint ~jobs:1 m) ~backward
  in
  Alcotest.(check bool) "oracle agrees on the PSU" true agree

(* The circuit-level differential oracle: confirmed backward explanations
   == safety-related forward injection-FMEA rows, both monitoring CS1. *)
let test_psu_diagnosis_matches_injection () =
  let diagram = Decisive.Case_study.power_supply_diagram in
  let reliability = Decisive.Case_study.reliability_model in
  let options =
    {
      Decisive.Case_study.injection_options with
      Fmea.Injection_fmea.monitored_sensors = Some [ "CS1" ];
    }
  in
  let m = psu_model () in
  let verify =
    match
      Diagnose.circuit_verifier ~options ~reliability ~output:"CS1" diagram
    with
    | Ok v -> v
    | Error why -> Alcotest.fail ("verifier unavailable: " ^ why)
  in
  let report =
    match Diagnose.diagnose ~jobs:1 ~verify m ~output:"CS1" with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let confirmed =
    List.filter_map
      (fun (e : Diagnose.explanation) ->
        match e.Diagnose.verdict with
        | Diagnose.Confirmed _ -> Some e.Diagnose.mode.Model.m_key
        | _ -> None)
      report.Diagnose.candidates
    |> List.sort_uniq String.compare
  in
  let { Blockdiag.To_netlist.netlist; block_types; _ } =
    Blockdiag.To_netlist.convert diagram
  in
  let injection_rows =
    (Fmea.Injection_fmea.analyse ~options ~element_types:block_types netlist
       reliability)
      .Fmea.Table.rows
  in
  let forward_safety =
    List.filter_map
      (fun (r : Fmea.Table.row) ->
        if r.Fmea.Table.safety_related then
          Some (r.Fmea.Table.component ^ "/" ^ r.Fmea.Table.failure_mode)
        else None)
      injection_rows
    |> List.sort_uniq String.compare
  in
  Alcotest.(check (list string))
    "confirmed backward explanations == forward injection rows"
    forward_safety confirmed;
  (* Paper Table IV, restricted to CS1. *)
  Alcotest.(check (list string)) "the paper's single points"
    [ "D1/Open"; "L1/Open"; "MC1/RAM Failure" ]
    confirmed;
  Alcotest.(check (list (list string))) "minimal singles"
    [ [ "D1/Open" ]; [ "L1/Open" ]; [ "MC1/RAM Failure" ] ]
    (List.sort compare report.Diagnose.singles);
  Alcotest.(check bool) "no doubles on the PSU" true
    (report.Diagnose.doubles = [])

let test_psu_jobs_identical () =
  let m = psu_model () in
  let run jobs =
    match Diagnose.diagnose ~jobs m ~output:"CS1" with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check (list string)) "same candidates at jobs 1 and 4"
    (List.map (fun (e : Diagnose.explanation) -> e.Diagnose.mode.Model.m_key)
       r1.Diagnose.candidates)
    (List.map (fun (e : Diagnose.explanation) -> e.Diagnose.mode.Model.m_key)
       r4.Diagnose.candidates);
  Alcotest.(check int) "same iteration count"
    r1.Diagnose.stats.Fixpoint.iterations r4.Diagnose.stats.Fixpoint.iterations

(* ---------- cyclic diagram: termination and soundness ---------- *)

let cyclic_diagram () =
  let open Blockdiag.Diagram in
  let ctl id =
    block ~id ~block_type:"ctrl"
      ~ports:
        [
          { port_name = "i"; port_kind = In_port };
          { port_name = "o"; port_kind = Out_port };
        ]
      ()
  in
  let sensor =
    block ~id:"S1" ~block_type:"current_sensor"
      ~ports:[ { port_name = "i"; port_kind = In_port } ]
      ()
  in
  diagram ~name:"loop"
    ~connections:
      [
        connect ("ctl1", "o") ("ctl2", "i");
        connect ("ctl2", "o") ("ctl1", "i");
        connect ("ctl2", "o") ("S1", "i");
      ]
    [ ctl "ctl1"; ctl "ctl2"; sensor ]

let ctrl_reliability =
  Reliability.Reliability_model.of_entries
    [
      {
        Reliability.Reliability_model.component_type = "ctrl";
        fit = 10.0;
        failure_modes =
          [
            {
              Reliability.Reliability_model.fm_name = "Stuck";
              distribution_pct = 100.0;
              fault = None;
              loss_of_function = true;
            };
          ];
      };
    ]

let test_cyclic_diagram_diagnosis () =
  let m =
    Model.of_diagram ~reliability:ctrl_reliability (cyclic_diagram ())
  in
  match Diagnose.diagnose ~jobs:1 m ~output:"S1" with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check bool) "terminates with the oracle intact" true
        report.Diagnose.agree;
      Alcotest.(check (list string)) "both controllers explain the sensor"
        [ "ctl1/Stuck"; "ctl2/Stuck" ]
        (List.sort compare
           (List.map
              (fun (e : Diagnose.explanation) -> e.Diagnose.mode.Model.m_key)
              report.Diagnose.candidates));
      Alcotest.(check bool) "the cycle needed re-iteration" true
        (report.Diagnose.stats.Fixpoint.iterations > 3);
      Alcotest.(check int) "one non-trivial SCC + sensor" 2
        report.Diagnose.stats.Fixpoint.sccs

let test_unknown_output () =
  let m = psu_model () in
  match Diagnose.diagnose ~jobs:1 m ~output:"VS9" with
  | Error msg ->
      Alcotest.(check bool) "names the observation points" true
        (let has needle hay =
           let n = String.length needle in
           let rec go i =
             i + n <= String.length hay
             && (String.sub hay i n = needle || go (i + 1))
           in
           go 0
         in
         has "CS1" msg)
  | Ok _ -> Alcotest.fail "expected an error for an unknown output"

(* ---------- redundancy: double-point cut sets ---------- *)

let redundant_pair_arch () =
  let open Ssam in
  let leaf ?functions id =
    Architecture.component ?functions
      ~failure_modes:
        [
          Architecture.failure_mode
            ~meta:(Base.meta ~name:"loss" (id ^ ":fm:loss"))
            ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ();
        ]
      ~fit:10.0
      ~meta:(Base.meta id)
      ()
  in
  let redundant id =
    leaf
      ~functions:
        [ Architecture.func ~meta:(Base.meta (id ^ ":fn")) Architecture.OneOoTwo ]
      id
  in
  let rel f t =
    Architecture.relationship
      ~meta:(Base.meta (f ^ "->" ^ t))
      ~from_component:f ~to_component:t ()
  in
  Architecture.component ~component_type:Architecture.System
    ~children:[ leaf "IN"; redundant "A"; redundant "B"; leaf "OUT" ]
    ~connections:[ rel "IN" "A"; rel "IN" "B"; rel "A" "OUT"; rel "B" "OUT" ]
    ~meta:(Base.meta "root")
    ()

let test_double_point_cut_sets () =
  let m = Model.of_architecture (redundant_pair_arch ()) in
  match Diagnose.diagnose ~jobs:1 m ~output:"OUT" with
  | Error e -> Alcotest.fail e
  | Ok report ->
      Alcotest.(check (list (list string))) "singles: the non-redundant pair"
        [ [ "IN/loss" ]; [ "OUT/loss" ] ]
        (List.sort compare report.Diagnose.singles);
      Alcotest.(check (list (list string))) "doubles: the redundant legs"
        [ [ "A/loss"; "B/loss" ] ]
        report.Diagnose.doubles

(* The BDD-derived singles/doubles must equal the historical direct
   pair enumeration on every model — the tentpole's differential. *)
let test_cut_set_routes_agree () =
  let check name m ~output =
    match Diagnose.diagnose ~jobs:1 m ~output with
    | Error e -> Alcotest.fail e
    | Ok report ->
        let direct_singles, direct_doubles =
          Diagnose.direct_cut_sets m report.Diagnose.explanations
        in
        Alcotest.(check (list (list string)))
          (name ^ ": BDD singles = direct singles")
          (List.sort compare direct_singles)
          (List.sort compare report.Diagnose.singles);
        Alcotest.(check (list (list string)))
          (name ^ ": BDD doubles = direct doubles")
          (List.sort compare direct_doubles)
          (List.sort compare report.Diagnose.doubles);
        (* The lowered tree exists exactly when something survived. *)
        Alcotest.(check bool) (name ^ ": lowered tree consistent") true
          (Option.is_some
             (Diagnose.lowered_fault_tree m report.Diagnose.explanations)
          = (report.Diagnose.explanations <> []))
  in
  check "psu" (psu_model ()) ~output:"CS1";
  check "redundant pair"
    (Model.of_architecture (redundant_pair_arch ()))
    ~output:"OUT"

(* ---------- integrity propagation ---------- *)

let test_integrity_violations () =
  let open Ssam in
  let situation =
    Hazard.situation
      ~meta:(Base.meta "hz1")
      ~severity:Hazard.S3 ~exposure:Hazard.E4 ~controllability:Hazard.C3 ()
  in
  let hazards = Hazard.package ~meta:(Base.meta "hzp") [ Hazard.Situation situation ] in
  let src =
    Architecture.component
      ~failure_modes:
        [
          Architecture.failure_mode
            ~meta:(Base.meta ~name:"loss" "src:fm:loss")
            ~nature:Architecture.Loss_of_function ~distribution_pct:100.0
            ~hazards:[ "hz1" ] ();
        ]
      ~fit:10.0
      ~meta:(Base.meta "src")
      ()
  in
  let snk =
    Architecture.component ~integrity:Requirement.ASIL_A
      ~meta:(Base.meta "snk")
      ()
  in
  let rel =
    Architecture.relationship
      ~meta:(Base.meta "r")
      ~from_component:"src" ~to_component:"snk" ()
  in
  let pkg =
    Architecture.package
      ~meta:(Base.meta "pkg")
      [
        Architecture.Component src;
        Architecture.Component snk;
        Architecture.Relationship rel;
      ]
  in
  let model =
    Ssam.Model.create ~component_packages:[ pkg ] ~hazard_packages:[ hazards ]
      ~meta:(Base.meta "m")
      ()
  in
  let m = Dataflow.Model.of_package pkg in
  let findings = Passes.integrity_violations ~jobs:1 model m in
  match findings with
  | [ f ] ->
      Alcotest.(check string) "the under-allocated sink" "snk"
        f.Passes.if_component;
      Alcotest.(check bool) "ASIL D demanded" true
        (f.Passes.demanded = Requirement.ASIL_D);
      Alcotest.(check string) "via the citing mode" "src/loss"
        f.Passes.via_mode.Dataflow.Model.m_key
  | fs ->
      Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

let suite =
  [
    Alcotest.test_case "fixpoint: cycle terminates" `Quick
      test_fixpoint_cycle_terminates;
    Alcotest.test_case "fixpoint: matches reachability" `Quick
      test_fixpoint_matches_reachability;
    Alcotest.test_case "fixpoint: non-monotone transfer" `Quick
      test_fixpoint_non_monotone_still_terminates;
    Alcotest.test_case "oracle: diamond" `Quick test_diamond_oracle;
    Alcotest.test_case "oracle: grid" `Quick test_grid_oracle;
    Alcotest.test_case "oracle: jobs-deterministic" `Quick
      test_jobs_deterministic;
    QCheck_alcotest.to_alcotest qcheck_oracle;
    Alcotest.test_case "psu: structural candidates" `Quick
      test_psu_structural_candidates;
    Alcotest.test_case "psu: diagnosis == injection FMEA" `Quick
      test_psu_diagnosis_matches_injection;
    Alcotest.test_case "psu: jobs-identical" `Quick test_psu_jobs_identical;
    Alcotest.test_case "cyclic diagram diagnosis" `Quick
      test_cyclic_diagram_diagnosis;
    Alcotest.test_case "unknown output" `Quick test_unknown_output;
    Alcotest.test_case "double-point cut sets" `Quick
      test_double_point_cut_sets;
    Alcotest.test_case "cut-set routes agree" `Quick test_cut_set_routes_agree;
    Alcotest.test_case "integrity propagation" `Quick
      test_integrity_violations;
  ]
