(* Tests for model differencing and change-impact analysis. *)

open Ssam

let meta = Base.meta

let component ~id ?(fit = 10.0) ?(fms = []) () =
  Architecture.component ~fit ~failure_modes:fms ~meta:(meta ~name:id id) ()

let conn i a b =
  Architecture.relationship
    ~meta:(meta (Printf.sprintf "dconn%d" i))
    ~from_component:a ~to_component:b ()

(* A -> B -> C chain with D off to the side. *)
let model_of components relationships =
  Model.create
    ~component_packages:
      [
        Architecture.package ~meta:(meta ~name:"arch" "ap")
          (List.map (fun c -> Architecture.Component c) components
          @ List.map (fun r -> Architecture.Relationship r) relationships);
      ]
    ~meta:(meta "m") ()

let base_components () =
  [ component ~id:"A" (); component ~id:"B" (); component ~id:"C" (); component ~id:"D" () ]

let base_relationships = [ conn 0 "A" "B"; conn 1 "B" "C" ]

let base_model = model_of (base_components ()) base_relationships

let test_no_changes () =
  let impact = Diff.analyse ~old_model:base_model ~new_model:base_model in
  Alcotest.(check int) "no changes" 0 (List.length impact.Diff.changes);
  Alcotest.(check (list string)) "no impact" [] impact.Diff.impacted_components;
  Alcotest.(check bool) "no reanalysis" false impact.Diff.reanalysis_required

let test_added_component () =
  let new_model =
    model_of (component ~id:"E" () :: base_components ()) base_relationships
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model in
  Alcotest.(check bool) "added" true
    (List.exists (function Diff.Added "E" -> true | _ -> false) impact.Diff.changes);
  Alcotest.(check bool) "reanalysis" true impact.Diff.reanalysis_required

let test_removed_component_impacts_downstream () =
  let new_model =
    model_of
      (List.filter (fun c -> Architecture.component_id c <> "A") (base_components ()))
      [ conn 1 "B" "C" ]
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model in
  Alcotest.(check bool) "removed" true
    (List.exists (function Diff.Removed "A" -> true | _ -> false) impact.Diff.changes);
  (* A's former downstream partner B (and transitively C) is impacted. *)
  Alcotest.(check (list string)) "downstream of removed" [ "B"; "C" ]
    impact.Diff.impacted_components

let test_modified_fit_propagates () =
  let new_model =
    model_of
      (List.map
         (fun c ->
           if Architecture.component_id c = "A" then
             { c with Architecture.fit = 99.0 }
           else c)
         (base_components ()))
      base_relationships
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model in
  (match impact.Diff.changes with
  | [ Diff.Modified ("A", what) ] ->
      Alcotest.(check string) "names the field" "FIT" what
  | _ -> Alcotest.fail "expected exactly one modification");
  (* A changed; B and C are downstream; D is untouched. *)
  Alcotest.(check (list string)) "closure" [ "A"; "B"; "C" ]
    impact.Diff.impacted_components

let test_modified_failure_modes_detected () =
  let fm =
    Architecture.failure_mode ~meta:(meta "A:fm")
      ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ()
  in
  let new_model =
    model_of
      (List.map
         (fun c ->
           if Architecture.component_id c = "A" then
             { c with Architecture.failure_modes = [ fm ] }
           else c)
         (base_components ()))
      base_relationships
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model in
  Alcotest.(check bool) "failure modes flagged" true
    (List.exists
       (function Diff.Modified ("A", what) -> what = "failure modes" | _ -> false)
       impact.Diff.changes)

let test_hazard_changes_trigger_rehara () =
  let with_hazard =
    Model.create
      ~hazard_packages:
        [
          Hazard.package ~meta:(meta ~name:"hz" "hp")
            [
              Hazard.Situation
                (Hazard.situation ~meta:(meta ~name:"H-new" "hnew")
                   ~severity:Hazard.S2 ());
            ];
        ]
      ~component_packages:base_model.Model.component_packages
      ~meta:(meta "m") ()
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model:with_hazard in
  Alcotest.(check bool) "rehara" true impact.Diff.rehara_required;
  Alcotest.(check bool) "reanalysis" true impact.Diff.reanalysis_required;
  (* No component changed, so no component impact. *)
  Alcotest.(check (list string)) "components untouched" []
    impact.Diff.impacted_components

let test_requirement_changes_no_reanalysis () =
  let with_req =
    Model.create
      ~requirement_packages:
        [
          Requirement.package ~meta:(meta ~name:"reqs" "rp")
            [
              Requirement.Requirement
                (Requirement.requirement ~meta:(meta ~name:"R1" "r1") "new req");
            ];
        ]
      ~component_packages:base_model.Model.component_packages
      ~meta:(meta "m") ()
  in
  let impact = Diff.analyse ~old_model:base_model ~new_model:with_req in
  Alcotest.(check bool) "requirement change listed" true
    (List.exists (function Diff.Added "r1" -> true | _ -> false) impact.Diff.changes);
  Alcotest.(check bool) "no 4a re-run for requirements alone" false
    impact.Diff.reanalysis_required

let test_case_study_refinement_impact () =
  (* The DECISIVE iteration of Sec. V: deploying ECC on MC1 modifies MC1;
     nothing is downstream of the load, so the impact set is exactly
     {MC1}. *)
  let old_package = Decisive.Case_study.power_supply_ssam in
  let new_package =
    {
      old_package with
      Architecture.elements =
        List.map
          (function
            | Architecture.Component c
              when Architecture.component_id c = "MC1" ->
                Architecture.Component
                  {
                    c with
                    Architecture.safety_mechanisms =
                      [
                        Architecture.safety_mechanism
                          ~meta:(meta ~name:"ECC" "MC1:sm:ecc")
                          ~coverage_pct:99.0 ~cost:2.0 ();
                      ];
                  }
            | e -> e)
          old_package.Architecture.elements;
    }
  in
  let wrap p =
    Model.create ~component_packages:[ p ] ~meta:(meta "m") ()
  in
  let impact = Diff.analyse ~old_model:(wrap old_package) ~new_model:(wrap new_package) in
  (* MC1 changed; its only downstream neighbour in the wiring is the
     ground reference. *)
  Alcotest.(check (list string)) "MC1 and its ground" [ "GND1"; "MC1" ]
    impact.Diff.impacted_components;
  Alcotest.(check bool) "reanalysis required" true impact.Diff.reanalysis_required

(* ---------- properties ---------- *)

(* Random flat models over a fixed id alphabet. *)
let gen_model =
  let open QCheck.Gen in
  let ids = [ "A"; "B"; "C"; "D"; "E"; "F" ] in
  let* n = int_range 1 6 in
  let chosen = List.filteri (fun i _ -> i < n) ids in
  let* fits = list_size (return n) (float_range 1.0 500.0) in
  let components =
    List.map2 (fun id fit -> component ~id ~fit ()) chosen fits
  in
  let* rels =
    list_size (int_range 0 8)
      (let* a = oneofl chosen in
       let* b = oneofl chosen in
       return (a, b))
  in
  let relationships =
    List.mapi (fun i (a, b) -> conn i a b)
      (List.filter (fun (a, b) -> a <> b) rels)
  in
  return (model_of components relationships)

let prop_self_diff_empty =
  QCheck.Test.make ~count:100 ~name:"diff of a model with itself is empty"
    (QCheck.make gen_model) (fun m ->
      let impact = Diff.analyse ~old_model:m ~new_model:m in
      impact.Diff.changes = []
      && impact.Diff.impacted_components = []
      && (not impact.Diff.reanalysis_required)
      && not impact.Diff.rehara_required)

(* A deterministic permutation driven by the seed list. *)
let permute seeds l =
  List.fold_left
    (fun acc seed ->
      let n = List.length acc in
      if n < 2 then acc
      else
        let k = abs seed mod n in
        let item = List.nth acc k in
        item :: List.filteri (fun i _ -> i <> k) acc)
    l seeds

let prop_add_remove_order_independent =
  QCheck.Test.make ~count:100
    ~name:"Added/Removed verdicts survive element reordering"
    QCheck.(small_list int)
    (fun seeds ->
      (* old = A..D; new = (B..D + E) reordered: exactly one Added "A"
         missing, one Added "E", whatever the storage order. *)
      let news =
        permute seeds
          (component ~id:"E" ()
          :: List.filter
               (fun c -> Architecture.component_id c <> "A")
               (base_components ()))
      in
      let new_model = model_of news (permute seeds base_relationships) in
      let impact = Diff.analyse ~old_model:base_model ~new_model in
      let added =
        List.filter_map
          (function Diff.Added id -> Some id | _ -> None)
          impact.Diff.changes
      in
      let removed =
        List.filter_map
          (function Diff.Removed id -> Some id | _ -> None)
          impact.Diff.changes
      in
      List.sort String.compare added = [ "E" ]
      && List.sort String.compare removed = [ "A" ])

let test_cycle_closure_terminates () =
  (* A → B → C → A with D off-cycle: the downstream closure of a change
     to A must traverse the cycle once and stop. *)
  let cyclic rels = model_of (base_components ()) rels in
  let rels = [ conn 0 "A" "B"; conn 1 "B" "C"; conn 2 "C" "A" ] in
  let new_model =
    model_of
      (List.map
         (fun c ->
           if Architecture.component_id c = "A" then
             { c with Architecture.fit = 77.0 }
           else c)
         (base_components ()))
      rels
  in
  let impact = Diff.analyse ~old_model:(cyclic rels) ~new_model in
  Alcotest.(check (list string))
    "cycle closure is the whole cycle, D untouched" [ "A"; "B"; "C" ]
    impact.Diff.impacted_components

let suite =
  [
    Alcotest.test_case "no changes" `Quick test_no_changes;
    QCheck_alcotest.to_alcotest prop_self_diff_empty;
    QCheck_alcotest.to_alcotest prop_add_remove_order_independent;
    Alcotest.test_case "connection cycle closure" `Quick
      test_cycle_closure_terminates;
    Alcotest.test_case "added component" `Quick test_added_component;
    Alcotest.test_case "removed impacts downstream" `Quick
      test_removed_component_impacts_downstream;
    Alcotest.test_case "modified FIT propagates" `Quick test_modified_fit_propagates;
    Alcotest.test_case "modified failure modes" `Quick
      test_modified_failure_modes_detected;
    Alcotest.test_case "hazard changes trigger re-HARA" `Quick
      test_hazard_changes_trigger_rehara;
    Alcotest.test_case "requirement-only changes" `Quick
      test_requirement_changes_no_reanalysis;
    Alcotest.test_case "case-study refinement impact" `Quick
      test_case_study_refinement_impact;
  ]
