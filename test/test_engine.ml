(* The incremental re-analysis engine: fingerprints, the artefact cache,
   and the pipeline's central promise — warm results are bit-identical to
   cold ones, they just cost fewer solves. *)

let fp_hex = Engine.Fingerprint.to_hex

(* ---------- fingerprints ---------- *)

(* Fresh structurally-equal values each call, so equal fingerprints prove
   content addressing rather than physical sharing. *)
let mk_diagram ?(volts = 5.0) ?(henries = 1e-3) () =
  let open Blockdiag.Diagram in
  diagram ~name:"fp_psu"
    [
      block ~id:"DC1" ~block_type:"vsource"
        ~parameters:[ ("volts", P_num volts) ]
        ();
      block ~id:"D1" ~block_type:"diode" ();
      block ~id:"L1" ~block_type:"inductor"
        ~parameters:[ ("henries", P_num henries) ]
        ();
      block ~id:"CS1" ~block_type:"current_sensor" ();
      block ~id:"MC1" ~block_type:"microcontroller"
        ~parameters:[ ("ohms", P_num 100.0) ]
        ();
      block ~id:"GND1" ~block_type:"ground"
        ~ports:[ { port_name = "a"; port_kind = Conserving } ]
        ();
    ]
    ~connections:
      [
        connect ("DC1", "a") ("D1", "a");
        connect ("D1", "b") ("L1", "a");
        connect ("L1", "b") ("CS1", "a");
        connect ("CS1", "b") ("MC1", "a");
        connect ("MC1", "b") ("GND1", "a");
        connect ("DC1", "b") ("GND1", "a");
      ]

let test_fingerprint_diagram () =
  Alcotest.(check string)
    "structurally equal diagrams share a fingerprint"
    (fp_hex (Engine.Fingerprint.diagram (mk_diagram ())))
    (fp_hex (Engine.Fingerprint.diagram (mk_diagram ())));
  Alcotest.(check bool)
    "a parameter edit moves the fingerprint" false
    (Engine.Fingerprint.equal
       (Engine.Fingerprint.diagram (mk_diagram ()))
       (Engine.Fingerprint.diagram (mk_diagram ~volts:5.1 ())))

let test_fingerprint_reliability_order_insensitive () =
  let entries = Reliability.Reliability_model.entries Reliability.Reliability_model.table_ii in
  let forward = Reliability.Reliability_model.of_entries entries in
  let backward = Reliability.Reliability_model.of_entries (List.rev entries) in
  Alcotest.(check string)
    "entry storage order does not matter"
    (fp_hex (Engine.Fingerprint.reliability_model forward))
    (fp_hex (Engine.Fingerprint.reliability_model backward));
  let bumped =
    match entries with
    | e :: rest ->
        Reliability.Reliability_model.of_entries
          ({ e with Reliability.Reliability_model.fit = e.Reliability.Reliability_model.fit +. 1.0 } :: rest)
    | [] -> assert false
  in
  Alcotest.(check bool)
    "a FIT edit moves the fingerprint" false
    (Engine.Fingerprint.equal
       (Engine.Fingerprint.reliability_model forward)
       (Engine.Fingerprint.reliability_model bumped))

let test_fingerprint_subtree_locality () =
  (* Editing one child changes the parent's Merkle root but not the
     sibling's subtree hash. *)
  let child ~id ~fit =
    Ssam.Architecture.component ~fit ~meta:(Ssam.Base.meta ~name:id id) ()
  in
  let parent a_fit =
    Ssam.Architecture.component
      ~children:[ child ~id:"a" ~fit:a_fit; child ~id:"b" ~fit:2.0 ]
      ~meta:(Ssam.Base.meta ~name:"p" "p") ()
  in
  let p1 = parent 1.0 and p2 = parent 9.0 in
  Alcotest.(check bool)
    "parent fingerprint moves" false
    (Engine.Fingerprint.equal
       (Engine.Fingerprint.ssam_component p1)
       (Engine.Fingerprint.ssam_component p2));
  let sibling p =
    List.nth p.Ssam.Architecture.children 1
  in
  Alcotest.(check string)
    "sibling subtree hash is untouched"
    (fp_hex (Engine.Fingerprint.ssam_component (sibling p1)))
    (fp_hex (Engine.Fingerprint.ssam_component (sibling p2)))

(* ---------- cache ---------- *)

let key_of s = Engine.Cache.key ~stage:"test" ~version:1 (Engine.Fingerprint.leaf s)

let test_cache_lru () =
  let c = Engine.Cache.create ~capacity:2 () in
  let k1 = key_of "one" and k2 = key_of "two" and k3 = key_of "three" in
  Engine.Cache.store c k1 "1";
  Engine.Cache.store c k2 "2";
  (* Touch k1 so k2 is the least recently used... *)
  Alcotest.(check bool) "k1 found" true (Engine.Cache.find c k1 <> None);
  Engine.Cache.store c k3 "3";
  Alcotest.(check int) "capacity held" 2 (Engine.Cache.memory_count c);
  Alcotest.(check bool) "k1 kept (recently used)" true (Engine.Cache.in_memory c k1);
  Alcotest.(check bool) "k2 evicted (LRU)" false (Engine.Cache.in_memory c k2);
  Alcotest.(check bool) "k3 kept (new)" true (Engine.Cache.in_memory c k3)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "same-engine-test-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

let test_cache_disk_roundtrip () =
  with_temp_dir (fun dir ->
      let k = key_of "persist" in
      let c1 = Engine.Cache.create ~dir () in
      Engine.Cache.store c1 k "the artefact";
      (* A fresh cache on the same directory sees the entry from disk. *)
      let c2 = Engine.Cache.create ~dir () in
      (match Engine.Cache.find c2 k with
      | Some (`Disk payload) ->
          Alcotest.(check string) "payload survives" "the artefact" payload
      | Some (`Memory _) -> Alcotest.fail "expected a disk hit"
      | None -> Alcotest.fail "expected a hit");
      (* ...and the disk hit was promoted into memory. *)
      Alcotest.(check bool) "promoted" true (Engine.Cache.in_memory c2 k))

(* The serve daemon hits one cache from many request threads at once;
   domains racing store/find/evict must neither crash nor break the
   capacity invariant, and a key that was just stored by the same domain
   must be readable (no lost updates within a domain). *)
let test_cache_concurrent_access () =
  let c = Engine.Cache.create ~capacity:16 () in
  let domains = 4 and per_domain = 200 in
  let errors = Atomic.make 0 in
  let worker d =
    for i = 0 to per_domain - 1 do
      (* Overlapping key ranges force eviction races: 32 hot keys over a
         16-slot cache. *)
      let k = key_of (Printf.sprintf "hot-%d" ((d + i) mod 32)) in
      let payload = Printf.sprintf "%d/%d" d i in
      Engine.Cache.store c k payload;
      (match Engine.Cache.find c k with
      | Some (`Memory p) | Some (`Disk p) ->
          (* Another domain may have overwritten it, but whatever is
             there must be a well-formed payload for this key. *)
          if not (String.contains p '/') then Atomic.incr errors
      | None ->
          (* Evicted between store and find under pressure — legal. *)
          ());
      ignore (Engine.Cache.memory_count c)
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (fun () -> worker d)) in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no torn payloads" 0 (Atomic.get errors);
  Alcotest.(check bool) "capacity invariant held" true
    (Engine.Cache.memory_count c <= 16)

let test_cache_corruption_recovers () =
  with_temp_dir (fun dir ->
      let computes = ref 0 in
      let run () =
        let p = Engine.Pipeline.create ~cache:(Engine.Cache.create ~dir ()) () in
        let v =
          Engine.Pipeline.memo p ~stage:"answer"
            ~key:(Engine.Fingerprint.leaf "life")
            (fun () -> incr computes; 42)
        in
        (p, v)
      in
      let p1, v1 = run () in
      Alcotest.(check int) "computed once" 1 !computes;
      Alcotest.(check int) "value" 42 v1;
      let file =
        match
          Engine.Cache.disk_file (Engine.Pipeline.cache p1)
            (Engine.Cache.key ~stage:"answer" ~version:1
               (Engine.Fingerprint.leaf "life"))
        with
        | Some f -> f
        | None -> Alcotest.fail "disk-backed cache must name its file"
      in
      Alcotest.(check bool) "entry written" true (Sys.file_exists file);
      (* Mangle the payload: a fresh pipeline must recompute, not crash or
         return garbage. *)
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 file in
      output_string oc "same-cache/1\ndeadbeef\ncorrupt";
      close_out oc;
      let _, v2 = run () in
      Alcotest.(check int) "recomputed after corruption" 2 !computes;
      Alcotest.(check int) "same value" 42 v2;
      (* Truncate to nothing: again a recompute. *)
      let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 file in
      close_out oc;
      let _, v3 = run () in
      Alcotest.(check int) "recomputed after truncation" 3 !computes;
      Alcotest.(check int) "same value again" 42 v3;
      (* Un-mangled entries do hit. *)
      let _, v4 = run () in
      Alcotest.(check int) "clean entry is reused" 3 !computes;
      Alcotest.(check int) "hit value" 42 v4)

(* ---------- pipeline: warm == cold ---------- *)

let default_reliability = Reliability.Reliability_model.table_ii

let analyse_cold ?(options = Fmea.Injection_fmea.default_options) diagram
    reliability =
  let conv = Blockdiag.To_netlist.convert diagram in
  Fmea.Injection_fmea.analyse ~options
    ~element_types:conv.Blockdiag.To_netlist.block_types
    conv.Blockdiag.To_netlist.netlist reliability

let table = Alcotest.testable Fmea.Table.pp Fmea.Table.equal

let test_warm_equals_cold_basic () =
  let diagram = mk_diagram () in
  let cold = analyse_cold diagram default_reliability in
  let e = Engine.Pipeline.create () in
  let warm1 =
    Engine.Pipeline.injection_fmea e
      ~options:Fmea.Injection_fmea.default_options diagram default_reliability
  in
  Alcotest.check table "first engine run equals cold" cold warm1;
  let warm2 =
    Engine.Pipeline.injection_fmea e
      ~options:Fmea.Injection_fmea.default_options diagram default_reliability
  in
  Alcotest.check table "cache hit equals cold" cold warm2;
  let s = Engine.Pipeline.snapshot e in
  Alcotest.(check bool) "second run was a hit" true (Engine.Stats.hits s >= 1)

(* The property at the heart of the engine: after a random single edit,
   re-analysing with [previous] supplied is bit-identical to a cold
   analysis of the edited inputs — whatever the edit and the job count. *)
let prop_warm_equals_cold =
  let open QCheck in
  let gen =
    Gen.(
      let* volts = float_range 3.0 12.0 in
      let* henries = float_range 1e-4 1e-2 in
      let* edit =
        oneof
          [
            (* Reliability edit: a component type's FIT worsens — the
               row-reuse path. *)
            (let* delta = float_range 1.0 50.0 in
             let* ty = oneofl [ "inductor"; "diode"; "microcontroller" ] in
             return (`Fit (ty, delta)));
            (* Electrical edit: the golden run moves — no reuse at all. *)
            (let* v2 = float_range 3.0 12.0 in
             return (`Volts v2));
            (let* h2 = float_range 1e-4 1e-2 in
             return (`Henries h2));
          ]
      in
      let* jobs = oneofl [ 1; 4 ] in
      return (volts, henries, edit, jobs))
  in
  Test.make ~count:25 ~name:"warm re-analysis is bit-identical to cold"
    (make gen) (fun (volts, henries, edit, jobs) ->
      let saved = Exec.default_jobs () in
      Fun.protect
        ~finally:(fun () -> Exec.set_default_jobs saved)
        (fun () ->
          Exec.set_default_jobs jobs;
          let d1 = mk_diagram ~volts ~henries () in
          let r1 = default_reliability in
          let d2, r2 =
            match edit with
            | `Volts v -> (mk_diagram ~volts:v ~henries (), r1)
            | `Henries h -> (mk_diagram ~volts ~henries:h (), r1)
            | `Fit (ty, delta) -> (
                ( d1,
                  match Reliability.Reliability_model.find r1 ty with
                  | Some e ->
                      Reliability.Reliability_model.add r1
                        {
                          e with
                          Reliability.Reliability_model.fit =
                            e.Reliability.Reliability_model.fit +. delta;
                        }
                  | None -> r1 ))
          in
          let engine = Engine.Pipeline.create () in
          let prev_table =
            Engine.Pipeline.injection_fmea engine
              ~options:Fmea.Injection_fmea.default_options d1 r1
          in
          let warm =
            Engine.Pipeline.injection_fmea engine
              ~previous:
                {
                  Engine.Pipeline.prev_diagram = d1;
                  prev_reliability = r1;
                  prev_table;
                }
              ~options:Fmea.Injection_fmea.default_options d2 r2
          in
          let cold = analyse_cold d2 r2 in
          Fmea.Table.equal warm cold))

(* After a one-component reliability edit to System B, the warm run must
   do strictly fewer solves than the cold run — and reuse rows. *)
let test_system_b_fewer_solves () =
  let subject = Decisive.Systems.system_b in
  let diagram = subject.Decisive.Systems.diagram in
  let reliability = subject.Decisive.Systems.reliability in
  let options =
    {
      Fmea.Injection_fmea.default_options with
      exclude = [ "DC1"; "BAT1" ];
      monitored_sensors = Some [ "CS1"; "CS2"; "VS1" ];
    }
  in
  let edited =
    match Reliability.Reliability_model.find reliability "microcontroller" with
    | Some e ->
        Reliability.Reliability_model.add reliability
          {
            e with
            Reliability.Reliability_model.fit =
              e.Reliability.Reliability_model.fit +. 25.0;
          }
    | None -> Alcotest.fail "System B has a microcontroller entry"
  in
  let cold_engine = Engine.Pipeline.create () in
  let cold_table =
    Engine.Pipeline.injection_fmea cold_engine ~options diagram edited
  in
  let cold = Engine.Pipeline.snapshot cold_engine in
  let warm_engine = Engine.Pipeline.create () in
  let prev_table =
    Engine.Pipeline.injection_fmea warm_engine ~options diagram reliability
  in
  Engine.Stats.reset (Engine.Pipeline.stats warm_engine);
  let warm_table =
    Engine.Pipeline.injection_fmea warm_engine
      ~previous:
        {
          Engine.Pipeline.prev_diagram = diagram;
          prev_reliability = reliability;
          prev_table;
        }
      ~options diagram edited
  in
  let warm = Engine.Pipeline.snapshot warm_engine in
  Alcotest.check table "warm equals cold" cold_table warm_table;
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer solves (warm %d < cold %d)"
       (Engine.Stats.solves_performed warm)
       (Engine.Stats.solves_performed cold))
    true
    (Engine.Stats.solves_performed warm < Engine.Stats.solves_performed cold);
  Alcotest.(check bool) "rows were reused" true
    (warm.Engine.Stats.rows_reused > 0)

(* ---------- pipeline: search and path stages ---------- *)

let test_optimise_warm_equals_cold () =
  let fmea = Decisive.Case_study.fmea_via_injection () in
  let sm = Decisive.Case_study.sm_model in
  let target = Ssam.Requirement.ASIL_B in
  let cold_chosen, cold_front = Optimize.Search.optimise ~target fmea sm in
  let e = Engine.Pipeline.create () in
  let warm_chosen, warm_front = Engine.Pipeline.optimise e ~target fmea sm in
  Alcotest.(check bool) "chosen agrees" true
    (Option.equal Optimize.Search.equal_candidate cold_chosen warm_chosen);
  Alcotest.(check bool) "front agrees" true
    (List.equal Optimize.Search.equal_candidate cold_front warm_front);
  let _ = Engine.Pipeline.optimise e ~target fmea sm in
  let s = Engine.Pipeline.snapshot e in
  Alcotest.(check bool) "re-search hits the cache" true
    (Engine.Stats.hits s >= 1)

let test_api_refine_warm_equals_cold () =
  let fmea = Decisive.Case_study.fmea_via_injection () in
  let sm = Decisive.Case_study.sm_model in
  let target = Ssam.Requirement.ASIL_B in
  let cold = Decisive.Api.refine ~target fmea sm in
  let e = Engine.Pipeline.create () in
  let warm = Decisive.Api.refine ~engine:e ~target fmea sm in
  Alcotest.check table "refined tables agree" cold.Decisive.Api.refined_table
    warm.Decisive.Api.refined_table;
  Alcotest.(check (float 0.0)) "achieved SPFM agrees"
    cold.Decisive.Api.achieved_spfm warm.Decisive.Api.achieved_spfm

let test_api_routes_warm_equals_cold () =
  let diagram = Decisive.Case_study.power_supply_diagram in
  let reliability = Decisive.Case_study.reliability_model in
  List.iter
    (fun route ->
      let cold =
        Decisive.Api.analyse ~route ~exclude:[ "DC1" ] diagram reliability
      in
      let e = Engine.Pipeline.create () in
      let warm =
        Decisive.Api.analyse ~engine:e ~route ~exclude:[ "DC1" ] diagram
          reliability
      in
      Alcotest.check table "route agrees with cold" cold warm;
      let again =
        Decisive.Api.analyse ~engine:e ~route ~exclude:[ "DC1" ] diagram
          reliability
      in
      Alcotest.check table "route cache hit agrees" cold again;
      Alcotest.(check bool) "second run hit" true
        (Engine.Stats.hits (Engine.Pipeline.snapshot e) >= 1))
    [ Decisive.Api.Via_injection; Decisive.Api.Via_ssam_paths; Decisive.Api.Via_fta ]

(* ---------- pipeline: assurance claims ---------- *)

let test_assurance_claim_reuse () =
  with_temp_dir (fun dir ->
      let csv = Filename.concat dir "evidence.csv" in
      let write rows =
        let oc = open_out csv in
        output_string oc "name,value\n";
        List.iter (fun r -> output_string oc (r ^ "\n")) rows;
        close_out oc
      in
      write [ "a,1"; "b,2" ];
      let case =
        let open Assurance.Sacm in
        {
          case_name = "claim-reuse";
          root =
            goal ~id:"G1" "the evidence is plentiful"
              ~supported_by:
                [
                  solution ~id:"Sn1" "row count"
                    ~artifact:
                      (artifact ~query:"return Artifact.rows.size() >= 2;"
                         ~location:csv ~driver:"csv" ());
                ];
        }
      in
      let e = Engine.Pipeline.create () in
      let r1 = Engine.Pipeline.evaluate_case e case in
      Alcotest.(check bool) "holds with two rows" true
        (r1.Assurance.Eval.overall = Assurance.Eval.Holds);
      (* Same file: the claim verdict comes from the memo. *)
      let _ = Engine.Pipeline.evaluate_case e case in
      let s = Engine.Pipeline.snapshot e in
      Alcotest.(check bool) "unchanged artefact is a hit" true
        (Engine.Stats.hits s >= 1);
      (* Rewriting the evidence moves the artifact fingerprint, so the
         claim is re-evaluated — and the verdict flips. *)
      write [ "a,1" ];
      let r2 = Engine.Pipeline.evaluate_case e case in
      Alcotest.(check bool) "fails after the evidence shrank" true
        (r2.Assurance.Eval.overall = Assurance.Eval.Fails);
      (* The cold evaluator agrees both times. *)
      let cold = Assurance.Eval.evaluate case in
      Alcotest.(check bool) "warm verdict equals cold" true
        (cold.Assurance.Eval.overall = r2.Assurance.Eval.overall))

(* ---------- batch fleet ---------- *)

(* Six design variants cycle three electrical designs, so one warm
   engine must perform exactly three golden factorisations — strictly
   fewer than the six a cold fleet pays — while every per-variant table
   stays bit-identical to its standalone analysis. *)
let test_fleet_shares_golden () =
  let variants = Decisive.Case_study.design_variants ~count:6 () in
  let options = Decisive.Case_study.injection_options in
  let reliability = Decisive.Case_study.reliability_model in
  let engine = Engine.Pipeline.create () in
  let summary = Engine.Batch.run_fmea engine ~options variants reliability in
  let snap = Engine.Pipeline.snapshot engine in
  Alcotest.(check int) "three designs" 3 summary.Engine.Batch.f_distinct_designs;
  Alcotest.(check bool)
    (Printf.sprintf "fewer golden solves than variants (%d < 6)"
       snap.Engine.Stats.golden_solves)
    true
    (snap.Engine.Stats.golden_solves < List.length variants);
  Alcotest.(check int) "exactly one golden solve per design" 3
    snap.Engine.Stats.golden_solves;
  List.iter2
    (fun (label, diagram) (e : Engine.Batch.fmea_entry) ->
      Alcotest.(check string) "entries in input order" label
        e.Engine.Batch.b_label;
      let standalone =
        Engine.Pipeline.injection_fmea
          (Engine.Pipeline.create ())
          ~options diagram reliability
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s identical to standalone" label)
        true
        (Fmea.Table.equal standalone e.Engine.Batch.b_table))
    variants summary.Engine.Batch.f_entries;
  (* A second fleet over the same engine is pure cache hits: no new
     solves at all. *)
  let summary2 = Engine.Batch.run_fmea engine ~options variants reliability in
  let snap2 = Engine.Pipeline.snapshot engine in
  Alcotest.(check int) "no new golden solves" snap.Engine.Stats.golden_solves
    snap2.Engine.Stats.golden_solves;
  Alcotest.(check int) "no new classifications"
    snap.Engine.Stats.rows_classified snap2.Engine.Stats.rows_classified;
  Alcotest.(check bool) "cache hits recorded" true
    (Engine.Stats.hits snap2 >= List.length variants);
  List.iter2
    (fun (e1 : Engine.Batch.fmea_entry) (e2 : Engine.Batch.fmea_entry) ->
      Alcotest.(check bool) "second run identical" true
        (Fmea.Table.equal e1.Engine.Batch.b_table e2.Engine.Batch.b_table))
    summary.Engine.Batch.f_entries summary2.Engine.Batch.f_entries

(* ---------- scheduler-calibration persistence ---------- *)

let test_cost_state_persists () =
  with_temp_dir (fun dir ->
      let saved_overhead = Exec.Cost.dispatch_overhead_ns () in
      Fun.protect
        ~finally:(fun () ->
          Exec.Cost.set_dispatch_overhead_ns saved_overhead;
          Exec.Cost.reset ())
        (fun () ->
          let e1 =
            Engine.Pipeline.create ~cache:(Engine.Cache.create ~dir ()) ()
          in
          Exec.Cost.set_dispatch_overhead_ns 7_777.0;
          Exec.Cost.observe ~key:"persist.k" ~tasks:100 5_000_000.0;
          Engine.Pipeline.save_cost_state e1;
          Exec.Cost.reset ();
          Alcotest.(check bool) "estimates cleared by reset" true
            (Exec.Cost.estimate ~key:"persist.k" = None);
          (* A fresh pipeline over the same directory restores the
             calibration in [create]. *)
          let _e2 =
            Engine.Pipeline.create ~cache:(Engine.Cache.create ~dir ()) ()
          in
          Alcotest.(check (float 1e-9)) "overhead restored" 7_777.0
            (Exec.Cost.dispatch_overhead_ns ());
          match Exec.Cost.estimate ~key:"persist.k" with
          | Some est ->
              Alcotest.(check (float 1e-3)) "ns/task restored" 50_000.0
                est.Exec.Cost.ns_per_task
          | None -> Alcotest.fail "estimate not restored"))

let suite =
  [
    Alcotest.test_case "fingerprint: diagram" `Quick test_fingerprint_diagram;
    Alcotest.test_case "fingerprint: reliability order" `Quick
      test_fingerprint_reliability_order_insensitive;
    Alcotest.test_case "fingerprint: subtree locality" `Quick
      test_fingerprint_subtree_locality;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache: disk round-trip" `Quick test_cache_disk_roundtrip;
    Alcotest.test_case "cache: corruption recovery" `Quick
      test_cache_corruption_recovers;
    Alcotest.test_case "cache: concurrent domains" `Quick
      test_cache_concurrent_access;
    Alcotest.test_case "pipeline: warm equals cold" `Quick
      test_warm_equals_cold_basic;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    Alcotest.test_case "pipeline: System B fewer solves" `Quick
      test_system_b_fewer_solves;
    Alcotest.test_case "pipeline: optimise warm equals cold" `Quick
      test_optimise_warm_equals_cold;
    Alcotest.test_case "api: refine through the engine" `Quick
      test_api_refine_warm_equals_cold;
    Alcotest.test_case "api: all routes through the engine" `Quick
      test_api_routes_warm_equals_cold;
    Alcotest.test_case "fleet: shared golden, identical tables" `Quick
      test_fleet_shares_golden;
    Alcotest.test_case "fleet: cost state persists" `Quick
      test_cost_state_persists;
    Alcotest.test_case "pipeline: assurance claim reuse" `Quick
      test_assurance_claim_reuse;
  ]
