(* The parallel execution substrate and its central promise: a parallel
   run is bit-identical to the sequential one.  Pool mechanics first,
   then end-to-end determinism of every parallelised kernel at
   SAME_JOBS in {1, 2, 4}, then the incremental SPFM evaluator against
   the reference scorer. *)

let with_jobs n f =
  let saved = Exec.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Exec.set_default_jobs saved)
    (fun () ->
      Exec.set_default_jobs n;
      f ())

(* ---------- pool mechanics ---------- *)

let test_parallel_map () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let xs = List.init n Fun.id in
          Alcotest.(check (list int))
            (Printf.sprintf "map jobs=%d n=%d" jobs n)
            (List.map (fun x -> (x * x) + 1) xs)
            (Exec.parallel_map ~jobs (fun x -> (x * x) + 1) xs))
        [ 0; 1; 7; 1000 ])
    [ 1; 2; 4 ]

let test_parallel_chunks () =
  let xs = List.init 503 Fun.id in
  List.iter
    (fun chunk_size ->
      Alcotest.(check (list int))
        (Printf.sprintf "chunks size=%d" chunk_size)
        (List.map succ xs)
        (Exec.parallel_chunks ~jobs:4 ~chunk_size succ xs))
    [ 1; 3; 64; 1000 ]

let test_parallel_iter () =
  let counter = Atomic.make 0 in
  Exec.parallel_iter ~jobs:4
    (fun x -> ignore (Atomic.fetch_and_add counter x))
    (List.init 100 Fun.id);
  Alcotest.(check int) "all effects ran" 4950 (Atomic.get counter)

let test_nested () =
  (* A task that itself fans out must run its sub-batch inline rather
     than deadlock on the shared pool. *)
  let rows =
    Exec.parallel_map ~jobs:4
      (fun i -> Exec.parallel_map ~jobs:4 (fun j -> i * j) (List.init 10 Fun.id))
      (List.init 10 Fun.id)
  in
  Alcotest.(check (list (list int)))
    "nested map"
    (List.init 10 (fun i -> List.init 10 (fun j -> i * j)))
    rows

let test_exception_determinism () =
  (* Whatever the schedule, the caller sees the lowest-index failure. *)
  for _ = 1 to 20 do
    match
      Exec.parallel_map ~jobs:4
        (fun i -> if i >= 5 then failwith (string_of_int i) else i)
        (List.init 64 Fun.id)
    with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure m -> Alcotest.(check string) "lowest index wins" "5" m
  done

let test_pool_reuse () =
  (* Many batches through one pool: workers wake, drain and sleep again. *)
  let pool = Exec.Pool.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "jobs" 4 (Exec.Pool.jobs pool);
      for round = 1 to 50 do
        let out = Array.make 20 0 in
        Exec.Pool.run pool 20 (fun i -> out.(i) <- i * round);
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 20 (fun i -> i * round))
          out
      done)

let test_budget_concurrent () =
  (* Charges and releases from many domains never corrupt the counter
     and never over-commit. *)
  let b = Store.Budget.create ~max_bytes:(50 * Store.Budget.bytes_per_element) in
  Exec.parallel_iter ~jobs:4
    (fun _ ->
      match Store.Budget.charge_elements b 5 with
      | () -> Store.Budget.release_elements b 5
      | exception Store.Budget.Overflow _ -> ())
    (List.init 400 Fun.id);
  Alcotest.(check int) "balanced" 0 (Store.Budget.used_bytes b)

(* ---------- kernel determinism across SAME_JOBS ---------- *)

let case_study_types =
  (Blockdiag.To_netlist.convert Decisive.Case_study.power_supply_diagram)
    .Blockdiag.To_netlist.block_types

let test_injection_fmea_determinism () =
  let analyse () =
    Fmea.Injection_fmea.analyse ~options:Decisive.Case_study.injection_options
      ~element_types:case_study_types Decisive.Case_study.power_supply_netlist
      Decisive.Case_study.reliability_model
  in
  let baseline = with_jobs 1 analyse in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d identical" jobs)
        true
        (Fmea.Table.equal baseline (with_jobs jobs analyse)))
    [ 2; 4 ]

let test_search_determinism () =
  let table = Decisive.Case_study.fmea_via_injection () in
  let sms = Decisive.Case_study.sm_model in
  let exhaustive () =
    Optimize.Search.exhaustive ~component_types:case_study_types table sms
  in
  let greedy () =
    Optimize.Search.greedy ~component_types:case_study_types
      ~target:Ssam.Requirement.ASIL_B table sms
  in
  let base_ex = with_jobs 1 exhaustive in
  let base_gr = with_jobs 1 greedy in
  Alcotest.(check bool) "exhaustive non-trivial" true (List.length base_ex > 1);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "exhaustive jobs=%d identical" jobs)
        true
        (List.equal Optimize.Search.equal_candidate base_ex
           (with_jobs jobs exhaustive));
      Alcotest.(check bool)
        (Printf.sprintf "greedy jobs=%d identical" jobs)
        true
        (Optimize.Search.equal_candidate base_gr (with_jobs jobs greedy)))
    [ 2; 4 ]

let test_store_determinism () =
  let spec = { Store.Synthetic.set_name = "det"; target_elements = 5689 } in
  let lazy_eval () = Store.Lazy_store.evaluate spec in
  let full_eval () =
    let budget = Store.Budget.create ~max_bytes:(10 * 1024 * 1024) in
    match Store.Full_store.load ~budget spec with
    | Ok l ->
        let v = Store.Full_store.evaluate l in
        Store.Full_store.release ~budget l;
        v
    | Error _ -> Alcotest.fail "load failed"
  in
  let base_lazy = with_jobs 1 lazy_eval in
  let base_full = with_jobs 1 full_eval in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "lazy jobs=%d identical" jobs)
        true
        (base_lazy = with_jobs jobs lazy_eval);
      Alcotest.(check int)
        (Printf.sprintf "full jobs=%d identical" jobs)
        base_full (with_jobs jobs full_eval))
    [ 2; 4 ]

let test_prepared_classification () =
  (* classify_prepared over a shared golden run agrees with the one-off
     classify_single. *)
  let netlist = Decisive.Case_study.power_supply_netlist in
  let options = Decisive.Case_study.injection_options in
  let prepared = Fmea.Injection_fmea.prepare ~options netlist in
  List.iter
    (fun (id, fault) ->
      let via_prepared =
        Fmea.Injection_fmea.classify_prepared prepared ~element_id:id fault
      in
      let via_single =
        Fmea.Injection_fmea.classify_single ~options netlist ~element_id:id
          fault
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s agrees" id)
        true
        (via_prepared = via_single))
    [ ("D1", Circuit.Fault.Short_circuit); ("L1", Circuit.Fault.Open_circuit) ]

(* ---------- incremental evaluator vs the reference scorer ---------- *)

let prop_incremental_evaluator =
  let table = Decisive.Case_study.fmea_via_injection () in
  let slots =
    Optimize.Search.slots ~component_types:case_study_types table
      Decisive.Case_study.sm_model
  in
  let ev = Optimize.Search.make_evaluator table in
  let n_slots = List.length slots in
  QCheck.Test.make ~count:100
    ~name:"incremental evaluator matches Fmeda.apply + Metrics.spfm"
    QCheck.(list_of_size (QCheck.Gen.return n_slots) (int_range 0 1000))
    (fun picks ->
      (* One pick per slot: modulo chooses a mechanism or "deploy
         nothing", like the exhaustive expansion does. *)
      let deployments =
        List.concat
          (List.map2
             (fun (s : Optimize.Search.slot) pick ->
               let n = List.length s.Optimize.Search.slot_options in
               match pick mod (n + 1) with
               | 0 -> []
               | k ->
                   [
                     Fmea.Fmeda.deploy
                       ~component:s.Optimize.Search.slot_component
                       ~failure_mode:s.Optimize.Search.slot_failure_mode
                       (List.nth s.Optimize.Search.slot_options (k - 1));
                   ])
             slots picks)
      in
      Optimize.Search.equal_candidate
        (Optimize.Search.evaluate table deployments)
        (Optimize.Search.evaluate_with ev deployments))

(* ---------- SAME_JOBS parsing ---------- *)

(* A malformed SAME_JOBS must keep the documented fallback (ignored) but
   say so once on the Logs warning channel. *)
let test_malformed_same_jobs_warns () =
  let saved = Sys.getenv_opt "SAME_JOBS" in
  (* putenv cannot unset: restore to the recommended-count default, which
     leaves [default_jobs]'s result unchanged when the variable was
     absent. *)
  let restore () =
    Unix.putenv "SAME_JOBS"
      (match saved with
      | Some v -> v
      | None -> string_of_int (Stdlib.max 1 (Domain.recommended_domain_count ())))
  in
  let saved_reporter = Logs.reporter () in
  let saved_level = Logs.level () in
  let warnings = ref [] in
  Logs.set_level (Some Logs.Warning);
  Logs.set_reporter
    {
      Logs.report =
        (fun _src level ~over k msgf ->
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.kasprintf
                (fun s ->
                  if level = Logs.Warning then warnings := s :: !warnings;
                  over ();
                  k ())
                fmt));
    };
  Fun.protect
    ~finally:(fun () ->
      restore ();
      Logs.set_reporter saved_reporter;
      Logs.set_level saved_level)
    (fun () ->
      Unix.putenv "SAME_JOBS" "three-ish";
      Alcotest.(check (option int))
        "malformed value ignored" None (Exec.env_jobs ());
      Alcotest.(check int) "one warning" 1 (List.length !warnings);
      Alcotest.(check bool) "warning names the value" true
        (let s = List.hd !warnings in
         let nn = String.length "three-ish" in
         let rec at i =
           i + nn <= String.length s
           && (String.sub s i nn = "three-ish" || at (i + 1))
         in
         at 0);
      (* Same malformed value again: no second warning. *)
      ignore (Exec.env_jobs ());
      Alcotest.(check int) "warn once per value" 1 (List.length !warnings);
      (* A well-formed value parses and does not warn. *)
      Unix.putenv "SAME_JOBS" " 4 ";
      Alcotest.(check (option int))
        "well-formed value parsed" (Some 4) (Exec.env_jobs ());
      Alcotest.(check int) "no extra warning" 1 (List.length !warnings))

(* ---------- parallel_chunks edge cases ---------- *)

let test_parallel_chunks_edges () =
  List.iter
    (fun c ->
      Alcotest.check_raises
        (Printf.sprintf "chunk_size=%d rejected" c)
        (Invalid_argument
           (Printf.sprintf "Exec.parallel_chunks: chunk_size %d (must be >= 1)"
              c))
        (fun () ->
          ignore (Exec.parallel_chunks ~jobs:4 ~chunk_size:c succ [ 1; 2; 3 ])))
    [ 0; -3 ];
  Alcotest.(check (list int))
    "empty list" []
    (Exec.parallel_chunks ~jobs:4 succ []);
  (* jobs far above the element count: no empty chunks, no degenerate
     dispatch, order preserved. *)
  List.iter
    (fun n ->
      let xs = List.init n Fun.id in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=64 n=%d" n)
        (List.map succ xs)
        (Exec.parallel_chunks ~jobs:64 succ xs))
    [ 1; 2; 3; 5; 63; 64; 65 ]

(* ---------- the cost model's decision policy ---------- *)

let with_pinned_cost f =
  let saved_overhead = Exec.Cost.dispatch_overhead_ns () in
  Fun.protect
    ~finally:(fun () ->
      Exec.Cost.set_assumed_cores None;
      Exec.Cost.set_dispatch_overhead_ns saved_overhead)
    (fun () ->
      Exec.Cost.set_assumed_cores (Some 8);
      Exec.Cost.set_dispatch_overhead_ns 50_000.0;
      f ())

let test_cost_decide () =
  with_pinned_cost (fun () ->
      let est ns = { Exec.Cost.ns_per_task = ns; samples = 4 } in
      (* 10 tasks x 100 ns: the saving is under a microsecond against a
         100 us overhead budget. *)
      Alcotest.(check bool)
        "tiny batch stays sequential" true
        (Exec.Cost.decide ~tasks:10 ~cost:(est 100.0) ~jobs:8
        = Exec.Cost.Sequential);
      (match Exec.Cost.decide ~tasks:1000 ~cost:(est 1_000_000.0) ~jobs:8 with
      | Exec.Cost.Parallel { chunk_size } ->
          Alcotest.(check bool) "chunk positive" true (chunk_size >= 1)
      | Exec.Cost.Sequential ->
          Alcotest.fail "1000 x 1 ms should go parallel");
      (* One worker can never save anything. *)
      Alcotest.(check bool)
        "jobs=1 sequential" true
        (Exec.Cost.decide ~tasks:1_000_000 ~cost:(est 1e9) ~jobs:1
        = Exec.Cost.Sequential))

let test_cost_decide_monotonic () =
  with_pinned_cost (fun () ->
      let parallel tasks ns =
        match
          Exec.Cost.decide ~tasks
            ~cost:{ Exec.Cost.ns_per_task = ns; samples = 3 }
            ~jobs:4
        with
        | Exec.Cost.Parallel _ -> true
        | Exec.Cost.Sequential -> false
      in
      let tasks = [ 2; 8; 32; 128; 512; 2048 ] in
      let costs = [ 50.0; 500.0; 5_000.0; 50_000.0; 500_000.0 ] in
      (* More tasks or higher per-task cost never flips a parallel
         verdict back to sequential. *)
      List.iter
        (fun t ->
          List.iter
            (fun c ->
              if parallel t c then begin
                Alcotest.(check bool)
                  (Printf.sprintf "2x tasks keeps parallel (t=%d c=%g)" t c)
                  true
                  (parallel (2 * t) c);
                Alcotest.(check bool)
                  (Printf.sprintf "2x cost keeps parallel (t=%d c=%g)" t c)
                  true
                  (parallel t (2.0 *. c))
              end;
              Alcotest.(check bool)
                "chunk >= 1" true
                (Exec.Cost.chunk_for ~tasks:t ~jobs:4 c >= 1))
            costs)
        tasks)

(* ---------- cost-state export/import round-trip ---------- *)

let test_cost_state_roundtrip () =
  let saved_overhead = Exec.Cost.dispatch_overhead_ns () in
  Fun.protect
    ~finally:(fun () ->
      Exec.Cost.set_dispatch_overhead_ns saved_overhead;
      Exec.Cost.reset ())
    (fun () ->
      Exec.Cost.reset ();
      Exec.Cost.set_dispatch_overhead_ns 12_345.0;
      Exec.Cost.observe ~key:"rt.a" ~tasks:10 1_000_000.0;
      Exec.Cost.observe ~key:"rt.a" ~tasks:10 2_000_000.0;
      Exec.Cost.observe ~key:"rt.b" ~tasks:4 80_000.0;
      let before_a = Option.get (Exec.Cost.estimate ~key:"rt.a") in
      let state = Exec.Cost.export () in
      Exec.Cost.reset ();
      Alcotest.(check bool)
        "estimates cleared" true
        (Exec.Cost.estimate ~key:"rt.a" = None);
      Alcotest.(check bool) "import succeeds" true (Exec.Cost.import state);
      let after_a = Option.get (Exec.Cost.estimate ~key:"rt.a") in
      Alcotest.(check (float 1e-9))
        "ns/task preserved" before_a.Exec.Cost.ns_per_task
        after_a.Exec.Cost.ns_per_task;
      Alcotest.(check int)
        "samples preserved" before_a.Exec.Cost.samples
        after_a.Exec.Cost.samples;
      Alcotest.(check (float 1e-9))
        "overhead preserved" 12_345.0
        (Exec.Cost.dispatch_overhead_ns ());
      Alcotest.(check bool)
        "second key restored" true
        (Exec.Cost.estimate ~key:"rt.b" <> None);
      Alcotest.(check bool)
        "malformed state rejected" false
        (Exec.Cost.import "garbage"))

(* ---------- auto scheduling is bit-identical to sequential ---------- *)

let with_sched_mode mode f =
  (* [set_sched] has no unset; [Auto] is the documented default. *)
  Fun.protect
    ~finally:(fun () -> Exec.Cost.set_sched Exec.Cost.Auto)
    (fun () ->
      Exec.Cost.set_sched mode;
      f ())

(* Pin 8 cores and a near-zero overhead so Auto genuinely takes parallel
   decisions whatever the host's real core count, then require the result
   to equal the forced-sequential one. *)
let with_eager_auto f =
  let saved_overhead = Exec.Cost.dispatch_overhead_ns () in
  Fun.protect
    ~finally:(fun () ->
      Exec.Cost.set_assumed_cores None;
      Exec.Cost.set_dispatch_overhead_ns saved_overhead;
      Exec.Cost.set_sched Exec.Cost.Auto)
    (fun () ->
      Exec.Cost.set_assumed_cores (Some 8);
      Exec.Cost.set_dispatch_overhead_ns 1_000.0;
      f ())

let prop_auto_equals_seq_fmea =
  QCheck.Test.make ~count:12
    ~name:"injection FMEA: auto scheduling bit-identical to sequential"
    QCheck.(pair (int_range 1 4) (int_range 5 50))
    (fun (jobs, pct) ->
      let options =
        {
          Decisive.Case_study.injection_options with
          Fmea.Injection_fmea.threshold_rel = float_of_int pct /. 100.0;
        }
      in
      let analyse () =
        Fmea.Injection_fmea.analyse ~options ~element_types:case_study_types
          Decisive.Case_study.power_supply_netlist
          Decisive.Case_study.reliability_model
      in
      with_eager_auto (fun () ->
          with_jobs jobs (fun () ->
              Fmea.Table.equal
                (with_sched_mode Exec.Cost.Seq analyse)
                (with_sched_mode Exec.Cost.Auto analyse))))

let test_auto_equals_seq_search () =
  let table = Decisive.Case_study.fmea_via_injection () in
  let sms = Decisive.Case_study.sm_model in
  let exhaustive () =
    Optimize.Search.exhaustive ~component_types:case_study_types table sms
  in
  let greedy () =
    Optimize.Search.greedy ~component_types:case_study_types
      ~target:Ssam.Requirement.ASIL_B table sms
  in
  with_eager_auto (fun () ->
      let seq_ex = with_sched_mode Exec.Cost.Seq exhaustive in
      let seq_gr = with_sched_mode Exec.Cost.Seq greedy in
      List.iter
        (fun jobs ->
          with_jobs jobs (fun () ->
              Alcotest.(check bool)
                (Printf.sprintf "exhaustive auto=seq jobs=%d" jobs)
                true
                (List.equal Optimize.Search.equal_candidate seq_ex
                   (with_sched_mode Exec.Cost.Auto exhaustive));
              Alcotest.(check bool)
                (Printf.sprintf "greedy auto=seq jobs=%d" jobs)
                true
                (Optimize.Search.equal_candidate seq_gr
                   (with_sched_mode Exec.Cost.Auto greedy))))
        [ 1; 2; 4 ])

let suite =
  [
    Alcotest.test_case "parallel map" `Quick test_parallel_map;
    Alcotest.test_case "malformed SAME_JOBS warns" `Quick
      test_malformed_same_jobs_warns;
    Alcotest.test_case "parallel chunks" `Quick test_parallel_chunks;
    Alcotest.test_case "parallel iter" `Quick test_parallel_iter;
    Alcotest.test_case "nested parallelism" `Quick test_nested;
    Alcotest.test_case "exception determinism" `Quick
      test_exception_determinism;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "budget under concurrency" `Quick
      test_budget_concurrent;
    Alcotest.test_case "injection FMEA determinism" `Quick
      test_injection_fmea_determinism;
    Alcotest.test_case "search determinism" `Quick test_search_determinism;
    Alcotest.test_case "store determinism" `Quick test_store_determinism;
    Alcotest.test_case "prepared classification" `Quick
      test_prepared_classification;
    QCheck_alcotest.to_alcotest prop_incremental_evaluator;
    Alcotest.test_case "parallel chunks edges" `Quick
      test_parallel_chunks_edges;
    Alcotest.test_case "cost decide policy" `Quick test_cost_decide;
    Alcotest.test_case "cost decide monotonic" `Quick
      test_cost_decide_monotonic;
    Alcotest.test_case "cost state round-trip" `Quick
      test_cost_state_roundtrip;
    QCheck_alcotest.to_alcotest prop_auto_equals_seq_fmea;
    Alcotest.test_case "auto = seq (search)" `Quick test_auto_equals_seq_search;
  ]
