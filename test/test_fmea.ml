(* Tests for the automated FME(D)A: tables, Algorithm 1 (path FMEA),
   failure-injection FMEA, FMEDA application and the SPFM metric —
   including the paper's exact published numbers. *)

open Ssam

let leaf ~id ?(fit = 10.0) ?(fms = []) ?(functions = []) () =
  Architecture.component ~fit ~failure_modes:fms ~functions
    ~meta:(Base.meta ~name:id id) ()

let fm ~id ?(nature = Architecture.Loss_of_function) ?(dist = 100.0) () =
  Architecture.failure_mode ~meta:(Base.meta ~name:id id) ~nature
    ~distribution_pct:dist ()

let conn i a b =
  Architecture.relationship
    ~meta:(Base.meta (Printf.sprintf "conn%d" i))
    ~from_component:a ~to_component:b ()

let composite ~id ~children ~connections =
  Architecture.component ~component_type:Architecture.System ~children
    ~connections ~meta:(Base.meta ~name:id id) ()

(* ---------- Table ---------- *)

let test_make_row_spf () =
  let r =
    Fmea.Table.make_row ~component:"D1" ~component_fit:10.0 ~failure_mode:"Open"
      ~distribution_pct:30.0 ~safety_related:true ()
  in
  Alcotest.(check (float 1e-12)) "spf share" 3.0 r.Fmea.Table.single_point_fit;
  let covered =
    Fmea.Table.make_row ~sm_coverage_pct:99.0 ~safety_mechanism:"ECC"
      ~component:"MC1" ~component_fit:300.0 ~failure_mode:"RAM"
      ~distribution_pct:100.0 ~safety_related:true ()
  in
  Alcotest.(check (float 1e-12)) "residual after coverage" 3.0
    covered.Fmea.Table.single_point_fit;
  let not_sr =
    Fmea.Table.make_row ~component:"C1" ~component_fit:2.0 ~failure_mode:"Open"
      ~distribution_pct:30.0 ~safety_related:false ()
  in
  Alcotest.(check (float 1e-12)) "non-SR contributes 0" 0.0
    not_sr.Fmea.Table.single_point_fit

let sample_table =
  {
    Fmea.Table.system_name = "s";
    rows =
      [
        Fmea.Table.make_row ~component:"A" ~component_fit:10.0 ~failure_mode:"x"
          ~distribution_pct:50.0 ~safety_related:true ();
        Fmea.Table.make_row ~component:"A" ~component_fit:10.0 ~failure_mode:"y"
          ~distribution_pct:50.0 ~safety_related:false ();
        Fmea.Table.make_row ~warning:"check me" ~component:"B" ~component_fit:5.0
          ~failure_mode:"z" ~distribution_pct:100.0 ~safety_related:false ();
      ];
  }

let test_table_accessors () =
  Alcotest.(check (list string)) "components" [ "A"; "B" ]
    (Fmea.Table.components sample_table);
  Alcotest.(check (list string)) "sr components" [ "A" ]
    (Fmea.Table.safety_related_components sample_table);
  Alcotest.(check int) "rows_for" 2 (List.length (Fmea.Table.rows_for sample_table "A"));
  Alcotest.(check (list (pair string string))) "warnings" [ ("B", "check me") ]
    (Fmea.Table.warnings sample_table)

let test_table_csv_layout () =
  let csv = Fmea.Table.to_csv sample_table in
  Alcotest.(check int) "header + 3 rows" 4 (List.length csv);
  (* Continuation rows blank the component/FIT cells. *)
  (match csv with
  | _ :: _ :: second_a :: _ ->
      Alcotest.(check string) "blank component" "" (List.nth second_a 0);
      Alcotest.(check string) "blank fit" "" (List.nth second_a 1)
  | _ -> Alcotest.fail "unexpected csv shape");
  let repeated = Fmea.Table.to_csv ~repeat_component_cells:true sample_table in
  (match repeated with
  | _ :: _ :: second_a :: _ ->
      Alcotest.(check string) "repeated component" "A" (List.nth second_a 0)
  | _ -> Alcotest.fail "unexpected csv shape")

let test_merge_sensitivity () =
  Alcotest.(check (float 1e-9)) "identical" 0.0
    (Fmea.Table.merge_sensitivity ~golden:sample_table ~other:sample_table);
  let flipped =
    {
      sample_table with
      Fmea.Table.rows =
        List.map
          (fun (r : Fmea.Table.row) ->
            if r.Fmea.Table.failure_mode = "y" then
              { r with Fmea.Table.safety_related = true }
            else r)
          sample_table.Fmea.Table.rows;
    }
  in
  Alcotest.(check (float 0.01)) "one of three" 33.33
    (Fmea.Table.merge_sensitivity ~golden:sample_table ~other:flipped);
  (* Rows present on one side only count as differences. *)
  let missing =
    { sample_table with Fmea.Table.rows = List.tl sample_table.Fmea.Table.rows }
  in
  Alcotest.(check (float 0.01)) "missing row" 33.33
    (Fmea.Table.merge_sensitivity ~golden:sample_table ~other:missing)

(* ---------- Path FMEA (Algorithm 1) ---------- *)

let series_system =
  (* in -> A -> B -> out: both are single points. *)
  composite ~id:"S"
    ~children:[ leaf ~id:"A" ~fms:[ fm ~id:"A:f" () ] (); leaf ~id:"B" ~fms:[ fm ~id:"B:f" () ] () ]
    ~connections:[ conn 0 "S" "A"; conn 1 "A" "B"; conn 2 "B" "S" ]

let parallel_system =
  (* in -> (A | B) -> C -> out: only C is a single point. *)
  composite ~id:"P"
    ~children:
      [
        leaf ~id:"A" ~fms:[ fm ~id:"A:f" () ] ();
        leaf ~id:"B" ~fms:[ fm ~id:"B:f" () ] ();
        leaf ~id:"C" ~fms:[ fm ~id:"C:f" () ] ();
      ]
    ~connections:
      [
        conn 0 "P" "A";
        conn 1 "P" "B";
        conn 2 "A" "C";
        conn 3 "B" "C";
        conn 4 "C" "P";
      ]

let test_paths_series () =
  Alcotest.(check int) "one path" 1 (List.length (Fmea.Path_fmea.paths series_system));
  Alcotest.(check (list string)) "path contents" [ "A"; "B" ]
    (List.map Architecture.component_id (List.hd (Fmea.Path_fmea.paths series_system)))

let test_paths_parallel () =
  Alcotest.(check int) "two paths" 2 (List.length (Fmea.Path_fmea.paths parallel_system))

let test_algorithm1_series () =
  let t = Fmea.Path_fmea.analyse series_system in
  Alcotest.(check (list string)) "both single points" [ "A"; "B" ]
    (Fmea.Table.safety_related_components t)

let test_algorithm1_parallel () =
  let t = Fmea.Path_fmea.analyse parallel_system in
  Alcotest.(check (list string)) "only C" [ "C" ]
    (Fmea.Table.safety_related_components t)

let test_algorithm1_warning_branch () =
  (* Non-loss failure modes get Algorithm 1's warning, not a verdict. *)
  let sys =
    composite ~id:"W"
      ~children:[ leaf ~id:"A" ~fms:[ fm ~id:"A:e" ~nature:Architecture.Erroneous () ] () ]
      ~connections:[ conn 0 "W" "A"; conn 1 "A" "W" ]
  in
  let t = Fmea.Path_fmea.analyse sys in
  Alcotest.(check int) "warning emitted" 1 (List.length (Fmea.Table.warnings t));
  Alcotest.(check (list string)) "nothing safety-related" []
    (Fmea.Table.safety_related_components t)

let test_algorithm1_excluded () =
  let options = { Fmea.Path_fmea.default_options with exclude = [ "A" ] } in
  let t = Fmea.Path_fmea.analyse ~options series_system in
  Alcotest.(check (list string)) "A excluded" [ "B" ]
    (Fmea.Table.safety_related_components t)

let test_algorithm1_redundancy () =
  (* A component whose functions are all redundant is never a single point. *)
  let redundant_fn =
    Architecture.func ~meta:(Base.meta "fn1") Architecture.OneOoTwo
  in
  let sys =
    composite ~id:"R"
      ~children:
        [
          leaf ~id:"A" ~fms:[ fm ~id:"A:f" () ] ~functions:[ redundant_fn ] ();
          leaf ~id:"B" ~fms:[ fm ~id:"B:f" () ] ();
        ]
      ~connections:[ conn 0 "R" "A"; conn 1 "A" "B"; conn 2 "B" "R" ]
  in
  let t = Fmea.Path_fmea.analyse sys in
  Alcotest.(check (list string)) "redundant A tolerated" [ "B" ]
    (Fmea.Table.safety_related_components t)

let test_algorithm1_recursion () =
  (* Nested composite: the inner leaf is analysed too ("repeat this
     algorithm for c"). *)
  let inner =
    composite ~id:"inner"
      ~children:[ leaf ~id:"IL" ~fms:[ fm ~id:"IL:f" () ] () ]
      ~connections:[ conn 10 "inner" "IL"; conn 11 "IL" "inner" ]
  in
  let sys =
    composite ~id:"outer"
      ~children:[ inner; leaf ~id:"X" ~fms:[ fm ~id:"X:f" () ] () ]
      ~connections:[ conn 0 "outer" "inner"; conn 1 "inner" "X"; conn 2 "X" "outer" ]
  in
  let t = Fmea.Path_fmea.analyse sys in
  Alcotest.(check (list string)) "inner leaf analysed" [ "IL"; "X" ]
    (List.sort String.compare (Fmea.Table.safety_related_components t));
  let no_recurse =
    Fmea.Path_fmea.analyse
      ~options:{ Fmea.Path_fmea.default_options with recurse = false }
      sys
  in
  Alcotest.(check (list string)) "recursion off" [ "X" ]
    (Fmea.Table.safety_related_components no_recurse)

let test_algorithm1_no_boundary_fallback () =
  (* Without boundary connections, sources/sinks fall back to in/out degree. *)
  let sys =
    composite ~id:"F"
      ~children:[ leaf ~id:"A" ~fms:[ fm ~id:"A:f" () ] (); leaf ~id:"B" ~fms:[ fm ~id:"B:f" () ] () ]
      ~connections:[ conn 0 "A" "B" ]
  in
  let t = Fmea.Path_fmea.analyse sys in
  Alcotest.(check (list string)) "series via fallback" [ "A"; "B" ]
    (Fmea.Table.safety_related_components t)

let test_analyse_package_flat () =
  let pkg =
    Architecture.package ~meta:(Base.meta ~name:"flat" "pkg-flat")
      [
        Architecture.Component (leaf ~id:"A" ~fms:[ fm ~id:"A:f" () ] ());
        Architecture.Component (leaf ~id:"B" ~fms:[ fm ~id:"B:f" () ] ());
        Architecture.Relationship (conn 0 "A" "B");
      ]
  in
  let t = Fmea.Path_fmea.analyse_package pkg in
  Alcotest.(check (list string)) "flat package wrapped" [ "A"; "B" ]
    (Fmea.Table.safety_related_components t)

(* Property: on random series-parallel chains, a component is
   safety-related iff it appears in every path. *)
let prop_algorithm1_consistency =
  QCheck.Test.make ~name:"Algorithm 1 agrees with path membership" ~count:80
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) (QCheck.int_range 1 3))
    (fun widths ->
      (* Stage i has widths[i] parallel branches; stages in series.
         QCheck shrinking can step outside int_range; clamp defensively. *)
      let widths = List.map (fun w -> Int.max 1 (Int.min 3 w)) widths in
      let children = ref [] in
      let connections = ref [] in
      let stage_ids =
        List.mapi
          (fun i width ->
            List.init width (fun j ->
                let id = Printf.sprintf "s%d_%d" i j in
                children := leaf ~id ~fms:[ fm ~id:(id ^ ":f") () ] () :: !children;
                id))
          widths
      in
      let root = "root" in
      let k = ref 0 in
      let add a b =
        incr k;
        connections := conn !k a b :: !connections
      in
      (match stage_ids with
      | first :: _ -> List.iter (fun id -> add root id) first
      | [] -> ());
      let rec wire = function
        | a :: (b :: _ as rest) ->
            List.iter (fun x -> List.iter (fun y -> add x y) b) a;
            wire rest
        | [ last ] -> List.iter (fun id -> add id root) last
        | [] -> ()
      in
      wire stage_ids;
      let sys =
        composite ~id:root ~children:(List.rev !children)
          ~connections:(List.rev !connections)
      in
      let t = Fmea.Path_fmea.analyse sys in
      let sr = Fmea.Table.safety_related_components t in
      (* Expected: exactly the members of width-1 stages. *)
      let expected =
        List.concat
          (List.mapi (fun i w -> if w = 1 then [ Printf.sprintf "s%d_0" i ] else []) widths)
      in
      List.sort String.compare sr = List.sort String.compare expected)

(* ---------- Injection FMEA: the paper's exact case study ---------- *)

let test_table_iv_exact () =
  let t = Decisive.Case_study.fmea_via_injection () in
  Alcotest.(check (list string)) "safety-related components (Table IV)"
    [ "D1"; "L1"; "MC1" ]
    (Fmea.Table.safety_related_components t);
  let row comp mode =
    List.find
      (fun (r : Fmea.Table.row) ->
        r.Fmea.Table.component = comp && r.Fmea.Table.failure_mode = mode)
      t.Fmea.Table.rows
  in
  (* D1: Open Yes 3 FIT, Short No. *)
  Alcotest.(check bool) "D1 open SR" true (row "D1" "Open").Fmea.Table.safety_related;
  Alcotest.(check (float 1e-9)) "D1 open 3 FIT" 3.0
    (row "D1" "Open").Fmea.Table.single_point_fit;
  Alcotest.(check bool) "D1 short not SR" false (row "D1" "Short").Fmea.Table.safety_related;
  (* L1: Open Yes 4.5 FIT. *)
  Alcotest.(check (float 1e-9)) "L1 open 4.5 FIT" 4.5
    (row "L1" "Open").Fmea.Table.single_point_fit;
  (* MC1: RAM Failure Yes 300 FIT before ECC. *)
  Alcotest.(check (float 1e-9)) "MC1 300 FIT" 300.0
    (row "MC1" "RAM Failure").Fmea.Table.single_point_fit;
  (* SPFM 5.38 % (paper Sec. V-A). *)
  Alcotest.(check (float 0.005)) "SPFM 5.38%" 5.38 (Fmea.Metrics.spfm t)

let test_table_iv_after_ecc () =
  let t = Decisive.Case_study.fmeda (Decisive.Case_study.fmea_via_injection ()) in
  let mc1 =
    List.find
      (fun (r : Fmea.Table.row) ->
        r.Fmea.Table.component = "MC1" && r.Fmea.Table.safety_related)
      t.Fmea.Table.rows
  in
  Alcotest.(check (option string)) "ECC deployed" (Some "ECC")
    mc1.Fmea.Table.safety_mechanism;
  Alcotest.(check (float 1e-9)) "MC1 drops to 3 FIT" 3.0
    mc1.Fmea.Table.single_point_fit;
  Alcotest.(check (float 0.005)) "SPFM 96.77%" 96.77 (Fmea.Metrics.spfm t);
  Alcotest.(check bool) "achieves ASIL-B" true
    (Fmea.Asil.meets ~target:Requirement.ASIL_B ~spfm:(Fmea.Metrics.spfm t))

let test_routes_agree () =
  let inj = Decisive.Case_study.fmea_via_injection () in
  let path = Decisive.Case_study.fmea_via_ssam () in
  Alcotest.(check (list string)) "same safety-related set"
    (Fmea.Table.safety_related_components inj)
    (Fmea.Table.safety_related_components path);
  Alcotest.(check (float 0.001)) "same SPFM" (Fmea.Metrics.spfm inj)
    (Fmea.Metrics.spfm path)

let test_capacitor_exclusion_warning () =
  (* The stable-supply assumption: capacitor shorts are excluded with a
     warning, not classified (this is what keeps Table IV capacitor-free). *)
  let t = Decisive.Case_study.fmea_via_injection () in
  let warnings = Fmea.Table.warnings t in
  Alcotest.(check bool) "C1 excluded" true (List.mem_assoc "C1" warnings);
  Alcotest.(check bool) "C2 excluded" true (List.mem_assoc "C2" warnings)

let test_classify_single () =
  let nl = Decisive.Case_study.power_supply_netlist in
  (match
     Fmea.Injection_fmea.classify_single nl ~element_id:"D1"
       Circuit.Fault.Open_circuit
   with
  | `Safety_related _ -> ()
  | _ -> Alcotest.fail "D1 open should be safety-related");
  match
    Fmea.Injection_fmea.classify_single nl ~element_id:"L1"
      Circuit.Fault.Short_circuit
  with
  | `No_effect -> ()
  | _ -> Alcotest.fail "L1 short (already a DC short) should have no effect"

let test_injection_threshold_sensitivity () =
  (* D1 short moves CS1 by ~15%: below the default 20% threshold, above a
     10% threshold. *)
  let nl = Decisive.Case_study.power_supply_netlist in
  let tight =
    { Fmea.Injection_fmea.default_options with threshold_rel = 0.10 }
  in
  (match
     Fmea.Injection_fmea.classify_single ~options:tight nl ~element_id:"D1"
       Circuit.Fault.Short_circuit
   with
  | `Safety_related _ -> ()
  | _ -> Alcotest.fail "tight threshold should flag D1 short");
  match
    Fmea.Injection_fmea.classify_single nl ~element_id:"D1"
      Circuit.Fault.Short_circuit
  with
  | `No_effect -> ()
  | _ -> Alcotest.fail "default threshold should pass D1 short"

let test_golden_run_failure () =
  let nl =
    Circuit.Netlist.of_elements "broken"
      [
        (* Two ideal sources fighting over one node: singular system. *)
        Circuit.Element.make ~id:"V1" ~kind:(Circuit.Element.Vsource 5.0) "a" "gnd";
        Circuit.Element.make ~id:"V2" ~kind:(Circuit.Element.Vsource 3.0) "a" "gnd";
      ]
  in
  match Fmea.Injection_fmea.analyse nl Reliability.Reliability_model.table_ii with
  | exception Fmea.Injection_fmea.Golden_run_failed _ -> ()
  | _ -> Alcotest.fail "expected Golden_run_failed"

let test_no_fault_model_warning () =
  let rm =
    Reliability.Reliability_model.of_entries
      [
        {
          Reliability.Reliability_model.component_type = "resistor";
          fit = Reliability.Fit.of_float 4.0;
          failure_modes =
            [
              {
                Reliability.Reliability_model.fm_name = "mystery";
                distribution_pct = 100.0;
                fault = None;
                loss_of_function = false;
              };
            ];
        };
      ]
  in
  let nl =
    Circuit.Netlist.of_elements "t"
      [
        Circuit.Element.make ~id:"V1" ~kind:(Circuit.Element.Vsource 5.0) "a" "gnd";
        Circuit.Element.make ~id:"R1" ~kind:(Circuit.Element.Resistor 100.0) "a" "gnd";
      ]
  in
  let t = Fmea.Injection_fmea.analyse nl rm in
  Alcotest.(check int) "warning row" 1 (List.length (Fmea.Table.warnings t))

let test_solver_reuse_matches_refactor () =
  (* The golden-factor low-rank re-solve must reproduce the from-scratch
     baseline table — same classifications, same impact strings. *)
  let nl = Decisive.Case_study.power_supply_netlist in
  let options = Decisive.Case_study.injection_options in
  let rm = Reliability.Reliability_model.table_ii in
  let paths = ref [] in
  let fast =
    Fmea.Injection_fmea.analyse ~options ~solver:`Reuse
      ~on_solved:(fun p -> paths := p :: !paths)
      nl rm
  in
  let baseline =
    Fmea.Injection_fmea.analyse ~options ~solver:(`Refactor `Auto) nl rm
  in
  Alcotest.(check bool) "tables equal" true (Fmea.Table.equal fast baseline);
  Alcotest.(check bool) "no refactorise on the fast path" true
    (not (List.mem `Refactor !paths));
  Alcotest.(check bool) "rank updates used" true
    (List.exists (function `Rank_update _ -> true | _ -> false) !paths)

let test_solver_sparse_backend_table () =
  (* Forcing the sparse backend through the whole refactor pipeline must
     not change the table either. *)
  let nl = Decisive.Case_study.power_supply_netlist in
  let options = Decisive.Case_study.injection_options in
  let rm = Reliability.Reliability_model.table_ii in
  let dense =
    Fmea.Injection_fmea.analyse ~options ~solver:(`Refactor `Dense) nl rm
  in
  let sparse =
    Fmea.Injection_fmea.analyse ~options ~solver:(`Refactor `Sparse) nl rm
  in
  Alcotest.(check bool) "tables equal" true (Fmea.Table.equal dense sparse)

(* ---------- FMEDA / Metrics / Asil ---------- *)

let test_fmeda_best_coverage_wins () =
  let mech name cov =
    {
      Reliability.Sm_model.sm_name = name;
      component_type = "x";
      failure_mode = "f";
      coverage_pct = cov;
      cost = 1.0;
    }
  in
  let table =
    {
      Fmea.Table.system_name = "s";
      rows =
        [
          Fmea.Table.make_row ~component:"X" ~component_fit:100.0
            ~failure_mode:"f" ~distribution_pct:100.0 ~safety_related:true ();
        ];
    }
  in
  let fmeda =
    Fmea.Fmeda.apply table
      [
        Fmea.Fmeda.deploy ~component:"X" ~failure_mode:"f" (mech "weak" 50.0);
        Fmea.Fmeda.deploy ~component:"X" ~failure_mode:"f" (mech "strong" 90.0);
      ]
  in
  let row = List.hd fmeda.Fmea.Table.rows in
  Alcotest.(check (option string)) "strong wins" (Some "strong")
    row.Fmea.Table.safety_mechanism;
  Alcotest.(check (float 1e-9)) "residual" 10.0 row.Fmea.Table.single_point_fit

let test_fmeda_unmatched_ignored () =
  let mech =
    {
      Reliability.Sm_model.sm_name = "m";
      component_type = "x";
      failure_mode = "f";
      coverage_pct = 99.0;
      cost = 1.0;
    }
  in
  let fmeda =
    Fmea.Fmeda.apply sample_table
      [ Fmea.Fmeda.deploy ~component:"NOPE" ~failure_mode:"f" mech ]
  in
  Alcotest.(check bool) "table unchanged" true
    (Fmea.Table.equal sample_table fmeda)

let test_metrics_no_sr_hardware () =
  let t = { Fmea.Table.system_name = "empty"; rows = [] } in
  Alcotest.(check (float 1e-9)) "vacuous SPFM is 100" 100.0 (Fmea.Metrics.spfm t)

let test_metrics_breakdown () =
  let t = Decisive.Case_study.fmea_via_injection () in
  let b = Fmea.Metrics.compute t in
  Alcotest.(check (float 1e-6)) "lambda total" 325.0 b.Fmea.Metrics.safety_related_fit;
  Alcotest.(check (float 1e-6)) "lambda spf" 307.5 b.Fmea.Metrics.single_point_fit;
  Alcotest.(check int) "three components" 3 (List.length b.Fmea.Metrics.per_component)

let test_latent_and_pmhf () =
  let fmeda = Decisive.Case_study.fmeda (Decisive.Case_study.fmea_via_injection ()) in
  let lb = Fmea.Metrics.latent fmeda in
  (* By hand: D1 short 7 FIT latent, L1 short 10.5 FIT latent, MC1's
     covered RAM share 297 FIT detected -> multipoint 314.5, latent 17.5. *)
  Alcotest.(check (float 1e-6)) "multipoint" 314.5 lb.Fmea.Metrics.multipoint_fit;
  Alcotest.(check (float 1e-6)) "latent" 17.5 lb.Fmea.Metrics.latent_fit;
  Alcotest.(check (float 0.01)) "LFM" 94.44 lb.Fmea.Metrics.lfm_pct;
  Alcotest.(check (float 1e-15)) "PMHF" 1.05e-8 (Fmea.Metrics.pmhf_per_hour fmeda);
  Alcotest.(check bool) "meets all ASIL-B metrics" true
    (Fmea.Asil.meets_all ~target:Requirement.ASIL_B
       ~spfm:(Fmea.Metrics.spfm fmeda) ~lfm:(Fmea.Metrics.lfm fmeda)
       ~pmhf:(Fmea.Metrics.pmhf_per_hour fmeda));
  (* ASIL-D's PMHF ceiling (1e-8) is *not* met at 1.05e-8. *)
  Alcotest.(check bool) "ASIL-D PMHF fails" false
    (Fmea.Asil.meets_all ~target:Requirement.ASIL_D ~spfm:99.9 ~lfm:99.9
       ~pmhf:(Fmea.Metrics.pmhf_per_hour fmeda))

let test_latent_empty_table () =
  let t = { Fmea.Table.system_name = "empty"; rows = [] } in
  Alcotest.(check (float 1e-9)) "vacuous LFM" 100.0 (Fmea.Metrics.lfm t);
  Alcotest.(check (float 1e-15)) "vacuous PMHF" 0.0 (Fmea.Metrics.pmhf_per_hour t)

let test_asil_targets () =
  Alcotest.(check (option (float 1e-9))) "B" (Some 90.0)
    (Fmea.Asil.spfm_target Requirement.ASIL_B);
  Alcotest.(check (option (float 1e-9))) "C" (Some 97.0)
    (Fmea.Asil.spfm_target Requirement.ASIL_C);
  Alcotest.(check (option (float 1e-9))) "D" (Some 99.0)
    (Fmea.Asil.spfm_target Requirement.ASIL_D);
  Alcotest.(check bool) "QM has no target" true
    (Fmea.Asil.spfm_target Requirement.QM = None);
  Alcotest.(check bool) "A met vacuously" true
    (Fmea.Asil.meets ~target:Requirement.ASIL_A ~spfm:0.0);
  Alcotest.(check bool) "achieved D" true
    (Fmea.Asil.achieved ~spfm:99.5 = Requirement.ASIL_D);
  Alcotest.(check bool) "achieved B" true
    (Fmea.Asil.achieved ~spfm:96.77 = Requirement.ASIL_B);
  Alcotest.(check bool) "achieved A" true
    (Fmea.Asil.achieved ~spfm:50.0 = Requirement.ASIL_A)

(* Property: SPFM is monotone in coverage — more diagnostic coverage never
   lowers it. *)
let prop_spfm_monotone_in_coverage =
  QCheck.Test.make ~name:"SPFM monotone in coverage" ~count:100
    QCheck.(pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0))
    (fun (c1, c2) ->
      let lo = Float.min c1 c2 and hi = Float.max c1 c2 in
      let table cov =
        {
          Fmea.Table.system_name = "s";
          rows =
            [
              Fmea.Table.make_row ~sm_coverage_pct:cov ~safety_mechanism:"m"
                ~component:"X" ~component_fit:100.0 ~failure_mode:"f"
                ~distribution_pct:100.0 ~safety_related:true ();
            ];
        }
      in
      Fmea.Metrics.spfm (table hi) >= Fmea.Metrics.spfm (table lo) -. 1e-9)

let suite =
  [
    Alcotest.test_case "make_row spf" `Quick test_make_row_spf;
    Alcotest.test_case "table accessors" `Quick test_table_accessors;
    Alcotest.test_case "table csv layout" `Quick test_table_csv_layout;
    Alcotest.test_case "merge sensitivity" `Quick test_merge_sensitivity;
    Alcotest.test_case "paths series" `Quick test_paths_series;
    Alcotest.test_case "paths parallel" `Quick test_paths_parallel;
    Alcotest.test_case "algorithm1 series" `Quick test_algorithm1_series;
    Alcotest.test_case "algorithm1 parallel" `Quick test_algorithm1_parallel;
    Alcotest.test_case "algorithm1 warning branch" `Quick test_algorithm1_warning_branch;
    Alcotest.test_case "algorithm1 excluded" `Quick test_algorithm1_excluded;
    Alcotest.test_case "algorithm1 redundancy" `Quick test_algorithm1_redundancy;
    Alcotest.test_case "algorithm1 recursion" `Quick test_algorithm1_recursion;
    Alcotest.test_case "algorithm1 boundary fallback" `Quick
      test_algorithm1_no_boundary_fallback;
    Alcotest.test_case "analyse flat package" `Quick test_analyse_package_flat;
    QCheck_alcotest.to_alcotest prop_algorithm1_consistency;
    Alcotest.test_case "Table IV exact (before SM)" `Quick test_table_iv_exact;
    Alcotest.test_case "Table IV exact (after ECC)" `Quick test_table_iv_after_ecc;
    Alcotest.test_case "both routes agree" `Quick test_routes_agree;
    Alcotest.test_case "capacitor exclusion warning" `Quick
      test_capacitor_exclusion_warning;
    Alcotest.test_case "classify single" `Quick test_classify_single;
    Alcotest.test_case "injection threshold" `Quick test_injection_threshold_sensitivity;
    Alcotest.test_case "golden run failure" `Quick test_golden_run_failure;
    Alcotest.test_case "no fault model warning" `Quick test_no_fault_model_warning;
    Alcotest.test_case "solver reuse matches refactor" `Quick
      test_solver_reuse_matches_refactor;
    Alcotest.test_case "solver sparse backend table" `Quick
      test_solver_sparse_backend_table;
    Alcotest.test_case "fmeda best coverage wins" `Quick test_fmeda_best_coverage_wins;
    Alcotest.test_case "fmeda unmatched ignored" `Quick test_fmeda_unmatched_ignored;
    Alcotest.test_case "metrics no SR hardware" `Quick test_metrics_no_sr_hardware;
    Alcotest.test_case "metrics breakdown" `Quick test_metrics_breakdown;
    Alcotest.test_case "latent + PMHF" `Quick test_latent_and_pmhf;
    Alcotest.test_case "latent empty table" `Quick test_latent_empty_table;
    Alcotest.test_case "asil targets" `Quick test_asil_targets;
    QCheck_alcotest.to_alcotest prop_spfm_monotone_in_coverage;
  ]

(* ---------- Degradation (time-domain) analysis ---------- *)

let degradation_suite =
  let conv () = Blockdiag.To_netlist.convert Decisive.Case_study.power_supply_diagram in
  let analyse ?(options_f = fun o -> o) () =
    let conversion = conv () in
    let options =
      options_f (Fmea.Degradation.default_options ~disturbance_source:"DC1")
    in
    Fmea.Degradation.analyse
      ~element_types:conversion.Blockdiag.To_netlist.block_types ~options
      conversion.Blockdiag.To_netlist.netlist
      Decisive.Case_study.reliability_model
  in
  let test_finds_filter_degradations () =
    let findings = analyse () in
    let has component fm =
      List.exists
        (fun (f : Fmea.Degradation.finding) ->
          f.Fmea.Degradation.component = component
          && f.Fmea.Degradation.failure_mode = fm)
        findings
    in
    (* The physically right answers: losing the output capacitor or
       shorting the inductor defeats the LC filter. *)
    Alcotest.(check bool) "C2 open degrades" true (has "C2" "Open");
    Alcotest.(check bool) "L1 short degrades" true (has "L1" "Short");
    (* DC-visible failures are excluded (they are Injection_fmea's): no
       finding has a collapsed observation. *)
    Alcotest.(check bool) "no D1-open (DC-visible)" true (not (has "D1" "Open"));
    List.iter
      (fun (f : Fmea.Degradation.finding) ->
        Alcotest.(check bool) "ratio above factor" true (f.Fmea.Degradation.ratio > 2.0))
      findings
  in
  let test_factor_monotone () =
    let loose = analyse () in
    let strict =
      analyse ~options_f:(fun o -> { o with Fmea.Degradation.ripple_factor = 50.0 }) ()
    in
    Alcotest.(check bool) "stricter factor finds fewer" true
      (List.length strict <= List.length loose)
  in
  let test_exclusion () =
    let findings =
      analyse ~options_f:(fun o -> { o with Fmea.Degradation.exclude = [ "C2"; "L1" ] }) ()
    in
    Alcotest.(check bool) "excluded components absent" true
      (not
         (List.exists
            (fun (f : Fmea.Degradation.finding) ->
              f.Fmea.Degradation.component = "C2" || f.Fmea.Degradation.component = "L1")
            findings))
  in
  [
    Alcotest.test_case "finds filter degradations" `Quick test_finds_filter_degradations;
    Alcotest.test_case "factor monotone" `Quick test_factor_monotone;
    Alcotest.test_case "exclusion" `Quick test_exclusion;
  ]
