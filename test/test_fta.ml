(* Tests for fault trees: construction, minimal cut sets, quantification,
   generation from SSAM and the FMEA cross-check. *)

open Fta

let b ?rate id = Fault_tree.basic ?rate_fit:rate id

(* ---------- construction ---------- *)

let test_builders () =
  let t = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "b"; b "c" ] ] in
  Alcotest.(check int) "gates" 2 (Fault_tree.gate_count t);
  Alcotest.(check int) "depth" 3 (Fault_tree.depth t);
  Alcotest.(check int) "events" 3 (List.length (Fault_tree.basic_events t));
  Alcotest.(check bool) "find" true (Option.is_some (Fault_tree.find_event t "b"));
  Alcotest.check_raises "empty gate"
    (Invalid_argument "Fault_tree.and_ g: no children") (fun () ->
      ignore (Fault_tree.and_ "g" []))

let test_koon_validation () =
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Fault_tree.koon v: k=3 out of range for 2 children")
    (fun () -> ignore (Fault_tree.koon "v" ~k:3 [ b "a"; b "b" ]))

let test_duplicate_events_deduped () =
  let t = Fault_tree.or_ "top" [ b "a"; b "a" ] in
  Alcotest.(check int) "distinct events" 1 (List.length (Fault_tree.basic_events t))

(* ---------- cut sets ---------- *)

let test_cut_sets_or () =
  let t = Fault_tree.or_ "top" [ b "a"; b "b" ] in
  Alcotest.(check (list (list string))) "two singletons" [ [ "a" ]; [ "b" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_and () =
  let t = Fault_tree.and_ "top" [ b "a"; b "b" ] in
  Alcotest.(check (list (list string))) "one pair" [ [ "a"; "b" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_absorption () =
  (* a OR (a AND b) = a: the pair is absorbed. *)
  let t = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "a"; b "b" ] ] in
  Alcotest.(check (list (list string))) "absorbed" [ [ "a" ] ] (Cut_sets.minimal t)

let test_cut_sets_series_parallel () =
  (* (a OR b) AND (a OR c) = a OR (b AND c). *)
  let t =
    Fault_tree.and_ "top"
      [ Fault_tree.or_ "g1" [ b "a"; b "b" ]; Fault_tree.or_ "g2" [ b "a"; b "c" ] ]
  in
  Alcotest.(check (list (list string))) "factorised" [ [ "a" ]; [ "b"; "c" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_koon () =
  (* 2oo3 voting: any pair of channel failures. *)
  let t = Fault_tree.koon "v" ~k:2 [ b "a"; b "b"; b "c" ] in
  Alcotest.(check (list (list string))) "all pairs"
    [ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
    (Cut_sets.minimal t)

let test_singletons_and_histogram () =
  let sets = [ [ "a" ]; [ "b"; "c" ]; [ "d" ]; [ "e"; "f"; "g" ] ] in
  Alcotest.(check (list string)) "singletons" [ "a"; "d" ] (Cut_sets.singletons sets);
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 2); (2, 1); (3, 1) ]
    (Cut_sets.order_histogram sets)

(* Property: every minimal cut set, when "failed", satisfies the tree;
   removing any event from it un-satisfies it (true minimality). *)
let prop_cut_sets_minimal =
  let rec tree_gen depth next_id =
    QCheck.Gen.(
      if depth = 0 then
        map (fun i -> b (Printf.sprintf "e%d" (i mod next_id))) (int_range 0 (next_id - 1))
      else
        frequency
          [
            (2, map (fun i -> b (Printf.sprintf "e%d" (i mod next_id))) (int_range 0 (next_id - 1)));
            ( 1,
              map
                (fun cs -> Fault_tree.and_ "g" cs)
                (list_size (int_range 1 3) (tree_gen (depth - 1) next_id)) );
            ( 1,
              map
                (fun cs -> Fault_tree.or_ "g" cs)
                (list_size (int_range 1 3) (tree_gen (depth - 1) next_id)) );
          ])
  in
  let rec holds failed = function
    | Fault_tree.Basic e -> List.mem e.Fault_tree.event_id failed
    | Fault_tree.And (_, cs) -> List.for_all (holds failed) cs
    | Fault_tree.Or (_, cs) -> List.exists (holds failed) cs
    | Fault_tree.Koon (_, k, cs) ->
        List.length (List.filter (holds failed) cs) >= k
  in
  QCheck.Test.make ~name:"minimal cut sets are cut sets and minimal" ~count:80
    (QCheck.make (tree_gen 3 6))
    (fun t ->
      let sets = Cut_sets.minimal t in
      List.for_all
        (fun set ->
          holds set t
          && List.for_all
               (fun e -> not (holds (List.filter (fun x -> x <> e) set) t))
               set)
        sets)

(* The merge-based minimizer must agree, order included, with the
   historical quadratic one ([List.mem] membership scans) — on random
   collections of normalized sets and on the DNFs MOCUS produces. *)
let prop_minimize_matches_reference =
  let reference_minimize sets =
    let subset a b = List.for_all (fun x -> List.mem x b) a in
    let sorted =
      List.sort (fun a b -> Int.compare (List.length a) (List.length b)) sets
    in
    List.rev
      (List.fold_left
         (fun kept s ->
           if List.exists (fun k -> subset k s) kept then kept else s :: kept)
         [] sorted)
  in
  QCheck.Test.make ~name:"minimize = reference minimizer" ~count:120
    QCheck.(
      list_of_size
        (QCheck.Gen.int_range 0 20)
        (list_of_size (QCheck.Gen.int_range 0 5) (QCheck.int_range 0 7)))
    (fun raw ->
      let sets =
        List.map
          (fun xs -> Cut_sets.normalize (List.map (Printf.sprintf "e%d") xs))
          raw
      in
      Cut_sets.minimize sets = reference_minimize sets)

(* ---------- quantification ---------- *)

let test_event_probabilities () =
  let t = Fault_tree.or_ "top" [ b ~rate:100.0 "a"; b "norate" ] in
  let ps = Quant.event_probabilities ~mission_hours:10_000.0 t in
  let pa = List.assoc "a" ps in
  (* 100 FIT over 1e4 h: p = 1 - exp(-1e-7 * 1e4) = ~1e-3. *)
  Alcotest.(check bool) "magnitude" true (pa > 9.9e-4 && pa < 1.01e-3);
  Alcotest.(check (float 1e-12)) "missing rate -> 0" 0.0 (List.assoc "norate" ps)

let test_top_probability_gates () =
  let ps = [ ("a", 0.1); ("b", 0.2) ] in
  Alcotest.(check (float 1e-12)) "and" 0.02
    (Quant.top_probability_exact (Fault_tree.and_ "g" [ b "a"; b "b" ]) ps);
  Alcotest.(check (float 1e-12)) "or" 0.28
    (Quant.top_probability_exact (Fault_tree.or_ "g" [ b "a"; b "b" ]) ps);
  (* 2oo3 with p=0.1 each: 3*0.01*0.9 + 0.001 = 0.028 *)
  let ps3 = [ ("a", 0.1); ("b", 0.1); ("c", 0.1) ] in
  Alcotest.(check (float 1e-12)) "2oo3" 0.028
    (Quant.top_probability_exact
       (Fault_tree.koon "v" ~k:2 [ b "a"; b "b"; b "c" ])
       ps3)

let test_bounds_order () =
  (* rare-event >= esary-proschan >= exact for an OR of independents. *)
  let t = Fault_tree.or_ "g" [ b "a"; b "b"; b "c" ] in
  let ps = [ ("a", 0.2); ("b", 0.3); ("c", 0.1) ] in
  let sets = Cut_sets.minimal t in
  let rare = Quant.rare_event_bound sets ps in
  let ep = Quant.esary_proschan sets ps in
  let exact = Quant.top_probability_exact t ps in
  Alcotest.(check (float 1e-12)) "rare = sum" 0.6 rare;
  Alcotest.(check bool) "ordering" true (rare >= ep && ep >= exact -. 1e-12);
  Alcotest.(check (float 1e-12)) "ep equals exact for OR" exact ep

let test_importance () =
  let sets = [ [ "a" ]; [ "b" ] ] in
  let ps = [ ("a", 0.3); ("b", 0.1) ] in
  match Quant.importance sets ps with
  | (top, share) :: _ ->
      Alcotest.(check string) "a dominates" "a" top;
      Alcotest.(check (float 1e-9)) "share" 0.75 share
  | [] -> Alcotest.fail "expected importance entries"

(* ---------- from SSAM + cross-check ---------- *)

let test_generate_from_case_study () =
  let tree = From_ssam.generate Decisive.Case_study.power_supply_root in
  let singles = Cut_sets.singletons (Cut_sets.minimal tree) in
  Alcotest.(check bool) "D1 single" true (List.mem "loss:D1" singles);
  Alcotest.(check bool) "MC1 single" true (List.mem "loss:MC1" singles);
  Alcotest.(check bool) "C1 not a single" false (List.mem "loss:C1" singles)

let test_loss_rate () =
  let d1 =
    Option.get
      (Ssam.Architecture.find_in_package Decisive.Case_study.power_supply_ssam "D1")
  in
  (* 10 FIT * 30% open = 3 FIT of loss-like rate. *)
  Alcotest.(check (float 1e-9)) "D1 loss rate" 3.0 (From_ssam.loss_rate_fit d1)

let test_redundant_becomes_koon () =
  let child =
    Ssam.Architecture.component ~fit:10.0
      ~failure_modes:
        [
          Ssam.Architecture.failure_mode
            ~meta:(Ssam.Base.meta ~name:"loss" "c:loss")
            ~nature:Ssam.Architecture.Loss_of_function ~distribution_pct:100.0 ();
        ]
      ~functions:
        [ Ssam.Architecture.func ~meta:(Ssam.Base.meta "fn") Ssam.Architecture.TwoOoThree ]
      ~meta:(Ssam.Base.meta ~name:"C" "C")
      ()
  in
  let root =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[ child ]
      ~connections:
        [
          Ssam.Architecture.relationship ~meta:(Ssam.Base.meta "c0")
            ~from_component:"root" ~to_component:"C" ();
          Ssam.Architecture.relationship ~meta:(Ssam.Base.meta "c1")
            ~from_component:"C" ~to_component:"root" ();
        ]
      ~meta:(Ssam.Base.meta ~name:"root" "root")
      ()
  in
  let tree = From_ssam.generate root in
  let sets = Cut_sets.minimal tree in
  (* 2oo3: no singleton cut sets, three pairs. *)
  Alcotest.(check int) "no singletons" 0 (List.length (Cut_sets.singletons sets));
  Alcotest.(check int) "three pairs" 3 (List.length sets)

let test_no_paths () =
  let lonely =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[]
      ~meta:(Ssam.Base.meta ~name:"empty" "empty")
      ()
  in
  match From_ssam.generate lonely with
  | exception From_ssam.No_paths "empty" -> ()
  | _ -> Alcotest.fail "expected No_paths"

let test_cross_check_case_study () =
  Alcotest.(check bool) "FTA route agrees with Algorithm 1" true
    (Fmea_from_fta.agrees_with_path_fmea Decisive.Case_study.power_supply_root)

(* Property: the consistency theorem on random series-parallel systems —
   singleton minimal cut sets = Algorithm 1's safety-related components. *)
let prop_fta_path_agreement =
  QCheck.Test.make ~name:"FTA singletons = path-FMEA single points" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 3))
    (fun widths ->
      (* QCheck shrinking can step outside int_range; clamp defensively. *)
      let widths = List.map (fun w -> Int.max 1 (Int.min 3 w)) widths in
      let children = ref [] in
      let connections = ref [] in
      let k = ref 0 in
      let conn a b =
        incr k;
        connections :=
          Ssam.Architecture.relationship
            ~meta:(Ssam.Base.meta (Printf.sprintf "k%d" !k))
            ~from_component:a ~to_component:b ()
          :: !connections
      in
      let stage_ids =
        List.mapi
          (fun i width ->
            List.init width (fun j ->
                let id = Printf.sprintf "s%d_%d" i j in
                children :=
                  Ssam.Architecture.component ~fit:10.0
                    ~failure_modes:
                      [
                        Ssam.Architecture.failure_mode
                          ~meta:(Ssam.Base.meta ~name:"loss" (id ^ ":loss"))
                          ~nature:Ssam.Architecture.Loss_of_function
                          ~distribution_pct:100.0 ();
                      ]
                    ~meta:(Ssam.Base.meta ~name:id id)
                    ()
                  :: !children;
                id))
          widths
      in
      (match stage_ids with
      | first :: _ -> List.iter (fun id -> conn "root" id) first
      | [] -> ());
      let rec wire = function
        | a :: (bs :: _ as rest) ->
            List.iter (fun x -> List.iter (fun y -> conn x y) bs) a;
            wire rest
        | [ last ] -> List.iter (fun id -> conn id "root") last
        | [] -> ()
      in
      wire stage_ids;
      let root =
        Ssam.Architecture.component ~component_type:Ssam.Architecture.System
          ~children:(List.rev !children)
          ~connections:(List.rev !connections)
          ~meta:(Ssam.Base.meta ~name:"root" "root")
          ()
      in
      Fmea_from_fta.agrees_with_path_fmea root)

let suite =
  [
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "koon validation" `Quick test_koon_validation;
    Alcotest.test_case "duplicate events deduped" `Quick test_duplicate_events_deduped;
    Alcotest.test_case "cut sets: or" `Quick test_cut_sets_or;
    Alcotest.test_case "cut sets: and" `Quick test_cut_sets_and;
    Alcotest.test_case "cut sets: absorption" `Quick test_cut_sets_absorption;
    Alcotest.test_case "cut sets: series-parallel" `Quick test_cut_sets_series_parallel;
    Alcotest.test_case "cut sets: koon" `Quick test_cut_sets_koon;
    Alcotest.test_case "singletons/histogram" `Quick test_singletons_and_histogram;
    QCheck_alcotest.to_alcotest prop_cut_sets_minimal;
    QCheck_alcotest.to_alcotest prop_minimize_matches_reference;
    Alcotest.test_case "event probabilities" `Quick test_event_probabilities;
    Alcotest.test_case "gate probabilities" `Quick test_top_probability_gates;
    Alcotest.test_case "bound ordering" `Quick test_bounds_order;
    Alcotest.test_case "importance" `Quick test_importance;
    Alcotest.test_case "generate from case study" `Quick test_generate_from_case_study;
    Alcotest.test_case "loss rate" `Quick test_loss_rate;
    Alcotest.test_case "redundancy becomes koon" `Quick test_redundant_becomes_koon;
    Alcotest.test_case "no paths" `Quick test_no_paths;
    Alcotest.test_case "cross-check case study" `Quick test_cross_check_case_study;
    QCheck_alcotest.to_alcotest prop_fta_path_agreement;
  ]

(* ---------- export ---------- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

let export_suite =
  let tree = From_ssam.generate Decisive.Case_study.power_supply_root in
  let test_dot () =
    let dot = Export.to_dot ~name:"psu" tree in
    Alcotest.(check bool) "digraph header" true (contains dot "digraph psu");
    Alcotest.(check bool) "OR gate shape" true (contains dot "invhouse");
    Alcotest.(check bool) "event labelled with rate" true (contains dot "3 FIT");
    (* Repeated basic events are emitted once. *)
    let occurrences needle =
      let rec go i acc =
        if i + String.length needle > String.length dot then acc
        else if String.sub dot i (String.length needle) = needle then
          go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    Alcotest.(check int) "D1 node emitted once" 1
      (occurrences "ev_loss_D1 [shape=circle")
  in
  let test_dot_koon () =
    let vote = Fault_tree.koon "v" ~k:2 [ Fault_tree.basic "a"; Fault_tree.basic "b"; Fault_tree.basic "c" ] in
    Alcotest.(check bool) "k/N label" true (contains (Export.to_dot vote) "2/3")
  in
  let test_open_psa () =
    let xml = Export.to_open_psa ~model_name:"psu" tree in
    Alcotest.(check string) "root tag" "opsa-mef" xml.Modelio.Xml.tag;
    (* Parses back as XML and contains the expected structures. *)
    let s = Export.to_open_psa_string tree in
    let reparsed = Modelio.Xml.parse s in
    Alcotest.(check bool) "fault tree defined" true
      (Modelio.Xml.descendants reparsed "define-fault-tree" <> []);
    Alcotest.(check bool) "basic events defined" true
      (List.length (Modelio.Xml.descendants reparsed "define-basic-event") >= 5);
    (* MC1's 300 FIT becomes 3e-7 per hour. *)
    Alcotest.(check bool) "rates converted" true (contains s "3.000000e-07")
  in
  let test_save_files () =
    let dot_path = Filename.temp_file "ft" ".dot" in
    let psa_path = Filename.temp_file "ft" ".xml" in
    Export.save_dot ~path:dot_path tree;
    Export.save_open_psa ~path:psa_path tree;
    let size p =
      let ic = open_in p in
      let n = in_channel_length ic in
      close_in ic;
      n
    in
    Alcotest.(check bool) "files non-empty" true (size dot_path > 0 && size psa_path > 0);
    Sys.remove dot_path;
    Sys.remove psa_path
  in
  [
    Alcotest.test_case "dot export" `Quick test_dot;
    Alcotest.test_case "dot koon" `Quick test_dot_koon;
    Alcotest.test_case "open-psa export" `Quick test_open_psa;
    Alcotest.test_case "save files" `Quick test_save_files;
  ]
