(* Tests for fault trees: construction, minimal cut sets, quantification,
   generation from SSAM and the FMEA cross-check. *)

open Fta

let b ?rate id = Fault_tree.basic ?rate_fit:rate id

(* ---------- construction ---------- *)

let test_builders () =
  let t = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "b"; b "c" ] ] in
  Alcotest.(check int) "gates" 2 (Fault_tree.gate_count t);
  Alcotest.(check int) "depth" 3 (Fault_tree.depth t);
  Alcotest.(check int) "events" 3 (List.length (Fault_tree.basic_events t));
  Alcotest.(check bool) "find" true (Option.is_some (Fault_tree.find_event t "b"));
  Alcotest.check_raises "empty gate"
    (Invalid_argument "Fault_tree.and_ g: no children") (fun () ->
      ignore (Fault_tree.and_ "g" []))

let test_koon_validation () =
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Fault_tree.koon v: k=3 out of range for 2 children")
    (fun () -> ignore (Fault_tree.koon "v" ~k:3 [ b "a"; b "b" ]))

let test_duplicate_events_deduped () =
  let t = Fault_tree.or_ "top" [ b "a"; b "a" ] in
  Alcotest.(check int) "distinct events" 1 (List.length (Fault_tree.basic_events t))

(* ---------- cut sets ---------- *)

let test_cut_sets_or () =
  let t = Fault_tree.or_ "top" [ b "a"; b "b" ] in
  Alcotest.(check (list (list string))) "two singletons" [ [ "a" ]; [ "b" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_and () =
  let t = Fault_tree.and_ "top" [ b "a"; b "b" ] in
  Alcotest.(check (list (list string))) "one pair" [ [ "a"; "b" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_absorption () =
  (* a OR (a AND b) = a: the pair is absorbed. *)
  let t = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "a"; b "b" ] ] in
  Alcotest.(check (list (list string))) "absorbed" [ [ "a" ] ] (Cut_sets.minimal t)

let test_cut_sets_series_parallel () =
  (* (a OR b) AND (a OR c) = a OR (b AND c). *)
  let t =
    Fault_tree.and_ "top"
      [ Fault_tree.or_ "g1" [ b "a"; b "b" ]; Fault_tree.or_ "g2" [ b "a"; b "c" ] ]
  in
  Alcotest.(check (list (list string))) "factorised" [ [ "a" ]; [ "b"; "c" ] ]
    (Cut_sets.minimal t)

let test_cut_sets_koon () =
  (* 2oo3 voting: any pair of channel failures. *)
  let t = Fault_tree.koon "v" ~k:2 [ b "a"; b "b"; b "c" ] in
  Alcotest.(check (list (list string))) "all pairs"
    [ [ "a"; "b" ]; [ "a"; "c" ]; [ "b"; "c" ] ]
    (Cut_sets.minimal t)

let test_singletons_and_histogram () =
  let sets = [ [ "a" ]; [ "b"; "c" ]; [ "d" ]; [ "e"; "f"; "g" ] ] in
  Alcotest.(check (list string)) "singletons" [ "a"; "d" ] (Cut_sets.singletons sets);
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 2); (2, 1); (3, 1) ]
    (Cut_sets.order_histogram sets)

(* Does the tree's top event hold when exactly [failed] have occurred?
   The executable specification every engine is tested against. *)
let rec holds failed = function
  | Fault_tree.Basic e -> List.mem e.Fault_tree.event_id failed
  | Fault_tree.And (_, cs) -> List.for_all (holds failed) cs
  | Fault_tree.Or (_, cs) -> List.exists (holds failed) cs
  | Fault_tree.Koon (_, k, cs) ->
      List.length (List.filter (holds failed) cs) >= k

(* Random trees over a small event pool (repetition is common — the
   interesting case for both engines).  [rich] adds k-oo-n gates and
   rates; the original AND/OR generator is kept for the legacy
   minimality property. *)
let rec tree_gen depth next_id =
  QCheck.Gen.(
    if depth = 0 then
      map (fun i -> b (Printf.sprintf "e%d" (i mod next_id))) (int_range 0 (next_id - 1))
    else
      frequency
        [
          (2, map (fun i -> b (Printf.sprintf "e%d" (i mod next_id))) (int_range 0 (next_id - 1)));
          ( 1,
            map
              (fun cs -> Fault_tree.and_ "g" cs)
              (list_size (int_range 1 3) (tree_gen (depth - 1) next_id)) );
          ( 1,
            map
              (fun cs -> Fault_tree.or_ "g" cs)
              (list_size (int_range 1 3) (tree_gen (depth - 1) next_id)) );
        ])

let rich_tree_gen depth next_id =
  let leaf =
    QCheck.Gen.map
      (fun i ->
        let i = i mod next_id in
        b ~rate:(10.0 *. float_of_int (i + 1)) (Printf.sprintf "e%d" i))
      (QCheck.Gen.int_range 0 (next_id - 1))
  in
  let rec go depth =
    QCheck.Gen.(
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map
                (fun cs -> Fault_tree.and_ "g" cs)
                (list_size (int_range 1 3) (go (depth - 1))) );
            ( 1,
              map
                (fun cs -> Fault_tree.or_ "g" cs)
                (list_size (int_range 1 3) (go (depth - 1))) );
            ( 1,
              map2
                (fun k cs ->
                  Fault_tree.koon "v" ~k:(1 + (k mod List.length cs)) cs)
                (int_range 0 2)
                (list_size (int_range 2 4) (go (depth - 1))) );
          ])
  in
  go depth

(* Property: every minimal cut set, when "failed", satisfies the tree;
   removing any event from it un-satisfies it (true minimality). *)
let prop_cut_sets_minimal =
  QCheck.Test.make ~name:"minimal cut sets are cut sets and minimal" ~count:80
    (QCheck.make (tree_gen 3 6))
    (fun t ->
      let sets = Cut_sets.minimal t in
      List.for_all
        (fun set ->
          holds set t
          && List.for_all
               (fun e -> not (holds (List.filter (fun x -> x <> e) set) t))
               set)
        sets)

(* The merge-based minimizer must agree, order included, with the
   historical quadratic one ([List.mem] membership scans) — on random
   collections of normalized sets and on the DNFs MOCUS produces. *)
let prop_minimize_matches_reference =
  let reference_minimize sets =
    let subset a b = List.for_all (fun x -> List.mem x b) a in
    let sorted =
      List.sort (fun a b -> Int.compare (List.length a) (List.length b)) sets
    in
    List.rev
      (List.fold_left
         (fun kept s ->
           if List.exists (fun k -> subset k s) kept then kept else s :: kept)
         [] sorted)
  in
  QCheck.Test.make ~name:"minimize = reference minimizer" ~count:120
    QCheck.(
      list_of_size
        (QCheck.Gen.int_range 0 20)
        (list_of_size (QCheck.Gen.int_range 0 5) (QCheck.int_range 0 7)))
    (fun raw ->
      let sets =
        List.map
          (fun xs -> Cut_sets.normalize (List.map (Printf.sprintf "e%d") xs))
          raw
      in
      Cut_sets.minimize sets = reference_minimize sets)

(* ---------- quantification ---------- *)

let test_event_probabilities () =
  let t = Fault_tree.or_ "top" [ b ~rate:100.0 "a"; b "norate" ] in
  let ps = Quant.event_probabilities ~mission_hours:10_000.0 t in
  let pa = List.assoc "a" ps in
  (* 100 FIT over 1e4 h: p = 1 - exp(-1e-7 * 1e4) = ~1e-3. *)
  Alcotest.(check bool) "magnitude" true (pa > 9.9e-4 && pa < 1.01e-3);
  Alcotest.(check (float 1e-12)) "missing rate -> 0" 0.0 (List.assoc "norate" ps)

let test_top_probability_gates () =
  let ps = [ ("a", 0.1); ("b", 0.2) ] in
  Alcotest.(check (float 1e-12)) "and" 0.02
    (Quant.top_probability_exact (Fault_tree.and_ "g" [ b "a"; b "b" ]) ps);
  Alcotest.(check (float 1e-12)) "or" 0.28
    (Quant.top_probability_exact (Fault_tree.or_ "g" [ b "a"; b "b" ]) ps);
  (* 2oo3 with p=0.1 each: 3*0.01*0.9 + 0.001 = 0.028 *)
  let ps3 = [ ("a", 0.1); ("b", 0.1); ("c", 0.1) ] in
  Alcotest.(check (float 1e-12)) "2oo3" 0.028
    (Quant.top_probability_exact
       (Fault_tree.koon "v" ~k:2 [ b "a"; b "b"; b "c" ])
       ps3)

let test_bounds_order () =
  (* rare-event >= esary-proschan >= exact for an OR of independents. *)
  let t = Fault_tree.or_ "g" [ b "a"; b "b"; b "c" ] in
  let ps = [ ("a", 0.2); ("b", 0.3); ("c", 0.1) ] in
  let sets = Cut_sets.minimal t in
  let rare = Quant.rare_event_bound sets ps in
  let ep = Quant.esary_proschan sets ps in
  let exact = Quant.top_probability_exact t ps in
  Alcotest.(check (float 1e-12)) "rare = sum" 0.6 rare;
  Alcotest.(check bool) "ordering" true (rare >= ep && ep >= exact -. 1e-12);
  Alcotest.(check (float 1e-12)) "ep equals exact for OR" exact ep

let test_importance () =
  let sets = [ [ "a" ]; [ "b" ] ] in
  let ps = [ ("a", 0.3); ("b", 0.1) ] in
  match Quant.importance sets ps with
  | (top, share) :: _ ->
      Alcotest.(check string) "a dominates" "a" top;
      Alcotest.(check (float 1e-9)) "share" 0.75 share
  | [] -> Alcotest.fail "expected importance entries"

(* ---------- from SSAM + cross-check ---------- *)

let test_generate_from_case_study () =
  let tree = From_ssam.generate Decisive.Case_study.power_supply_root in
  let singles = Cut_sets.singletons (Cut_sets.minimal tree) in
  Alcotest.(check bool) "D1 single" true (List.mem "loss:D1" singles);
  Alcotest.(check bool) "MC1 single" true (List.mem "loss:MC1" singles);
  Alcotest.(check bool) "C1 not a single" false (List.mem "loss:C1" singles)

let test_loss_rate () =
  let d1 =
    Option.get
      (Ssam.Architecture.find_in_package Decisive.Case_study.power_supply_ssam "D1")
  in
  (* 10 FIT * 30% open = 3 FIT of loss-like rate. *)
  Alcotest.(check (float 1e-9)) "D1 loss rate" 3.0 (From_ssam.loss_rate_fit d1)

let test_redundant_becomes_koon () =
  let child =
    Ssam.Architecture.component ~fit:10.0
      ~failure_modes:
        [
          Ssam.Architecture.failure_mode
            ~meta:(Ssam.Base.meta ~name:"loss" "c:loss")
            ~nature:Ssam.Architecture.Loss_of_function ~distribution_pct:100.0 ();
        ]
      ~functions:
        [ Ssam.Architecture.func ~meta:(Ssam.Base.meta "fn") Ssam.Architecture.TwoOoThree ]
      ~meta:(Ssam.Base.meta ~name:"C" "C")
      ()
  in
  let root =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[ child ]
      ~connections:
        [
          Ssam.Architecture.relationship ~meta:(Ssam.Base.meta "c0")
            ~from_component:"root" ~to_component:"C" ();
          Ssam.Architecture.relationship ~meta:(Ssam.Base.meta "c1")
            ~from_component:"C" ~to_component:"root" ();
        ]
      ~meta:(Ssam.Base.meta ~name:"root" "root")
      ()
  in
  let tree = From_ssam.generate root in
  let sets = Cut_sets.minimal tree in
  (* 2oo3: no singleton cut sets, three pairs. *)
  Alcotest.(check int) "no singletons" 0 (List.length (Cut_sets.singletons sets));
  Alcotest.(check int) "three pairs" 3 (List.length sets)

let test_no_paths () =
  let lonely =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[]
      ~meta:(Ssam.Base.meta ~name:"empty" "empty")
      ()
  in
  match From_ssam.generate lonely with
  | exception From_ssam.No_paths "empty" -> ()
  | _ -> Alcotest.fail "expected No_paths"

let test_cross_check_case_study () =
  Alcotest.(check bool) "FTA route agrees with Algorithm 1" true
    (Fmea_from_fta.agrees_with_path_fmea Decisive.Case_study.power_supply_root)

(* Random layered series-parallel system: stage i's [widths_i] blocks
   each feed every block of stage i+1; the boundary wraps the first and
   last stages.  Shared by the consistency properties below. *)
let layered_system widths =
  (* QCheck shrinking can step outside int_range; clamp defensively. *)
  let widths = List.map (fun w -> Int.max 1 (Int.min 3 w)) widths in
  let children = ref [] in
  let connections = ref [] in
  let k = ref 0 in
  let conn a bb =
    incr k;
    connections :=
      Ssam.Architecture.relationship
        ~meta:(Ssam.Base.meta (Printf.sprintf "k%d" !k))
        ~from_component:a ~to_component:bb ()
      :: !connections
  in
  let stage_ids =
    List.mapi
      (fun i width ->
        List.init width (fun j ->
            let id = Printf.sprintf "s%d_%d" i j in
            children :=
              Ssam.Architecture.component ~fit:10.0
                ~failure_modes:
                  [
                    Ssam.Architecture.failure_mode
                      ~meta:(Ssam.Base.meta ~name:"loss" (id ^ ":loss"))
                      ~nature:Ssam.Architecture.Loss_of_function
                      ~distribution_pct:100.0 ();
                  ]
                ~meta:(Ssam.Base.meta ~name:id id)
                ()
              :: !children;
            id))
      widths
  in
  (match stage_ids with
  | first :: _ -> List.iter (fun id -> conn "root" id) first
  | [] -> ());
  let rec wire = function
    | a :: (bs :: _ as rest) ->
        List.iter (fun x -> List.iter (fun y -> conn x y) bs) a;
        wire rest
    | [ last ] -> List.iter (fun id -> conn id "root") last
    | [] -> ()
  in
  wire stage_ids;
  Ssam.Architecture.component ~component_type:Ssam.Architecture.System
    ~children:(List.rev !children)
    ~connections:(List.rev !connections)
    ~meta:(Ssam.Base.meta ~name:"root" "root")
    ()

(* Property: the consistency theorem on random series-parallel systems —
   singleton minimal cut sets = Algorithm 1's safety-related components. *)
let prop_fta_path_agreement =
  QCheck.Test.make ~name:"FTA singletons = path-FMEA single points" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 3))
    (fun widths -> Fmea_from_fta.agrees_with_path_fmea (layered_system widths))

(* ---------- BDD kernel ---------- *)

let with_jobs jobs f =
  let saved = Exec.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Exec.set_default_jobs saved)
    (fun () ->
      Exec.set_default_jobs jobs;
      f ())

let sort_sets sets =
  List.sort
    (fun a bb ->
      match Int.compare (List.length a) (List.length bb) with
      | 0 -> List.compare String.compare a bb
      | n -> n)
    (List.map (List.sort String.compare) sets)

let test_bdd_engine_known_trees () =
  let t =
    Fault_tree.and_ "top"
      [ Fault_tree.or_ "g1" [ b "a"; b "bb" ]; Fault_tree.or_ "g2" [ b "a"; b "c" ] ]
  in
  Alcotest.(check (list (list string)))
    "series-parallel via BDD"
    [ [ "a" ]; [ "bb"; "c" ] ]
    (Cut_sets.minimal ~engine:`Bdd t);
  let m = Bdd.build t in
  Alcotest.(check bool) "not constant" true (Bdd.constant m = None);
  Alcotest.(check int) "three variables" 3 (Bdd.var_count m);
  Alcotest.(check bool) "has decision nodes" true (Bdd.node_count m > 0);
  Alcotest.(check (float 0.0)) "two minimal cut sets" 2.0 (Bdd.minimal_cut_set_count m);
  Alcotest.(check (list (list string)))
    "cardinality-1 critical sets" [ [ "a" ] ]
    (Bdd.minimal_critical_sets ~max_cardinality:1 m);
  (* A reversed variable order changes the diagram, never the sets. *)
  let m' = Bdd.build ~order:[ "c"; "bb"; "a" ] t in
  Alcotest.(check (list (list string)))
    "order-independent" (Bdd.minimal_cut_sets m) (Bdd.minimal_cut_sets m');
  (* Constant detection: a 1-oo-1 vote of a tautology is impossible here,
     but an empty-cut-set function is: a AND (NOT available) — instead
     check the constant-true side via an always-failing koon dual. *)
  Alcotest.(check bool) "constant reported" true
    (Bdd.constant (Bdd.build (b "a")) = None)

let test_koon_beyond_mocus_cap_exact () =
  (* 2-oo-30 voting: C(30,2) = 435 pairs.  Check the BDD count and the
     Shannon probability against the closed form for i.i.d. channels. *)
  let n = 30 and p = 0.01 in
  let t =
    Fault_tree.koon "v" ~k:2 (List.init n (fun i -> b (Printf.sprintf "x%02d" i)))
  in
  let m = Bdd.build t in
  Alcotest.(check (float 0.0)) "pair count" 435.0 (Bdd.minimal_cut_set_count m);
  let closed =
    1.0
    -. ((1.0 -. p) ** float_of_int n)
    -. (float_of_int n *. p *. ((1.0 -. p) ** float_of_int (n - 1)))
  in
  let got = Bdd.probability m (fun _ -> p) in
  Alcotest.(check (float 1e-12)) "P(>=2 of 30)" closed got

let test_cap_fallback () =
  (* C(20,2) = 190 intermediate sets: past a 100-set cap MOCUS raises,
     `Auto falls back to the BDD and returns the exact answer. *)
  let t =
    Fault_tree.koon "v" ~k:2 (List.init 20 (fun i -> b (Printf.sprintf "x%02d" i)))
  in
  Alcotest.check_raises "explicit MOCUS still raises"
    (Invalid_argument "Cut_sets.minimal: intermediate size 190 exceeds 100")
    (fun () -> ignore (Cut_sets.minimal ~max_sets:100 ~engine:`Mocus t));
  let auto = Cut_sets.minimal ~max_sets:100 t in
  Alcotest.(check int) "auto fallback solves exactly" 190 (List.length auto);
  Alcotest.(check (list (list string)))
    "fallback = BDD engine" (Cut_sets.minimal ~engine:`Bdd t) auto

let prop_bdd_equals_mocus =
  QCheck.Test.make
    ~name:"BDD cut sets = MOCUS cut sets (SAME_JOBS 1/4)" ~count:120
    (QCheck.make QCheck.Gen.(pair (rich_tree_gen 3 6) (oneofl [ 1; 4 ])))
    (fun (t, jobs) ->
      with_jobs jobs (fun () ->
          Cut_sets.minimal ~engine:`Bdd t = Cut_sets.minimal ~engine:`Mocus t))

(* Brute force over all event subsets (≤ 12 events): the minimal models
   of the structure function, filtered per cardinality. *)
let brute_minimal t =
  let events =
    List.map (fun (e : Fault_tree.event) -> e.Fault_tree.event_id)
      (Fault_tree.basic_events t)
  in
  let arr = Array.of_list events in
  let n = Array.length arr in
  assert (n <= 12);
  let sets = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let set =
      List.filter_map
        (fun i -> if mask land (1 lsl i) <> 0 then Some arr.(i) else None)
        (List.init n Fun.id)
    in
    if holds set t then sets := Cut_sets.normalize set :: !sets
  done;
  sort_sets (Cut_sets.minimize !sets)

let prop_critical_sets_brute_force =
  QCheck.Test.make
    ~name:"cardinality-k critical sets = brute-force enumeration" ~count:40
    (QCheck.make (rich_tree_gen 3 12))
    (fun t ->
      let reference = brute_minimal t in
      let m = Bdd.build t in
      Bdd.minimal_cut_sets m = reference
      && List.for_all
           (fun k ->
             Bdd.minimal_critical_sets ~max_cardinality:k m
             = List.filter (fun s -> List.length s <= k) reference)
           [ 1; 2; 3 ])

(* ---------- BDD quantification ---------- *)

let test_quant_repeated_exact () =
  (* a OR (a AND b) ≡ a: the legacy independent-copies recursion
     overestimates, the BDD route is exact. *)
  let t = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "a"; b "bb" ] ] in
  let ps = [ ("a", 0.3); ("bb", 0.5) ] in
  Alcotest.(check (float 1e-12)) "exact = P(a)" 0.3
    (Quant.top_probability_exact t ps);
  Alcotest.(check bool) "legacy overestimates repeated events" true
    (Quant.top_probability_independent t ps > 0.3 +. 1e-6)

let prop_quant_old_new_agree_without_repetition =
  (* On repetition-free trees the deprecated recursion is correct: the
     two evaluations must agree to float noise. *)
  let uniquify t =
    let n = ref 0 in
    let rec go = function
      | Fault_tree.Basic e ->
          incr n;
          Fault_tree.Basic
            { e with Fault_tree.event_id = Printf.sprintf "u%d" !n }
      | Fault_tree.And (id, cs) -> Fault_tree.And (id, List.map go cs)
      | Fault_tree.Or (id, cs) -> Fault_tree.Or (id, List.map go cs)
      | Fault_tree.Koon (id, k, cs) -> Fault_tree.Koon (id, k, List.map go cs)
    in
    go t
  in
  QCheck.Test.make
    ~name:"BDD probability = legacy recursion on repetition-free trees"
    ~count:100
    (QCheck.make (rich_tree_gen 3 6))
    (fun t ->
      let t = uniquify t in
      let ps =
        List.mapi
          (fun i (e : Fault_tree.event) ->
            (e.Fault_tree.event_id, 0.05 +. (0.09 *. float_of_int (i mod 10))))
          (Fault_tree.basic_events t)
      in
      Float.abs
        (Quant.top_probability_exact t ps
        -. Quant.top_probability_independent t ps)
      <= 1e-9)

let test_importance_measures () =
  let t = Fault_tree.or_ "top" [ b "a"; b "bb" ] in
  let ps = [ ("a", 0.1); ("bb", 0.2) ] in
  (match Quant.birnbaum t ps with
  | (top, v) :: _ ->
      Alcotest.(check string) "bb has top Birnbaum" "bb" top;
      Alcotest.(check (float 1e-12)) "1 - P(a)" 0.9 v
  | [] -> Alcotest.fail "expected birnbaum entries");
  (match Quant.fussell_vesely t ps with
  | (top, v) :: _ ->
      Alcotest.(check string) "bb has top FV" "bb" top;
      (* P(top) = 0.28; removing bb leaves 0.1. *)
      Alcotest.(check (float 1e-12)) "share" ((0.28 -. 0.1) /. 0.28) v
  | [] -> Alcotest.fail "expected FV entries");
  (* Repeated events: FV of the dominating event is 1, the absorbed
     event contributes nothing. *)
  let t2 = Fault_tree.or_ "top" [ b "a"; Fault_tree.and_ "g" [ b "a"; b "bb" ] ] in
  let ps2 = [ ("a", 0.3); ("bb", 0.5) ] in
  Alcotest.(check (float 1e-12)) "FV(a) = 1" 1.0
    (List.assoc "a" (Quant.fussell_vesely t2 ps2));
  Alcotest.(check (float 1e-12)) "Birnbaum(bb) = 0" 0.0
    (List.assoc "bb" (Quant.birnbaum t2 ps2))

(* ---------- structural lowering (of_structure) ---------- *)

let test_of_structure_case_study () =
  let root = Decisive.Case_study.power_supply_root in
  Alcotest.(check (list (list string)))
    "of_structure = generate (minimal cut sets, PSU)"
    (Cut_sets.minimal (From_ssam.generate root))
    (Cut_sets.minimal (From_ssam.of_structure root))

let prop_of_structure_equals_generate =
  QCheck.Test.make
    ~name:"of_structure = generate on layered systems" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 3))
    (fun widths ->
      let root = layered_system widths in
      Cut_sets.minimal (From_ssam.of_structure root)
      = Cut_sets.minimal (From_ssam.generate root))

let cyclic_root () =
  let block id =
    Ssam.Architecture.component ~fit:10.0
      ~meta:(Ssam.Base.meta ~name:id id)
      ()
  in
  let conn n a bb =
    Ssam.Architecture.relationship ~meta:(Ssam.Base.meta n) ~from_component:a
      ~to_component:bb ()
  in
  Ssam.Architecture.component ~component_type:Ssam.Architecture.System
    ~children:[ block "A"; block "B" ]
    ~connections:
      [ conn "k0" "root" "A"; conn "k1" "A" "B"; conn "k2" "B" "A";
        conn "k3" "B" "root" ]
    ~meta:(Ssam.Base.meta ~name:"root" "root")
    ()

let test_of_structure_cyclic () =
  match From_ssam.of_structure (cyclic_root ()) with
  | exception From_ssam.Cyclic stuck ->
      Alcotest.(check bool) "cycle members named" true
        (List.mem "A" stuck && List.mem "B" stuck)
  | _ -> Alcotest.fail "expected Cyclic"

let test_of_structure_no_paths () =
  let lonely =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[]
      ~meta:(Ssam.Base.meta ~name:"empty" "empty")
      ()
  in
  match From_ssam.of_structure lonely with
  | exception From_ssam.No_paths "empty" -> ()
  | _ -> Alcotest.fail "expected No_paths"

let test_event_order () =
  let root = Decisive.Case_study.power_supply_root in
  let order = From_ssam.event_order root in
  Alcotest.(check bool) "no duplicate events" true
    (List.length order = List.length (List.sort_uniq String.compare order));
  let tree_events =
    List.map (fun (e : Fault_tree.event) -> e.Fault_tree.event_id)
      (Fault_tree.basic_events (From_ssam.of_structure root))
  in
  Alcotest.(check bool) "covers the lowered tree's events" true
    (List.for_all (fun id -> List.mem id order) tree_events);
  (* The hint must be harmless to feed straight into the kernel. *)
  let m =
    Bdd.build ~order (From_ssam.of_structure root)
  in
  Alcotest.(check (list (list string)))
    "ordered build = default build"
    (Bdd.minimal_cut_sets (Bdd.build (From_ssam.of_structure root)))
    (Bdd.minimal_cut_sets m)

(* Acceptance: three routes, one answer, on the paper's PSU. *)
let test_single_points_three_routes () =
  let root = Decisive.Case_study.power_supply_root in
  let via_paths = Fmea.Path_fmea.single_points root in
  Alcotest.(check (list string))
    "BDD cardinality-1 = dominator single points"
    via_paths
    (Fmea_from_fta.single_points_via_bdd root);
  Alcotest.(check bool) "non-trivial" true (via_paths <> [])

let prop_single_points_via_bdd =
  QCheck.Test.make
    ~name:"BDD single points = dominator single points (layered)" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 3))
    (fun widths ->
      let root = layered_system widths in
      Fmea_from_fta.single_points_via_bdd root
      = Fmea.Path_fmea.single_points root)

let suite =
  [
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "koon validation" `Quick test_koon_validation;
    Alcotest.test_case "duplicate events deduped" `Quick test_duplicate_events_deduped;
    Alcotest.test_case "cut sets: or" `Quick test_cut_sets_or;
    Alcotest.test_case "cut sets: and" `Quick test_cut_sets_and;
    Alcotest.test_case "cut sets: absorption" `Quick test_cut_sets_absorption;
    Alcotest.test_case "cut sets: series-parallel" `Quick test_cut_sets_series_parallel;
    Alcotest.test_case "cut sets: koon" `Quick test_cut_sets_koon;
    Alcotest.test_case "singletons/histogram" `Quick test_singletons_and_histogram;
    QCheck_alcotest.to_alcotest prop_cut_sets_minimal;
    QCheck_alcotest.to_alcotest prop_minimize_matches_reference;
    Alcotest.test_case "event probabilities" `Quick test_event_probabilities;
    Alcotest.test_case "gate probabilities" `Quick test_top_probability_gates;
    Alcotest.test_case "bound ordering" `Quick test_bounds_order;
    Alcotest.test_case "importance" `Quick test_importance;
    Alcotest.test_case "generate from case study" `Quick test_generate_from_case_study;
    Alcotest.test_case "loss rate" `Quick test_loss_rate;
    Alcotest.test_case "redundancy becomes koon" `Quick test_redundant_becomes_koon;
    Alcotest.test_case "no paths" `Quick test_no_paths;
    Alcotest.test_case "cross-check case study" `Quick test_cross_check_case_study;
    QCheck_alcotest.to_alcotest prop_fta_path_agreement;
    Alcotest.test_case "bdd: known trees" `Quick test_bdd_engine_known_trees;
    Alcotest.test_case "bdd: koon exact past expansion" `Quick
      test_koon_beyond_mocus_cap_exact;
    Alcotest.test_case "cap fallback to BDD" `Quick test_cap_fallback;
    QCheck_alcotest.to_alcotest prop_bdd_equals_mocus;
    QCheck_alcotest.to_alcotest prop_critical_sets_brute_force;
    Alcotest.test_case "quant: repeated events exact" `Quick
      test_quant_repeated_exact;
    QCheck_alcotest.to_alcotest prop_quant_old_new_agree_without_repetition;
    Alcotest.test_case "quant: importance measures" `Quick
      test_importance_measures;
    Alcotest.test_case "of_structure: case study" `Quick
      test_of_structure_case_study;
    QCheck_alcotest.to_alcotest prop_of_structure_equals_generate;
    Alcotest.test_case "of_structure: cyclic" `Quick test_of_structure_cyclic;
    Alcotest.test_case "of_structure: no paths" `Quick
      test_of_structure_no_paths;
    Alcotest.test_case "event order hint" `Quick test_event_order;
    Alcotest.test_case "single points: three routes" `Quick
      test_single_points_three_routes;
    QCheck_alcotest.to_alcotest prop_single_points_via_bdd;
  ]

(* ---------- export ---------- *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

(* The round-trip reader lives in the library now ([Export.of_open_psa]);
   the property keeps an independent count of gate definitions.  Gate ids
   mutate (the writer suffixes a counter) but the boolean structure,
   event ids and rates must survive. *)
let defined_gate_count (root : Modelio.Xml.element) =
  List.length (Modelio.Xml.descendants root "define-gate")

let prop_open_psa_round_trip =
  QCheck.Test.make ~name:"Open-PSA round-trip preserves the tree" ~count:80
    (QCheck.make (rich_tree_gen 3 6))
    (fun t ->
      let reparsed = Modelio.Xml.parse (Export.to_open_psa_string t) in
      let t' = Export.of_open_psa reparsed in
      let defined_gates = defined_gate_count reparsed in
      (* one define-gate per gate occurrence, plus the "top" wrapper *)
      defined_gates = Fault_tree.gate_count t + 1
      && Bdd.minimal_cut_sets (Bdd.build t')
         = Bdd.minimal_cut_sets (Bdd.build t)
      && List.length (Fault_tree.basic_events t)
         = List.length (Fault_tree.basic_events t')
      && List.for_all2
           (fun (a : Fault_tree.event) (bb : Fault_tree.event) ->
             String.equal a.Fault_tree.event_id bb.Fault_tree.event_id
             &&
             match (a.Fault_tree.rate_fit, bb.Fault_tree.rate_fit) with
             | None, None -> true
             | Some x, Some y ->
                 Float.abs (x -. y) <= 1e-5 *. Float.max 1.0 (Float.abs x)
             | _ -> false)
           (List.sort compare (Fault_tree.basic_events t))
           (List.sort compare (Fault_tree.basic_events t')))

let export_suite =
  let tree = From_ssam.generate Decisive.Case_study.power_supply_root in
  let test_dot () =
    let dot = Export.to_dot ~name:"psu" tree in
    Alcotest.(check bool) "digraph header" true (contains dot "digraph psu");
    Alcotest.(check bool) "OR gate shape" true (contains dot "invhouse");
    Alcotest.(check bool) "event labelled with rate" true (contains dot "3 FIT");
    (* Repeated basic events are emitted once. *)
    let occurrences needle =
      let rec go i acc =
        if i + String.length needle > String.length dot then acc
        else if String.sub dot i (String.length needle) = needle then
          go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    Alcotest.(check int) "D1 node emitted once" 1
      (occurrences "ev_loss_D1 [shape=circle")
  in
  let test_dot_koon () =
    let vote = Fault_tree.koon "v" ~k:2 [ Fault_tree.basic "a"; Fault_tree.basic "b"; Fault_tree.basic "c" ] in
    Alcotest.(check bool) "k/N label" true (contains (Export.to_dot vote) "2/3")
  in
  let test_open_psa () =
    let xml = Export.to_open_psa ~model_name:"psu" tree in
    Alcotest.(check string) "root tag" "opsa-mef" xml.Modelio.Xml.tag;
    (* Parses back as XML and contains the expected structures. *)
    let s = Export.to_open_psa_string tree in
    let reparsed = Modelio.Xml.parse s in
    Alcotest.(check bool) "fault tree defined" true
      (Modelio.Xml.descendants reparsed "define-fault-tree" <> []);
    Alcotest.(check bool) "basic events defined" true
      (List.length (Modelio.Xml.descendants reparsed "define-basic-event") >= 5);
    (* MC1's 300 FIT becomes 3e-7 per hour. *)
    Alcotest.(check bool) "rates converted" true (contains s "3.000000e-07")
  in
  let test_save_files () =
    let dot_path = Filename.temp_file "ft" ".dot" in
    let psa_path = Filename.temp_file "ft" ".xml" in
    Export.save_dot ~path:dot_path tree;
    Export.save_open_psa ~path:psa_path tree;
    let size p =
      let ic = open_in p in
      let n = in_channel_length ic in
      close_in ic;
      n
    in
    Alcotest.(check bool) "files non-empty" true (size dot_path > 0 && size psa_path > 0);
    Sys.remove dot_path;
    Sys.remove psa_path
  in
  let test_round_trip_case_study () =
    let tree' = Export.parse_open_psa (Export.to_open_psa_string tree) in
    Alcotest.(check (list (list string)))
      "cut sets survive the MEF round-trip"
      (Cut_sets.minimal tree)
      (Bdd.minimal_cut_sets (Bdd.build tree'))
  in
  let test_import_errors () =
    let expect_error doc =
      match Export.parse_open_psa doc with
      | exception Export.Format_error _ -> ()
      | _ -> Alcotest.fail "expected Format_error"
    in
    expect_error "<opsa-mef></opsa-mef>";
    expect_error
      "<opsa-mef><define-fault-tree name=\"t\"><define-gate name=\"top\"><gate \
       name=\"missing\"/></define-gate></define-fault-tree></opsa-mef>";
    expect_error
      "<opsa-mef><define-fault-tree name=\"t\"><define-gate \
       name=\"top\"><xor><basic-event name=\"a\"/><basic-event \
       name=\"b\"/></xor></define-gate></define-fault-tree></opsa-mef>";
    (* No gate named "top": fall back to the first defined gate. *)
    let t =
      Export.parse_open_psa
        "<opsa-mef><define-fault-tree name=\"t\"><define-gate \
         name=\"root\"><or><basic-event name=\"a\"/><basic-event \
         name=\"b\"/></or></define-gate></define-fault-tree></opsa-mef>"
    in
    Alcotest.(check int) "fallback top gate read" 2
      (List.length (Fault_tree.basic_events t))
  in
  [
    Alcotest.test_case "dot export" `Quick test_dot;
    Alcotest.test_case "dot koon" `Quick test_dot_koon;
    Alcotest.test_case "open-psa export" `Quick test_open_psa;
    Alcotest.test_case "save files" `Quick test_save_files;
    Alcotest.test_case "open-psa round-trip (case study)" `Quick
      test_round_trip_case_study;
    Alcotest.test_case "open-psa import errors" `Quick test_import_errors;
    QCheck_alcotest.to_alcotest prop_open_psa_round_trip;
  ]
