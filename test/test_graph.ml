(* Tests for the shared graph kernels — bitsets, the CSR digraph,
   Tarjan SCC, Lengauer–Tarjan dominators — and the dominator-based
   path FMEA built on them, differentially tested against the
   enumeration reference on random (also cyclic) diagrams. *)

open Ssam

(* ---------- bitset ---------- *)

let test_bitset () =
  let s = Graph.Bitset.create 200 in
  Alcotest.(check int) "universe" 200 (Graph.Bitset.length s);
  Alcotest.(check int) "empty" 0 (Graph.Bitset.cardinal s);
  List.iter (Graph.Bitset.add s) [ 0; 62; 63; 64; 199 ];
  Alcotest.(check int) "cardinal" 5 (Graph.Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Graph.Bitset.mem s 63);
  Alcotest.(check bool) "not mem 1" false (Graph.Bitset.mem s 1);
  Graph.Bitset.remove s 63;
  Alcotest.(check (list int)) "to_list sorted" [ 0; 62; 64; 199 ]
    (Graph.Bitset.to_list s);
  let t = Graph.Bitset.create 200 in
  Graph.Bitset.add t 5;
  Alcotest.(check bool) "union changes" true
    (Graph.Bitset.union_into ~into:t s);
  Alcotest.(check bool) "union idempotent" false
    (Graph.Bitset.union_into ~into:t s);
  Alcotest.(check (list int)) "union members" [ 0; 5; 62; 64; 199 ]
    (Graph.Bitset.to_list t)

(* ---------- digraph ---------- *)

let abc_graph =
  Graph.Digraph.of_edges ~nodes:[ "a" ]
    [ ("a", "b"); ("b", "c"); ("a", "c"); ("d", "c") ]

let test_digraph_basics () =
  let g = abc_graph in
  Alcotest.(check int) "nodes" 4 (Graph.Digraph.node_count g);
  Alcotest.(check int) "edges" 4 (Graph.Digraph.edge_count g);
  (* Interning order: the nodes list first, then edge-endpoint first
     occurrence. *)
  Alcotest.(check (list string)) "index order" [ "a"; "b"; "c"; "d" ]
    (Graph.Digraph.nodes g);
  Alcotest.(check (option int)) "index" (Some 2) (Graph.Digraph.index g "c");
  Alcotest.(check (option int)) "unknown" None (Graph.Digraph.index g "zz");
  Alcotest.(check string) "name" "d" (Graph.Digraph.name g 3);
  Alcotest.(check (list string)) "successors in edge order" [ "b"; "c" ]
    (Graph.Digraph.successor_names g "a");
  Alcotest.(check (list string)) "predecessors" [ "b"; "a"; "d" ]
    (Graph.Digraph.predecessor_names g "c");
  Alcotest.(check (list string)) "unknown id" []
    (Graph.Digraph.successor_names g "zz");
  Alcotest.(check int) "out degree" 2
    (Graph.Digraph.out_degree g (Option.get (Graph.Digraph.index g "a")));
  Alcotest.(check int) "in degree" 3
    (Graph.Digraph.in_degree g (Option.get (Graph.Digraph.index g "c")))

let test_reachability () =
  let g = abc_graph in
  let idx id = Option.get (Graph.Digraph.index g id) in
  Alcotest.(check (list int)) "forward from a"
    [ idx "a"; idx "b"; idx "c" ]
    (List.sort Int.compare
       (Graph.Bitset.to_list (Graph.Digraph.reachable_from g [ idx "a" ])));
  Alcotest.(check (list int)) "backward from c"
    [ idx "a"; idx "b"; idx "c"; idx "d" ]
    (List.sort Int.compare
       (Graph.Bitset.to_list (Graph.Digraph.coreachable_of g [ idx "c" ])))

let test_undirected_components () =
  let g =
    Graph.Digraph.of_edges ~nodes:[ "lone" ]
      [ ("a", "b"); ("c", "b"); ("x", "y") ]
  in
  let comp, count = Graph.Digraph.undirected_components g in
  Alcotest.(check int) "three components" 3 count;
  let of_id id = comp.(Option.get (Graph.Digraph.index g id)) in
  (* Deterministic numbering by smallest member index: lone=0, {a,b,c}=1,
     {x,y}=2. *)
  Alcotest.(check int) "lone first" 0 (of_id "lone");
  Alcotest.(check int) "a" 1 (of_id "a");
  Alcotest.(check int) "b merged" 1 (of_id "b");
  Alcotest.(check int) "c merged" 1 (of_id "c");
  Alcotest.(check int) "x" 2 (of_id "x");
  Alcotest.(check int) "y" 2 (of_id "y")

(* ---------- SCC ---------- *)

let test_scc () =
  let g =
    Graph.Digraph.of_edges
      [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d"); ("d", "e"); ("e", "d") ]
  in
  let r = Graph.Scc.compute g in
  Alcotest.(check int) "two SCCs" 2 r.Graph.Scc.count;
  let scc id = r.Graph.Scc.component.(Option.get (Graph.Digraph.index g id)) in
  Alcotest.(check bool) "abc together" true (scc "a" = scc "b" && scc "b" = scc "c");
  Alcotest.(check bool) "de together" true (scc "d" = scc "e");
  (* Reverse topological: the edge abc -> de forces abc's id higher. *)
  Alcotest.(check bool) "reverse topological" true (scc "a" > scc "d");
  let dag = Graph.Scc.condense g r in
  Alcotest.(check int) "condensed nodes" 2 (Graph.Digraph.node_count dag);
  Alcotest.(check int) "condensed edges" 1 (Graph.Digraph.edge_count dag);
  (* Named after the lowest-index member of each SCC. *)
  Alcotest.(check (list string)) "edge a->d" [ "d" ]
    (Graph.Digraph.successor_names dag "a")

(* ---------- dominators ---------- *)

let test_dominators_diamond () =
  let g =
    Graph.Digraph.of_edges
      [ ("s", "a"); ("s", "b"); ("a", "t"); ("b", "t") ]
  in
  let idx id = Option.get (Graph.Digraph.index g id) in
  let idom = Graph.Dominators.idoms g ~root:(idx "s") in
  Alcotest.(check int) "root self" (idx "s") idom.(idx "s");
  Alcotest.(check int) "idom a = s" (idx "s") idom.(idx "a");
  Alcotest.(check int) "idom b = s" (idx "s") idom.(idx "b");
  Alcotest.(check int) "idom t = s (skips the diamond)" (idx "s")
    idom.(idx "t");
  Alcotest.(check (list int)) "dominator chain of t" [ idx "t"; idx "s" ]
    (Graph.Dominators.dominators ~idom (idx "t"))

let names_of_set g set =
  List.map (Graph.Digraph.name g) (Graph.Bitset.to_list set)

let test_on_every_path () =
  let g =
    Graph.Digraph.of_edges
      [ ("s", "a"); ("s", "b"); ("a", "m"); ("b", "m"); ("m", "t") ]
  in
  let idx id = Option.get (Graph.Digraph.index g id) in
  match
    Graph.Dominators.on_every_path g ~sources:[ idx "s" ] ~sinks:[ idx "t" ]
  with
  | None -> Alcotest.fail "expected a path"
  | Some set ->
      Alcotest.(check (list string)) "s, m, t on every path" [ "s"; "m"; "t" ]
        (List.sort (fun a b -> Int.compare (idx a) (idx b)) (names_of_set g set))

let test_on_every_path_none () =
  let g = Graph.Digraph.of_edges ~nodes:[ "s"; "t" ] [ ("t", "s") ] in
  let idx id = Option.get (Graph.Digraph.index g id) in
  Alcotest.(check bool) "no s->t path" true
    (Graph.Dominators.on_every_path g ~sources:[ idx "s" ] ~sinks:[ idx "t" ]
    = None)

let test_on_every_path_cyclic () =
  (* s -> a <-> b -> t: the cycle does not create an alternative route,
     so all four nodes are on every simple path. *)
  let g =
    Graph.Digraph.of_edges
      [ ("s", "a"); ("a", "b"); ("b", "a"); ("b", "t") ]
  in
  let idx id = Option.get (Graph.Digraph.index g id) in
  match
    Graph.Dominators.on_every_path g ~sources:[ idx "s" ] ~sinks:[ idx "t" ]
  with
  | None -> Alcotest.fail "expected a path"
  | Some set ->
      Alcotest.(check (list string)) "whole chain" [ "s"; "a"; "b"; "t" ]
        (List.sort (fun a b -> Int.compare (idx a) (idx b)) (names_of_set g set))

let test_order_hint () =
  (* s → {a, b} → m → t: chain members (s, m, t) sort before the
     parallel pair, all reachable nodes are present exactly once. *)
  let g =
    Graph.Digraph.of_edges ~nodes:[ "x" ]
      [ ("s", "a"); ("s", "b"); ("a", "m"); ("b", "m"); ("m", "t") ]
  in
  let idx id = Option.get (Graph.Digraph.index g id) in
  let hint = Graph.Dominators.order_hint g ~sources:[ idx "s" ] in
  Alcotest.(check int) "every node listed" (Graph.Digraph.node_count g)
    (List.length hint);
  Alcotest.(check int) "no duplicates"
    (Graph.Digraph.node_count g)
    (List.length (List.sort_uniq Int.compare hint));
  let pos id =
    let rec go i = function
      | [] -> Alcotest.failf "node %s missing from hint" id
      | x :: _ when x = idx id -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 hint
  in
  Alcotest.(check bool) "source first" true (pos "s" = 0);
  (* a, b and m share chain length 2 (none dominates another's path),
     so BFS depth breaks the tie; t's chain s→m→t is strictly longer. *)
  Alcotest.(check bool) "dominator chain order" true
    (pos "a" < pos "m" && pos "b" < pos "m" && pos "m" < pos "t");
  (* The unreachable node trails the reachable ones. *)
  Alcotest.(check bool) "unreachable last" true
    (pos "x" = Graph.Digraph.node_count g - 1);
  (* No sources: plain index order. *)
  Alcotest.(check (list int)) "no sources -> index order"
    (List.init (Graph.Digraph.node_count g) Fun.id)
    (Graph.Dominators.order_hint g ~sources:[])

(* ---------- path FMEA on the generator architectures ---------- *)

let test_single_points_diamond () =
  let sys = Circuit.Generator.diamond_arch ~stages:3 in
  Alcotest.(check int) "2^3 paths" 8
    (Circuit.Generator.diamond_path_count ~stages:3);
  Alcotest.(check (list string)) "junctions only" [ "J0"; "J1"; "J2"; "J3" ]
    (Fmea.Path_fmea.single_points sys)

let test_single_points_grid () =
  let sys = Circuit.Generator.grid_arch ~rows:3 ~cols:3 in
  Alcotest.(check int) "C(4,2) paths" 6
    (Circuit.Generator.grid_path_count ~rows:3 ~cols:3);
  Alcotest.(check (list string)) "the two corners" [ "B0_0"; "B2_2" ]
    (Fmea.Path_fmea.single_points sys)

(* Regression for the silent-overflow bug: an 18-stage diamond has
   2^18 = 262 144 simple paths — far beyond the enumeration cap.  The
   old [analyse] swallowed [Too_many_paths] into "alternative paths
   remain", reporting {e nothing} as safety-related.  The dominator
   route classifies it exactly. *)

let test_beyond_cap_exact () =
  let stages = 18 in
  let sys = Circuit.Generator.diamond_arch ~stages in
  Alcotest.(check bool) "beyond the enumeration cap" true
    (Circuit.Generator.diamond_path_count ~stages > Fmea.Path_fmea.max_paths);
  (match Fmea.Path_fmea.paths sys with
  | exception Fmea.Path_fmea.Too_many_paths -> ()
  | _ -> Alcotest.fail "expected Too_many_paths");
  let t = Fmea.Path_fmea.analyse sys in
  Alcotest.(check (list string)) "every junction is a single point"
    (List.init (stages + 1) (Printf.sprintf "J%d"))
    (Fmea.Table.safety_related_components t);
  Alcotest.(check int) "no warnings" 0 (List.length (Fmea.Table.warnings t))

let test_enumeration_overflow_warns () =
  (* The enumeration reference no longer fakes a verdict on overflow:
     every loss-like row gets an explicit warning instead. *)
  let sys = Circuit.Generator.diamond_arch ~stages:18 in
  let t = Fmea.Path_fmea.analyse_enumerated sys in
  Alcotest.(check (list string)) "no silent verdicts" []
    (Fmea.Table.safety_related_components t);
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let warnings = Fmea.Table.warnings t in
  Alcotest.(check int) "one warning per loss row" (1 + (18 * 3))
    (List.length warnings);
  List.iter
    (fun (_, w) ->
      Alcotest.(check bool) "mentions the overflow" true
        (contains ~sub:"overflow" w))
    warnings

(* ---------- differential property: dominators vs enumeration ---------- *)

let leaf id =
  Architecture.component ~fit:10.0
    ~failure_modes:
      [
        Architecture.failure_mode
          ~meta:(Base.meta ~name:"Loss" (id ^ ":loss"))
          ~nature:Architecture.Loss_of_function ~distribution_pct:100.0 ();
      ]
    ~meta:(Base.meta ~name:id id) ()

(* A layered diagram with mask-selected inter-stage edges (plus a
   repair pass so no node dangles), optionally with a feedback edge
   from the last stage back to the first — cycles must not perturb the
   classification. *)
let layered_system widths mask feedback =
  let widths = List.map (fun w -> Int.max 1 (Int.min 3 w)) widths in
  let root = "root" in
  let stage_ids =
    List.mapi
      (fun i w -> List.init w (fun j -> Printf.sprintf "s%d_%d" i j))
      widths
  in
  let children = List.map leaf (List.concat stage_ids) in
  let connections = ref [] in
  let added = Hashtbl.create 64 in
  let k = ref 0 in
  let add a b =
    if not (Hashtbl.mem added (a, b)) then begin
      Hashtbl.add added (a, b) ();
      incr k;
      connections :=
        Architecture.relationship
          ~meta:(Base.meta (Printf.sprintf "c%d" !k))
          ~from_component:a ~to_component:b ()
        :: !connections
    end
  in
  let bit =
    let counter = ref 0 in
    fun () ->
      let b = (mask lsr (!counter mod 61)) land 1 = 1 in
      incr counter;
      b
  in
  (match stage_ids with
  | first :: _ -> List.iter (add root) first
  | [] -> ());
  let rec wire = function
    | a :: (b :: _ as rest) ->
        List.iter
          (fun x -> List.iter (fun y -> if bit () then add x y) b)
          a;
        (* Repair: every stage node keeps at least one edge each way. *)
        List.iter
          (fun x ->
            if not (List.exists (fun y -> Hashtbl.mem added (x, y)) b) then
              add x (List.hd b))
          a;
        List.iter
          (fun y ->
            if not (List.exists (fun x -> Hashtbl.mem added (x, y)) a) then
              add (List.hd a) y)
          b;
        wire rest
    | [ last ] -> List.iter (fun x -> add x root) last
    | [] -> ()
  in
  wire stage_ids;
  (if feedback then
     match (stage_ids, List.rev stage_ids) with
     | first :: _, last :: _ when List.length stage_ids >= 2 ->
         add (List.hd last) (List.hd first)
     | _ -> ());
  Architecture.component ~component_type:Architecture.System ~children
    ~connections:(List.rev !connections)
    ~meta:(Base.meta ~name:root root) ()

let prop_dominators_match_enumeration =
  QCheck.Test.make
    ~name:"dominator FMEA = enumeration FMEA (random layered, jobs 1 and 4)"
    ~count:60
    QCheck.(
      triple
        (list_of_size (QCheck.Gen.int_range 1 5) (QCheck.int_range 1 3))
        (QCheck.int_range 0 0x3FFFFFFF) QCheck.bool)
    (fun (widths, mask, feedback) ->
      let sys = layered_system widths mask feedback in
      let reference = Fmea.Path_fmea.analyse_enumerated sys in
      let saved = Exec.default_jobs () in
      Fun.protect
        ~finally:(fun () -> Exec.set_default_jobs saved)
        (fun () ->
          List.for_all
            (fun jobs ->
              Exec.set_default_jobs jobs;
              Fmea.Table.equal (Fmea.Path_fmea.analyse sys) reference)
            [ 1; 4 ]))

let suite =
  [
    Alcotest.test_case "bitset" `Quick test_bitset;
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "undirected components" `Quick test_undirected_components;
    Alcotest.test_case "scc + condensation" `Quick test_scc;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "order_hint" `Quick test_order_hint;
    Alcotest.test_case "on_every_path" `Quick test_on_every_path;
    Alcotest.test_case "on_every_path none" `Quick test_on_every_path_none;
    Alcotest.test_case "on_every_path cyclic" `Quick test_on_every_path_cyclic;
    Alcotest.test_case "diamond single points" `Quick test_single_points_diamond;
    Alcotest.test_case "grid single points" `Quick test_single_points_grid;
    Alcotest.test_case "beyond-cap exact (regression)" `Quick test_beyond_cap_exact;
    Alcotest.test_case "enumeration overflow warns" `Quick
      test_enumeration_overflow_warns;
    QCheck_alcotest.to_alcotest prop_dominators_match_enumeration;
  ]
