(* Tests for the lint subsystem: the rule registry, each pack on seeded
   inputs, and the driver's filtering/ordering/rendering. *)

open Lint

let ids ds = List.map (fun (d : Rule.diagnostic) -> d.Rule.rule_id) ds

let has_rule id ds = List.mem id (ids ds)

let fm ?(dist = 100.0) id =
  Ssam.Architecture.failure_mode
    ~meta:(Ssam.Base.meta id)
    ~nature:Ssam.Architecture.Loss_of_function ~distribution_pct:dist ()

let component ?fit ?integrity ?failure_modes ?children ?connections id =
  Ssam.Architecture.component ?fit ?integrity ?failure_modes ?children
    ?connections
    ~meta:(Ssam.Base.meta id)
    ()

let model_of ?(mbsa = []) components =
  Ssam.Model.create
    ~component_packages:
      [
        Ssam.Architecture.package
          ~meta:(Ssam.Base.meta "pkg")
          (List.map (fun c -> Ssam.Architecture.Component c) components);
      ]
    ~mbsa_packages:mbsa
    ~meta:(Ssam.Base.meta "m")
    ()

(* ---------- registry ---------- *)

let test_catalogue () =
  let rule_ids = List.map (fun (r : Rule.t) -> r.Rule.id) Driver.catalogue in
  Alcotest.(check bool)
    "at least 12 distinct rules" true
    (List.length (List.sort_uniq String.compare rule_ids) >= 12);
  Alcotest.(check int)
    "ids are unique"
    (List.length rule_ids)
    (List.length (List.sort_uniq String.compare rule_ids));
  let categories =
    List.sort_uniq compare
      (List.map (fun (r : Rule.t) -> r.Rule.category) Driver.catalogue)
  in
  Alcotest.(check int) "six packs contribute" 6 (List.length categories);
  Alcotest.(check bool) "lookup is case-insensitive" true
    (Driver.find_rule "ssam003" <> None);
  Alcotest.(check bool) "unknown id" true (Driver.find_rule "NOPE42" = None)

(* ---------- SSAM pack (and the Validate delegation) ---------- *)

let test_ssam_new_rules () =
  (* SSAM009: failure modes with no FIT aggregated. *)
  let no_fit = component ~failure_modes:[ fm "c1:fm" ] "c1" in
  let findings = Ssam.Validate.findings (model_of [ no_fit ]) in
  Alcotest.(check bool) "SSAM009 fires" true
    (List.exists (fun f -> f.Ssam.Validate.f_rule = "SSAM009") findings);
  (* SSAM010: an ASIL target with no allocated requirement... *)
  let asil = component ~integrity:Ssam.Requirement.ASIL_B "c2" in
  let findings = Ssam.Validate.findings (model_of [ asil ]) in
  Alcotest.(check bool) "SSAM010 fires" true
    (List.exists (fun f -> f.Ssam.Validate.f_rule = "SSAM010") findings);
  (* ... silenced by an Allocates trace targeting the component. *)
  let mbsa =
    Ssam.Mbsa.package
      ~traces:
        [
          Ssam.Mbsa.trace_link
            ~meta:(Ssam.Base.meta "t1")
            ~kind:Ssam.Mbsa.Allocates ~source:"sr1" ~target:"c2";
        ]
      ~meta:(Ssam.Base.meta "mbsa")
      ()
  in
  (* The trace's own endpoints must resolve, so give the model the
     requirement too. *)
  let req_pkg =
    Ssam.Requirement.package
      ~meta:(Ssam.Base.meta "reqs")
      [
        Ssam.Requirement.Requirement
          (Ssam.Requirement.requirement
             ~integrity:Ssam.Requirement.ASIL_B
             ~meta:(Ssam.Base.meta "sr1")
             "shall hold");
      ]
  in
  let m =
    Ssam.Model.create
      ~requirement_packages:[ req_pkg ]
      ~component_packages:
        [
          Ssam.Architecture.package
            ~meta:(Ssam.Base.meta "pkg")
            [ Ssam.Architecture.Component asil ];
        ]
      ~mbsa_packages:[ mbsa ]
      ~meta:(Ssam.Base.meta "m")
      ()
  in
  Alcotest.(check bool) "SSAM010 silenced by allocation" false
    (List.exists
       (fun f -> f.Ssam.Validate.f_rule = "SSAM010")
       (Ssam.Validate.findings m))

let test_ssam_unreachable () =
  let root =
    component
      ~children:[ component "a"; component "b"; component "lonely" ]
      ~connections:
        [
          Ssam.Architecture.relationship
            ~meta:(Ssam.Base.meta "r1")
            ~from_component:"a" ~to_component:"b" ();
        ]
      "root"
  in
  let findings = Ssam.Validate.findings (model_of [ root ]) in
  let unreachable =
    List.filter (fun f -> f.Ssam.Validate.f_rule = "SSAM008") findings
  in
  Alcotest.(check (list string)) "only the unwired leaf" [ "lonely" ]
    (List.map (fun f -> f.Ssam.Validate.f_element) unreachable)

let test_check_is_findings () =
  (* The legacy API is a thin view of the rule-tagged findings. *)
  let m = model_of [ component ~fit:(-1.0) "bad" ] in
  let from_findings =
    List.map
      (fun (f : Ssam.Validate.finding) ->
        {
          Ssam.Validate.severity = f.Ssam.Validate.f_severity;
          element = f.Ssam.Validate.f_element;
          message = f.Ssam.Validate.f_message;
        })
      (Ssam.Validate.findings m)
  in
  Alcotest.(check bool) "check = findings stripped" true
    (List.for_all2 Ssam.Validate.equal_issue (Ssam.Validate.check m)
       from_findings)

let test_ssam_pack_adapts () =
  let input =
    { Input.empty with Input.model = Some (model_of [ component ~fit:(-2.0) "neg" ]) }
  in
  let ds = Driver.run ~jobs:1 input in
  Alcotest.(check bool) "SSAM006 via the pack" true (has_rule "SSAM006" ds);
  let d =
    List.find (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "SSAM006") ds
  in
  Alcotest.(check (option string)) "element carried" (Some "neg") d.Rule.element;
  Alcotest.(check bool) "category" true (d.Rule.d_category = Rule.Ssam_model)

(* ---------- blockdiag pack ---------- *)

let bd ?(connections = []) blocks =
  Blockdiag.Diagram.diagram ~connections ~name:"d" blocks

let eblock id ty =
  Blockdiag.Diagram.block ~ports:Blockdiag.Diagram.two_terminal_ports ~id
    ~block_type:ty ()

let input_of_diagram ?(exclude = []) ?(monitored = []) ?sm d =
  {
    Input.empty with
    Input.diagram = Some ("d.bd", d);
    exclude;
    monitored;
    sm = Option.map (fun s -> (Some "sm.csv", s)) sm;
  }

let run1 input = Driver.run ~jobs:1 input

let test_blk_wiring () =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("r1", "a") ("ghost", "a") ]
      [ eblock "r1" "resistor"; eblock "r1" "resistor" ]
  in
  let ds = run1 (input_of_diagram d) in
  Alcotest.(check bool) "BLK001 dangling endpoint" true (has_rule "BLK001" ds);
  Alcotest.(check bool) "BLK003 duplicate id" true (has_rule "BLK003" ds);
  Alcotest.(check bool) "BLK005 unconnected port" true (has_rule "BLK005" ds);
  Alcotest.(check bool) "errors precede warnings" true
    (let sevs =
       List.map (fun (d : Rule.diagnostic) -> Rule.severity_rank d.Rule.d_severity) ds
     in
     List.sort (fun a b -> compare b a) sevs = sevs)

let test_blk_unknown_type_and_port () =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("x1", "a") ("x1", "nope") ]
      [ eblock "x1" "flux_capacitor" ]
  in
  let ds = run1 (input_of_diagram d) in
  Alcotest.(check bool) "BLK002 missing port" true (has_rule "BLK002" ds);
  Alcotest.(check bool) "BLK006 unknown type" true (has_rule "BLK006" ds)

let test_blk_monitor_exclude () =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("v1", "a") ("cs1", "a") ]
      [ eblock "v1" "vsource"; eblock "cs1" "current_sensor" ]
  in
  let ds = run1 (input_of_diagram ~monitored:[ "nope"; "v1" ] d) in
  let blk007 =
    List.filter (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "BLK007") ds
  in
  Alcotest.(check int) "missing and non-sensor monitors" 2 (List.length blk007);
  let ds = run1 (input_of_diagram ~exclude:[ "ghost" ] d) in
  Alcotest.(check bool) "BLK009 unknown exclusion" true (has_rule "BLK009" ds);
  let ds =
    run1
      (input_of_diagram ~exclude:[ "cs1" ]
         ~sm:
           (Reliability.Sm_model.of_mechanisms
              [
                {
                  Reliability.Sm_model.sm_name = "plausibility check";
                  component_type = "current_sensor";
                  failure_mode = "Reading loss";
                  coverage_pct = 60.0;
                  cost = 0.5;
                };
              ])
         d)
  in
  Alcotest.(check bool) "BLK010 excluded but SM-referenced" true
    (has_rule "BLK010" ds)

let test_blk_no_sensor () =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("v1", "a") ("r1", "a") ]
      [ eblock "v1" "vsource"; eblock "r1" "resistor" ]
  in
  Alcotest.(check bool) "BLK008 fires" true
    (has_rule "BLK008" (run1 (input_of_diagram d)))

(* ---------- reliability pack ---------- *)

let entry ?(fit = 10.0) ?(modes = [ ("Open", 100.0) ]) ty =
  {
    Reliability.Reliability_model.component_type = ty;
    fit;
    failure_modes =
      List.map
        (fun (name, dist) ->
          {
            Reliability.Reliability_model.fm_name = name;
            distribution_pct = dist;
            fault = None;
            loss_of_function = true;
          })
        modes;
  }

let test_rel_tables () =
  let rel =
    Reliability.Reliability_model.of_entries
      [
        entry ~modes:[ ("Open", 30.0); ("Short", 30.0) ] "diode";
        entry ~fit:0.0 "relay";
        entry ~modes:[ ("Open", 120.0); ("open", -20.0) ] "fuse";
      ]
  in
  let input =
    { Input.empty with Input.reliability = Some (Some "rel.csv", rel) }
  in
  let ds = run1 input in
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " fires") true (has_rule rule ds))
    [ "REL001"; "REL002"; "REL004"; "REL005" ];
  let file =
    (List.find (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "REL002") ds)
      .Rule.file
  in
  Alcotest.(check (option string)) "file carried" (Some "rel.csv") file

let test_rel_sm_cross () =
  let rel = Reliability.Reliability_model.of_entries [ entry "diode" ] in
  let sm ty mode cov cost =
    {
      Reliability.Sm_model.sm_name = "m";
      component_type = ty;
      failure_mode = mode;
      coverage_pct = cov;
      cost;
    }
  in
  let sm_model =
    Reliability.Sm_model.of_mechanisms
      [
        sm "diode" "Burnout" 90.0 1.0;
        sm "diode" "Open" 150.0 (-1.0);
        sm "pll" "Jitter" 99.0 1.0;
      ]
  in
  let input =
    {
      Input.empty with
      Input.reliability = Some (Some "rel.csv", rel);
      sm = Some (Some "sm.csv", sm_model);
    }
  in
  let ds = run1 input in
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " fires") true (has_rule rule ds))
    [ "REL006"; "REL007"; "REL008"; "REL009" ];
  (* The built-in catalogue (no path) is not cross-checked. *)
  let ds =
    run1
      {
        Input.empty with
        Input.reliability = Some (Some "rel.csv", rel);
        sm = Some (None, sm_model);
      }
  in
  Alcotest.(check bool) "default catalogue not linted" false
    (has_rule "REL009" ds)

(* ---------- query pack ---------- *)

let test_query_rules () =
  let input qsrc = { Input.empty with Input.queries = [ ("q.eol", qsrc) ] } in
  let rule_of qsrc =
    match run1 (input qsrc) with
    | [ d ] -> d.Rule.rule_id
    | ds -> Alcotest.fail (Printf.sprintf "expected 1 diagnostic, got %d" (List.length ds))
  in
  Alcotest.(check string) "parse" "QRY001" (rule_of "1 +");
  Alcotest.(check string) "unknown ident" "QRY002" (rule_of "return nope;");
  Alcotest.(check string) "unknown method" "QRY003" (rule_of "'a'.shout()");
  Alcotest.(check string) "arity" "QRY004" (rule_of "'a'.trim(1)");
  Alcotest.(check string) "type mismatch" "QRY005" (rule_of "return true - 1;");
  (* Spans survive into the diagnostic. *)
  match run1 (input "var x := 1;\nreturn x.trim();") with
  | [ d ] ->
      Alcotest.(check (option string)) "file" (Some "q.eol") d.Rule.file;
      Alcotest.(check bool) "span line 2" true
        (match d.Rule.span with Some s -> s.Rule.line = 2 | None -> false)
  | ds ->
      Alcotest.fail (Printf.sprintf "expected 1 diagnostic, got %d" (List.length ds))

(* ---------- dataflow pack ---------- *)

(* r1 feeds the sensor; r2 is marooned (latent mode); cs2 watches
   nothing (silent output). *)
let dfa_input ?(exclude = []) () =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("r1", "a") ("cs1", "a") ]
      [
        eblock "r1" "resistor";
        eblock "r2" "resistor";
        eblock "cs1" "current_sensor";
        eblock "cs2" "current_sensor";
      ]
  in
  {
    (input_of_diagram ~exclude d) with
    Input.reliability =
      Some
        ( Some "rel.csv",
          Reliability.Reliability_model.of_entries [ entry "resistor" ] );
  }

let test_dfa_rules () =
  let ds = run1 (dfa_input ~exclude:[ "r1" ] ()) in
  Alcotest.(check bool) "DFA001 latent mode" true (has_rule "DFA001" ds);
  Alcotest.(check bool) "DFA002 silent output" true (has_rule "DFA002" ds);
  Alcotest.(check bool) "DFA008 excluded still explains" true
    (has_rule "DFA008" ds);
  let latent =
    List.find (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "DFA001") ds
  in
  Alcotest.(check (option string)) "element is the marooned block"
    (Some "r2") latent.Rule.element;
  Alcotest.(check (option string)) "file carried" (Some "d.bd")
    latent.Rule.file;
  (* The oracle holds on every well-formed model, so DFA003 never fires
     here. *)
  Alcotest.(check bool) "DFA003 silent" false (has_rule "DFA003" ds)

let test_dfa_category_filter () =
  let ds =
    Driver.run ~jobs:1 ~categories:[ Rule.Dataflow ] (dfa_input ())
  in
  Alcotest.(check bool) "only dataflow findings" true
    (ds <> []
    && List.for_all
         (fun (d : Rule.diagnostic) -> d.Rule.d_category = Rule.Dataflow)
         ds);
  List.iter
    (fun (spelling, expected) ->
      Alcotest.(check bool)
        ("category_of_string " ^ spelling)
        true
        (Rule.category_of_string spelling = expected))
    [
      ("dfa", Some Rule.Dataflow);
      ("dataflow", Some Rule.Dataflow);
      ("BLK", Some Rule.Block_diagram);
      ("qry", Some Rule.Query);
      ("nope", None);
    ]

let test_dfa_parallel_deterministic () =
  let input = dfa_input ~exclude:[ "r1" ] () in
  let seq = Driver.run ~jobs:1 input in
  let par = Driver.run ~jobs:4 input in
  Alcotest.(check bool) "DFA findings identical at jobs 1 and 4" true
    (List.for_all2 Rule.equal_diagnostic seq par)

let test_sarif_rule_metadata () =
  let ds = run1 (dfa_input ()) in
  let json = Driver.to_json ds in
  let member_exn k j = Option.get (Modelio.Json.member k j) in
  let run = List.hd (Option.get (Modelio.Json.to_list (member_exn "runs" json))) in
  let rules =
    member_exn "tool" run |> member_exn "driver" |> member_exn "rules"
    |> Modelio.Json.to_list |> Option.get
  in
  Alcotest.(check bool) "every rule has name + helpUri + category" true
    (rules <> []
    && List.for_all
         (fun r ->
           Modelio.Json.member "name" r <> None
           && (match
                 Option.bind (Modelio.Json.member "helpUri" r)
                   Modelio.Json.to_str
               with
              | Some uri ->
                  String.length uri > String.length "DESIGN.md#"
                  && String.sub uri 0 10 = "DESIGN.md#"
              | None -> false)
           && Modelio.Json.member "category" (member_exn "properties" r)
              <> None)
         rules);
  let dfa_listed =
    List.exists
      (fun r ->
        Option.bind (Modelio.Json.member "id" r) Modelio.Json.to_str
        = Some "DFA001")
      rules
  in
  Alcotest.(check bool) "DFA001 in the descriptor array" true dfa_listed

(* ---------- FTA pack ---------- *)

let rel f t =
  Ssam.Architecture.relationship
    ~meta:(Ssam.Base.meta (f ^ "->" ^ t))
    ~from_component:f ~to_component:t ()

(* root → A → {B, C} → D: A and D are single points, the diamond makes
   A's loss event repeat in the lowered tree.  A carries ASIL D; C has
   no FIT in an otherwise quantified tree. *)
let fta_fixture_root () =
  let leaf ?fit ?integrity id =
    component ?fit ?integrity ~failure_modes:[ fm (id ^ ":fm:loss") ] id
  in
  Ssam.Architecture.component ~component_type:Ssam.Architecture.System
    ~children:
      [
        leaf ~fit:10.0 ~integrity:Ssam.Requirement.ASIL_D "A";
        leaf ~fit:10.0 "B";
        leaf "C";
        leaf ~fit:10.0 "D";
      ]
    ~connections:
      [
        rel "root" "A"; rel "A" "B"; rel "A" "C"; rel "B" "D"; rel "C" "D";
        rel "D" "root";
      ]
    ~meta:(Ssam.Base.meta "root")
    ()

let test_fta_rules () =
  let ds = Fta_pack.check_component ~file:"m.ssam" (fta_fixture_root ()) in
  Alcotest.(check bool) "FTA002 rate-less event" true (has_rule "FTA002" ds);
  Alcotest.(check bool) "FTA004 high-integrity single point" true
    (has_rule "FTA004" ds);
  Alcotest.(check bool) "FTA005 repeated event" true (has_rule "FTA005" ds);
  let fta004 =
    List.find (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "FTA004") ds
  in
  Alcotest.(check (option string)) "names the ASIL D component" (Some "A")
    fta004.Rule.element;
  Alcotest.(check (option string)) "file carried" (Some "m.ssam")
    fta004.Rule.file;
  (* D is also a single point but carries no integrity allocation. *)
  Alcotest.(check int) "exactly one FTA004" 1
    (List.length
       (List.filter (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "FTA004") ds));
  (* Pathless composite: FTA001. *)
  let lonely =
    Ssam.Architecture.component ~component_type:Ssam.Architecture.System
      ~children:[] ~meta:(Ssam.Base.meta "empty") ()
  in
  Alcotest.(check bool) "FTA001 on a pathless composite" true
    (has_rule "FTA001" (Fta_pack.check_component lonely))

let test_fta_bad_vote () =
  (* A 3-vote fed by only two distinct events: FTA003. *)
  let e id = Fta.Fault_tree.basic ~rate_fit:5.0 id in
  let tree =
    Fta.Fault_tree.koon "v" ~k:3 [ e "x"; e "y"; e "x" ]
  in
  let ds = Fta_pack.check_tree ~owner:"root" tree in
  Alcotest.(check bool) "FTA003 fires" true (has_rule "FTA003" ds);
  let d = List.find (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "FTA003") ds in
  Alcotest.(check (option string)) "names the gate" (Some "v") d.Rule.element;
  (* An honest vote over distinct events stays silent. *)
  Alcotest.(check bool) "honest vote silent" false
    (has_rule "FTA003"
       (Fta_pack.check_tree ~owner:"root"
          (Fta.Fault_tree.koon "v" ~k:2 [ e "x"; e "y"; e "z" ])))

let test_fta_category_filter () =
  let model =
    Ssam.Model.create
      ~component_packages:
        [
          Ssam.Architecture.package
            ~meta:(Ssam.Base.meta "pkg")
            [ Ssam.Architecture.Component (fta_fixture_root ()) ];
        ]
      ~meta:(Ssam.Base.meta "m")
      ()
  in
  let input = { Input.empty with Input.model = Some model } in
  let ds = Driver.run ~jobs:1 ~categories:[ Rule.Fault_tree ] input in
  Alcotest.(check bool) "only fta findings, non-empty" true
    (ds <> []
    && List.for_all
         (fun (d : Rule.diagnostic) -> d.Rule.d_category = Rule.Fault_tree)
         ds);
  Alcotest.(check bool) "fta spelling accepted" true
    (Rule.category_of_string "fta" = Some Rule.Fault_tree
    && Rule.category_of_string "FTA" = Some Rule.Fault_tree)

(* ---------- driver filters and rendering ---------- *)

let mixed_input =
  let d =
    bd
      ~connections:[ Blockdiag.Diagram.connect ("r1", "a") ("ghost", "a") ]
      [ eblock "r1" "resistor" ]
  in
  { (input_of_diagram d) with Input.queries = [ ("q", "'a'.trim(1)") ] }

let test_driver_filters () =
  let ds = run1 mixed_input in
  Alcotest.(check bool) "errors found" true (Driver.has_errors ds);
  let only_blk = Driver.run ~jobs:1 ~rules:[ "blk001" ] mixed_input in
  Alcotest.(check bool) "rule filter keeps BLK001" true
    (List.for_all (fun (d : Rule.diagnostic) -> d.Rule.rule_id = "BLK001") only_blk
    && only_blk <> []);
  let errors_only =
    Driver.run ~jobs:1 ~min_severity:Rule.Error mixed_input
  in
  Alcotest.(check bool) "severity filter" true
    (List.for_all
       (fun (d : Rule.diagnostic) -> d.Rule.d_severity = Rule.Error)
       errors_only
    && errors_only <> [])

let test_driver_parallel_deterministic () =
  let seq = Driver.run ~jobs:1 mixed_input in
  let par = Driver.run ~jobs:4 mixed_input in
  Alcotest.(check bool) "same diagnostics in the same order" true
    (List.for_all2 Rule.equal_diagnostic seq par)

let test_rendering () =
  let ds = run1 mixed_input in
  let text = Driver.to_text ds in
  Alcotest.(check bool) "text mentions a rule id" true
    (let has needle hay =
       let rec go i =
         i + String.length needle <= String.length hay
         && (String.sub hay i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     has "BLK001" text && has "error" text);
  let json = Driver.to_json ds in
  let run =
    List.hd
      (Option.get
         (Modelio.Json.to_list
            (Option.get (Modelio.Json.member "runs" json))))
  in
  let results =
    Option.get
      (Modelio.Json.to_list (Option.get (Modelio.Json.member "results" run)))
  in
  Alcotest.(check int) "one result per diagnostic" (List.length ds)
    (List.length results);
  Alcotest.(check (option string)) "sarif version" (Some "2.1.0")
    (Option.bind (Modelio.Json.member "version" json) Modelio.Json.to_str);
  let empty = Driver.to_text [] in
  Alcotest.(check string) "empty report" "no findings\n" empty

let suite =
  [
    Alcotest.test_case "catalogue" `Quick test_catalogue;
    Alcotest.test_case "ssam new rules" `Quick test_ssam_new_rules;
    Alcotest.test_case "ssam unreachable" `Quick test_ssam_unreachable;
    Alcotest.test_case "check delegates to findings" `Quick test_check_is_findings;
    Alcotest.test_case "ssam pack adapts" `Quick test_ssam_pack_adapts;
    Alcotest.test_case "blk wiring" `Quick test_blk_wiring;
    Alcotest.test_case "blk unknown type/port" `Quick test_blk_unknown_type_and_port;
    Alcotest.test_case "blk monitor/exclude" `Quick test_blk_monitor_exclude;
    Alcotest.test_case "blk no sensor" `Quick test_blk_no_sensor;
    Alcotest.test_case "rel tables" `Quick test_rel_tables;
    Alcotest.test_case "rel/sm cross-checks" `Quick test_rel_sm_cross;
    Alcotest.test_case "query rules" `Quick test_query_rules;
    Alcotest.test_case "dfa rules" `Quick test_dfa_rules;
    Alcotest.test_case "dfa category filter" `Quick test_dfa_category_filter;
    Alcotest.test_case "dfa parallel deterministic" `Quick
      test_dfa_parallel_deterministic;
    Alcotest.test_case "fta rules" `Quick test_fta_rules;
    Alcotest.test_case "fta bad vote" `Quick test_fta_bad_vote;
    Alcotest.test_case "fta category filter" `Quick test_fta_category_filter;
    Alcotest.test_case "sarif rule metadata" `Quick test_sarif_rule_metadata;
    Alcotest.test_case "driver filters" `Quick test_driver_filters;
    Alcotest.test_case "parallel deterministic" `Quick test_driver_parallel_deterministic;
    Alcotest.test_case "rendering" `Quick test_rendering;
  ]
