(* Aggregated test runner: one suite per library. *)

let () =
  Alcotest.run "decisive"
    [
      ("numeric", Test_numeric.suite);
      ("exec", Test_exec.suite);
      ("modelio", Test_modelio.suite);
      ("ssam", Test_ssam.suite);
      ("persist", Test_persist.suite);
      ("allocation", Test_allocation.suite);
      ("diff", Test_diff.suite);
      ("engine", Test_engine.suite);
      ("query", Test_query.suite);
      ("typecheck", Test_typecheck.suite);
      ("graph", Test_graph.suite);
      ("circuit", Test_circuit.suite);
      ("transient", Test_circuit.transient_suite);
      ("ac", Test_circuit.ac_suite);
      ("cross-validation", Test_circuit.cross_validation_suite);
      ("generator", Test_circuit.generator_suite);
      ("blockdiag", Test_blockdiag.suite);
      ("reliability", Test_reliability.suite);
      ("lint", Test_lint.suite);
      ("dataflow", Test_dataflow.suite);
      ("fmea", Test_fmea.suite);
      ("degradation", Test_fmea.degradation_suite);
      ("optimize", Test_optimize.suite);
      ("fta", Test_fta.suite);
      ("assess", Test_assess.suite);
      ("fta-export", Test_fta.export_suite);
      ("hara", Test_hara.suite);
      ("assurance", Test_assurance.suite);
      ("gsn-render", Test_assurance.render_suite);
      ("analyst", Test_analyst.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("decisive", Test_decisive.suite);
      ("software-fmea", Test_decisive.software_suite);
      ("cli", Test_cli.suite);
    ]
