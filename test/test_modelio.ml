(* Tests for the heterogeneous model-access layer: CSV, JSON, XML,
   spreadsheets, model values and the driver registry. *)

open Modelio

(* ---------- CSV ---------- *)

let test_csv_simple () =
  let t = Csv.parse "a,b,c\n1,2,3\n" in
  Alcotest.(check (list (list string))) "rows"
    [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ]
    t

let test_csv_quoted () =
  let t = Csv.parse "\"x,y\",\"he said \"\"hi\"\"\",\"multi\nline\"\n" in
  Alcotest.(check (list (list string))) "quoted"
    [ [ "x,y"; "he said \"hi\""; "multi\nline" ] ]
    t

let test_csv_crlf () =
  let t = Csv.parse "a,b\r\n1,2\r\n" in
  Alcotest.(check (list (list string))) "crlf" [ [ "a"; "b" ]; [ "1"; "2" ] ] t

let test_csv_no_trailing_newline () =
  let t = Csv.parse "a,b\n1,2" in
  Alcotest.(check (list (list string))) "no trailing" [ [ "a"; "b" ]; [ "1"; "2" ] ] t

let test_csv_empty_fields () =
  let t = Csv.parse ",,\n" in
  Alcotest.(check (list (list string))) "empties" [ [ ""; ""; "" ] ] t

let test_csv_unterminated_quote () =
  match Csv.parse "\"oops\n" with
  | exception Csv.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_csv_quote_at_eof () =
  (* An escaped quote as the very last character — the quoted-field
     scanner must not read past the end looking for the closer. *)
  let t = Csv.parse "a,\"he said \"\"hi\"\"\"" in
  Alcotest.(check (list (list string))) "escaped quote at EOF"
    [ [ "a"; "he said \"hi\"" ] ]
    t;
  let t = Csv.parse "\"\"\"\"" in
  Alcotest.(check (list (list string))) "lone escaped quote" [ [ "\"" ] ] t;
  match Csv.parse "a,\"b\"\"" with
  | exception Csv.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error for unterminated escaped quote"

let test_csv_crlf_in_quotes () =
  (* CRLF inside a quoted field is data, CRLF outside is a row break;
     a file mixing both parses to the same rows as its LF twin. *)
  let t = Csv.parse "a,\"line1\r\nline2\"\r\nc,d" in
  Alcotest.(check (list (list string))) "crlf kept inside quotes"
    [ [ "a"; "line1\r\nline2" ]; [ "c"; "d" ] ]
    t;
  Alcotest.(check (list (list string))) "mixed endings agree"
    (Csv.parse "a,b\n1,2\n")
    (Csv.parse "a,b\r\n1,2")

let test_csv_trailing_newlines () =
  (* One final newline terminates the last row; it does not open an
     empty one.  A blank line in the middle is a real (empty) row. *)
  Alcotest.(check (list (list string))) "single trailing" [ [ "a"; "b" ] ]
    (Csv.parse "a,b\n");
  Alcotest.(check (list (list string))) "crlf trailing" [ [ "a"; "b" ] ]
    (Csv.parse "a,b\r\n");
  Alcotest.(check (list (list string))) "blank interior row"
    [ [ "a" ]; [ "" ]; [ "b" ] ]
    (Csv.parse "a\n\nb\n");
  Alcotest.(check (list (list string))) "quoted field ends the file"
    [ [ "a"; "b" ] ]
    (Csv.parse "a,\"b\"")

let test_csv_roundtrip () =
  let rows = [ [ "a,b"; "plain" ]; [ "\"q\""; "line\nbreak" ]; [ ""; "x" ] ] in
  Alcotest.(check (list (list string))) "roundtrip" rows
    (Csv.parse (Csv.to_string rows))

let csv_field_gen =
  QCheck.Gen.(
    string_size ~gen:(oneof [ char_range 'a' 'z'; oneofl [ ','; '"'; '\n'; ' ' ] ])
      (int_range 0 12))

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv print/parse roundtrip" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 6) (list_size (int_range 1 5) csv_field_gen)))
    (fun rows -> Csv.parse (Csv.to_string rows) = rows)

let test_csv_table () =
  let t = Csv.to_table (Csv.parse "Name,FIT\nD1,10\nL1,15\n") in
  Alcotest.(check (option int)) "column_index" (Some 1) (Csv.column_index t "fit");
  Alcotest.(check (option string)) "field" (Some "15")
    (Csv.field t [ "L1"; "15" ] "FIT");
  Alcotest.(check (option string)) "missing column" None
    (Csv.field t [ "L1"; "15" ] "Nope")

(* ---------- JSON ---------- *)

let test_json_parse () =
  let j = Json.parse {| {"a": [1, 2.5, true, null], "b": "x\ny"} |} in
  Alcotest.(check bool) "structure" true
    (Json.equal j
       (Json.Object
          [
            ("a", Json.List [ Json.Number 1.0; Json.Number 2.5; Json.Bool true; Json.Null ]);
            ("b", Json.String "x\ny");
          ]))

let test_json_unicode () =
  let j = Json.parse {| "é€" |} in
  Alcotest.(check string) "utf8" "\xc3\xa9\xe2\x82\xac"
    (Option.get (Json.to_str j))

let test_json_surrogate_pair () =
  let j = Json.parse {| "😀" |} in
  Alcotest.(check string) "emoji" "\xf0\x9f\x98\x80" (Option.get (Json.to_str j))

let test_json_errors () =
  let bad = [ "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected error on %S" s))
    bad

let test_json_accessors () =
  let j = Json.parse {| {"a": {"b": [10, 20]}} |} in
  Alcotest.(check (option (float 1e-9))) "path" (Some 10.0)
    (Option.bind (Json.path [ "a"; "b" ] j) (fun l ->
         Option.bind (Json.to_list l) (fun items ->
             Option.bind (List.nth_opt items 0) Json.to_float)));
  Alcotest.(check (option (float 1e-9))) "numeric string" (Some 4.5)
    (Json.to_float (Json.String "4.5"))

let rec json_gen depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun n -> Json.Number (float_of_int n)) (int_range (-1000) 1000);
          map (fun s -> Json.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        ]
    else
      frequency
        [
          (2, json_gen 0);
          ( 1,
            map (fun l -> Json.List l) (list_size (int_range 0 4) (json_gen (depth - 1)))
          );
          ( 1,
            map
              (fun kvs ->
                (* distinct keys so member lookups are unambiguous *)
                let _, fields =
                  List.fold_left
                    (fun (i, acc) v -> (i + 1, (Printf.sprintf "k%d" i, v) :: acc))
                    (0, []) kvs
                in
                Json.Object (List.rev fields))
              (list_size (int_range 0 4) (json_gen (depth - 1))) );
        ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:200
    (QCheck.make (json_gen 3))
    (fun j ->
      Json.equal j (Json.parse (Json.to_string j))
      && Json.equal j (Json.parse (Json.to_string ~indent:2 j)))

(* ---------- XML ---------- *)

let test_xml_parse () =
  let e =
    Xml.parse
      "<?xml version=\"1.0\"?><root a=\"1\"><child>text &amp; more</child>\
       <child b='2'/><!-- comment --></root>"
  in
  Alcotest.(check string) "tag" "root" e.Xml.tag;
  Alcotest.(check (option string)) "attr" (Some "1") (Xml.attribute e "a");
  Alcotest.(check int) "children" 2 (List.length (Xml.find_children e "child"));
  Alcotest.(check string) "text" "text & more"
    (Xml.text_content (Option.get (Xml.find_first e "child")))

let test_xml_cdata () =
  let e = Xml.parse "<a><![CDATA[<raw> & stuff]]></a>" in
  Alcotest.(check string) "cdata" "<raw> & stuff" (Xml.text_content e)

let test_xml_entities () =
  let e = Xml.parse "<a>&lt;&gt;&quot;&apos;&#65;&#x42;</a>" in
  Alcotest.(check string) "entities" "<>\"'AB" (Xml.text_content e)

let test_xml_mismatched () =
  match Xml.parse "<a><b></a></b>" with
  | exception Xml.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_xml_roundtrip () =
  let e =
    Xml.parse "<m x=\"a&amp;b\"><k>v1</k><k attr=\"q\">v&lt;2</k><empty/></m>"
  in
  let reparsed = Xml.parse (Xml.to_string e) in
  Alcotest.(check bool) "roundtrip" true (Xml.equal_element e reparsed)

let test_xml_descendants () =
  let e = Xml.parse "<a><b><c/></b><c/><d><c/></d></a>" in
  Alcotest.(check int) "descendants" 3 (List.length (Xml.descendants e "c"))

(* ---------- Spreadsheet ---------- *)

let test_spreadsheet_numbers () =
  Alcotest.(check (option (float 1e-9))) "plain" (Some 42.0) (Spreadsheet.number "42");
  Alcotest.(check (option (float 1e-9))) "pct" (Some 30.0) (Spreadsheet.number "30%");
  Alcotest.(check (option (float 1e-9))) "spaces" (Some 10.0) (Spreadsheet.number " 10 ");
  Alcotest.(check (option (float 1e-9))) "sci" (Some 450.0) (Spreadsheet.number "4.5e2");
  Alcotest.(check (option (float 1e-9))) "junk" None (Spreadsheet.number "n/a")

let test_spreadsheet_load_save () =
  let dir = Filename.temp_file "wb" "" in
  Sys.remove dir;
  let wb =
    Spreadsheet.of_csv ~name:"data"
      [ [ "Component"; "FIT" ]; [ "D1"; "10" ]; [ "L1"; "15" ] ]
  in
  Spreadsheet.save dir wb;
  let reloaded = Spreadsheet.load dir in
  let sheet = Spreadsheet.first_sheet reloaded in
  Alcotest.(check string) "sheet name" "data" sheet.Spreadsheet.sheet_name;
  Alcotest.(check (option string)) "cell" (Some "15")
    (Spreadsheet.cell sheet ~row:1 ~column:"FIT");
  Sys.remove (Filename.concat dir "data.csv");
  Sys.rmdir dir

(* ---------- Mvalue ---------- *)

let test_mvalue_field_canon () =
  let r = Mvalue.Record [ ("Failure_Mode", Mvalue.Str "Open") ] in
  Alcotest.(check bool) "case-insensitive" true
    (Mvalue.field r "failure_mode" = Some (Mvalue.Str "Open"));
  Alcotest.(check bool) "space = underscore" true
    (Mvalue.field r "Failure Mode" = Some (Mvalue.Str "Open"))

let test_mvalue_truthy () =
  Alcotest.(check bool) "null" false (Mvalue.truthy Mvalue.Null);
  Alcotest.(check bool) "zero" false (Mvalue.truthy (Mvalue.Num 0.0));
  Alcotest.(check bool) "empty str" false (Mvalue.truthy (Mvalue.Str ""));
  Alcotest.(check bool) "empty seq" false (Mvalue.truthy (Mvalue.Seq []));
  Alcotest.(check bool) "record" true (Mvalue.truthy (Mvalue.Record []))

let test_mvalue_of_csv () =
  let t = Csv.to_table (Csv.parse "A,B\n1,2\nshort_row\n") in
  let v = Mvalue.of_csv_table t in
  match Mvalue.field v "rows" with
  | Some (Mvalue.Seq [ _; Mvalue.Record fields ]) ->
      Alcotest.(check bool) "missing cell -> Null" true
        (List.assoc "B" fields = Mvalue.Null)
  | _ -> Alcotest.fail "unexpected shape"

let test_mvalue_json_roundtrip () =
  let j = Json.parse {| {"a": [1, "x", false], "b": null} |} in
  Alcotest.(check bool) "json <-> mvalue" true
    (Json.equal j (Mvalue.to_json (Mvalue.of_json j)))

(* ---------- Driver ---------- *)

let test_driver_registry () =
  Alcotest.(check bool) "csv registered" true (Option.is_some (Driver.find "csv"));
  Alcotest.(check bool) "case-insensitive" true (Option.is_some (Driver.find "CSV"));
  Alcotest.(check bool) "excel alias" true (Option.is_some (Driver.find "excel"));
  match Driver.resolve ~model_type:"nope" ~location:"x" ~metadata:[] with
  | exception Driver.Unknown_driver "nope" -> ()
  | _ -> Alcotest.fail "expected Unknown_driver"

let test_driver_load_error () =
  match Driver.resolve ~model_type:"json" ~location:"/nonexistent.json" ~metadata:[] with
  | exception Driver.Load_error { driver = "json"; _ } -> ()
  | _ -> Alcotest.fail "expected Load_error"

let test_driver_csv_end_to_end () =
  let path = Filename.temp_file "drv" ".csv" in
  Csv.write_file path [ [ "K"; "V" ]; [ "a"; "1" ] ];
  let v = Driver.resolve ~model_type:"csv" ~location:path ~metadata:[] in
  Sys.remove path;
  match Mvalue.field v "rows" with
  | Some (Mvalue.Seq [ row ]) ->
      Alcotest.(check bool) "row field" true
        (Mvalue.field row "K" = Some (Mvalue.Str "a"))
  | _ -> Alcotest.fail "unexpected shape"

let suite =
  [
    Alcotest.test_case "csv simple" `Quick test_csv_simple;
    Alcotest.test_case "csv quoted" `Quick test_csv_quoted;
    Alcotest.test_case "csv crlf" `Quick test_csv_crlf;
    Alcotest.test_case "csv no trailing newline" `Quick test_csv_no_trailing_newline;
    Alcotest.test_case "csv empty fields" `Quick test_csv_empty_fields;
    Alcotest.test_case "csv unterminated quote" `Quick test_csv_unterminated_quote;
    Alcotest.test_case "csv quote at eof" `Quick test_csv_quote_at_eof;
    Alcotest.test_case "csv crlf in quotes" `Quick test_csv_crlf_in_quotes;
    Alcotest.test_case "csv trailing newlines" `Quick test_csv_trailing_newlines;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    Alcotest.test_case "csv table" `Quick test_csv_table;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json unicode" `Quick test_json_unicode;
    Alcotest.test_case "json surrogate pair" `Quick test_json_surrogate_pair;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "xml parse" `Quick test_xml_parse;
    Alcotest.test_case "xml cdata" `Quick test_xml_cdata;
    Alcotest.test_case "xml entities" `Quick test_xml_entities;
    Alcotest.test_case "xml mismatched tags" `Quick test_xml_mismatched;
    Alcotest.test_case "xml roundtrip" `Quick test_xml_roundtrip;
    Alcotest.test_case "xml descendants" `Quick test_xml_descendants;
    Alcotest.test_case "spreadsheet numbers" `Quick test_spreadsheet_numbers;
    Alcotest.test_case "spreadsheet load/save" `Quick test_spreadsheet_load_save;
    Alcotest.test_case "mvalue field canon" `Quick test_mvalue_field_canon;
    Alcotest.test_case "mvalue truthy" `Quick test_mvalue_truthy;
    Alcotest.test_case "mvalue of_csv" `Quick test_mvalue_of_csv;
    Alcotest.test_case "mvalue json roundtrip" `Quick test_mvalue_json_roundtrip;
    Alcotest.test_case "driver registry" `Quick test_driver_registry;
    Alcotest.test_case "driver load error" `Quick test_driver_load_error;
    Alcotest.test_case "driver csv end-to-end" `Quick test_driver_csv_end_to_end;
  ]
