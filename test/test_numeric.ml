(* Tests for the linear-algebra substrate. *)

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" what expected actual)
    true (approx ~eps expected actual)

(* ---------- Vector ---------- *)

let test_vector_basics () =
  let v = Numeric.Vector.of_list [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "dim" 3 (Numeric.Vector.dim v);
  check_float "dot" 14.0 (Numeric.Vector.dot v v);
  check_float "norm_inf" 3.0 (Numeric.Vector.norm_inf v);
  check_float "norm2" (sqrt 14.0) (Numeric.Vector.norm2 v);
  let w = Numeric.Vector.add v (Numeric.Vector.scale (-1.0) v) in
  check_float "add/scale" 0.0 (Numeric.Vector.norm_inf w)

let test_vector_mismatch () =
  let v = Numeric.Vector.of_list [ 1.0 ] in
  let w = Numeric.Vector.of_list [ 1.0; 2.0 ] in
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vector.add: dimension mismatch (1 vs 2)") (fun () ->
      ignore (Numeric.Vector.add v w))

let test_max_abs_diff () =
  let v = Numeric.Vector.of_list [ 1.0; 5.0 ] in
  let w = Numeric.Vector.of_list [ 2.0; 3.0 ] in
  check_float "max_abs_diff" 2.0 (Numeric.Vector.max_abs_diff v w)

(* ---------- Matrix ---------- *)

let test_matrix_basics () =
  let m = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  Alcotest.(check int) "rows" 2 (Numeric.Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Numeric.Matrix.cols m);
  check_float "get" 3.0 (Numeric.Matrix.get m 1 0);
  Numeric.Matrix.add_to m 1 0 1.0;
  check_float "add_to" 4.0 (Numeric.Matrix.get m 1 0)

let test_matrix_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows")
    (fun () -> ignore (Numeric.Matrix.of_rows [ [ 1.0 ]; [ 1.0; 2.0 ] ]))

let test_matrix_mul () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let i = Numeric.Matrix.identity 2 in
  Alcotest.(check bool) "a * I = a" true (Numeric.Matrix.equal (Numeric.Matrix.mul a i) a);
  let b = Numeric.Matrix.of_rows [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let ab = Numeric.Matrix.mul a b in
  check_float "(ab)00" 19.0 (Numeric.Matrix.get ab 0 0);
  check_float "(ab)11" 50.0 (Numeric.Matrix.get ab 1 1)

let test_transpose_involution () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0; 3.0 ]; [ 4.0; 5.0; 6.0 ] ] in
  let att = Numeric.Matrix.transpose (Numeric.Matrix.transpose a) in
  Alcotest.(check bool) "transpose twice" true (Numeric.Matrix.equal a att)

let test_mul_vec () =
  let a = Numeric.Matrix.of_rows [ [ 2.0; 0.0 ]; [ 0.0; 3.0 ] ] in
  let y = Numeric.Matrix.mul_vec a [| 1.0; 1.0 |] in
  check_float "y0" 2.0 y.(0);
  check_float "y1" 3.0 y.(1)

(* ---------- LU ---------- *)

let test_lu_solve_known () =
  (* 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3 *)
  let a = Numeric.Matrix.of_rows [ [ 2.0; 1.0 ]; [ 1.0; 3.0 ] ] in
  let x = Numeric.Lu.solve a [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_lu_needs_pivoting () =
  (* Zero on the initial diagonal forces a row swap. *)
  let a = Numeric.Matrix.of_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ] in
  let x = Numeric.Lu.solve a [| 2.0; 3.0 |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1)

let test_lu_singular () =
  let a = Numeric.Matrix.of_rows [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  (match Numeric.Lu.decompose a with
  | exception Numeric.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_float "det singular" 0.0 (Numeric.Lu.det a)

let test_det () =
  let a = Numeric.Matrix.of_rows [ [ 3.0; 1.0 ]; [ 4.0; 2.0 ] ] in
  check_float "det" 2.0 (Numeric.Lu.det a);
  (* Permutation parity: swapping rows negates the determinant. *)
  let b = Numeric.Matrix.of_rows [ [ 4.0; 2.0 ]; [ 3.0; 1.0 ] ] in
  check_float "det swapped" (-2.0) (Numeric.Lu.det b)

let test_inverse () =
  let a = Numeric.Matrix.of_rows [ [ 4.0; 7.0 ]; [ 2.0; 6.0 ] ] in
  let inv = Numeric.Lu.inverse a in
  let prod = Numeric.Matrix.mul a inv in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Numeric.Matrix.equal ~eps:1e-9 prod (Numeric.Matrix.identity 2))

let test_not_square () =
  let a = Numeric.Matrix.create 2 3 in
  Alcotest.check_raises "not square" (Invalid_argument "Lu.decompose: not square")
    (fun () -> ignore (Numeric.Lu.decompose a))

(* Property: LU solves diagonally dominant random systems to high accuracy. *)
let prop_lu_random =
  QCheck.Test.make ~name:"lu solves diagonally dominant systems" ~count:100
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand =
        let state = ref (seed + 1) in
        fun () ->
          state := (!state * 1103515245) + 12345;
          float_of_int (abs !state mod 2000 - 1000) /. 100.0
      in
      let a = Numeric.Matrix.create n n in
      for i = 0 to n - 1 do
        let mutable_sum = ref 0.0 in
        for j = 0 to n - 1 do
          if i <> j then begin
            let v = rand () in
            Numeric.Matrix.set a i j v;
            mutable_sum := !mutable_sum +. Float.abs v
          end
        done;
        Numeric.Matrix.set a i i (!mutable_sum +. 1.0 +. Float.abs (rand ()))
      done;
      let x_true = Array.init n (fun _ -> rand ()) in
      let b = Numeric.Matrix.mul_vec a x_true in
      let x = Numeric.Lu.solve a b in
      Numeric.Vector.max_abs_diff x x_true < 1e-6)

(* ---------- Sparse ---------- *)

(* Deterministic pseudo-random stream, as in prop_lu_random. *)
let make_rand seed =
  let state = ref (seed + 1) in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int ((abs !state mod 2000) - 1000) /. 100.0

(* A random diagonally dominant sparse system with ~4 off-diagonals per
   row, returned as both triplets and the equivalent dense matrix. *)
let random_sparse_system n rand =
  let t = Numeric.Sparse.create n in
  let dense = Numeric.Matrix.create n n in
  for i = 0 to n - 1 do
    let row_sum = ref 0.0 in
    let offdiag = 1 + (abs (int_of_float (rand () *. 100.0)) mod 4) in
    for _ = 1 to offdiag do
      let j = abs (int_of_float (rand () *. 1000.0)) mod n in
      if j <> i then begin
        let v = rand () in
        Numeric.Sparse.add_to t i j v;
        Numeric.Matrix.add_to dense i j v;
        row_sum := !row_sum +. Float.abs v
      end
    done;
    let d = !row_sum +. 1.0 +. Float.abs (rand ()) in
    Numeric.Sparse.add_to t i i d;
    Numeric.Matrix.add_to dense i i d
  done;
  (Numeric.Sparse.compress t, dense)

let test_sparse_assembly () =
  let t = Numeric.Sparse.create 3 in
  Numeric.Sparse.add_to t 0 0 1.0;
  Numeric.Sparse.add_to t 0 0 2.0;
  (* duplicate sums *)
  Numeric.Sparse.add_to t 2 1 (-4.0);
  Numeric.Sparse.add_to t 1 2 0.0;
  (* explicit zero kept in pattern *)
  let a = Numeric.Sparse.compress t in
  Alcotest.(check int) "nnz" 3 (Numeric.Sparse.nnz a);
  check_float "summed" 3.0 (Numeric.Sparse.get a 0 0);
  check_float "entry" (-4.0) (Numeric.Sparse.get a 2 1);
  check_float "absent" 0.0 (Numeric.Sparse.get a 2 0);
  Alcotest.(check bool) "zero slot present" true
    (Numeric.Sparse.index a 1 2 <> None);
  Alcotest.(check bool) "absent slot" true (Numeric.Sparse.index a 2 0 = None);
  (match Numeric.Sparse.index a 1 2 with
  | Some p ->
      Numeric.Sparse.set_value a p 7.0;
      check_float "set_value" 7.0 (Numeric.Sparse.get a 1 2)
  | None -> Alcotest.fail "expected slot");
  let y = Numeric.Sparse.mul_vec a [| 1.0; 1.0; 1.0 |] in
  check_float "mul_vec row0" 3.0 y.(0);
  check_float "mul_vec row1" 7.0 y.(1)

let test_sparse_solve_known () =
  (* Same 2x2 as the dense test, plus a pivoting case. *)
  let t = Numeric.Sparse.create 2 in
  Numeric.Sparse.add_to t 0 0 2.0;
  Numeric.Sparse.add_to t 0 1 1.0;
  Numeric.Sparse.add_to t 1 0 1.0;
  Numeric.Sparse.add_to t 1 1 3.0;
  let x = Numeric.Sparse.solve (Numeric.Sparse.compress t) [| 5.0; 10.0 |] in
  check_float "x" 1.0 x.(0);
  check_float "y" 3.0 x.(1);
  let t = Numeric.Sparse.create 2 in
  Numeric.Sparse.add_to t 0 1 1.0;
  Numeric.Sparse.add_to t 1 0 1.0;
  let x = Numeric.Sparse.solve (Numeric.Sparse.compress t) [| 2.0; 3.0 |] in
  check_float "pivoted x" 3.0 x.(0);
  check_float "pivoted y" 2.0 x.(1)

let test_sparse_singular () =
  let t = Numeric.Sparse.create 2 in
  Numeric.Sparse.add_to t 0 0 1.0;
  Numeric.Sparse.add_to t 0 1 2.0;
  Numeric.Sparse.add_to t 1 0 2.0;
  Numeric.Sparse.add_to t 1 1 4.0;
  match Numeric.Sparse.solve (Numeric.Sparse.compress t) [| 1.0; 1.0 |] with
  | exception Numeric.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let test_sparse_factor_reuse () =
  let rand = make_rand 7 in
  let a, _ = random_sparse_system 40 rand in
  let order = Numeric.Sparse.min_degree_order a in
  let f = Numeric.Sparse.decompose ~order a in
  Alcotest.(check int) "order round-trip" (Array.length order)
    (Array.length (Numeric.Sparse.factor_order f));
  (* Two right-hand sides against one factorisation. *)
  let b1 = Array.init 40 (fun i -> float_of_int i) in
  let b2 = Array.init 40 (fun i -> float_of_int (40 - i)) in
  let x1 = Numeric.Sparse.solve_factored f b1 in
  let x2 = Numeric.Sparse.solve_factored f b2 in
  check_float ~eps:1e-8 "residual b1" 0.0
    (Numeric.Vector.max_abs_diff (Numeric.Sparse.mul_vec a x1) b1);
  check_float ~eps:1e-8 "residual b2" 0.0
    (Numeric.Vector.max_abs_diff (Numeric.Sparse.mul_vec a x2) b2)

(* Property: sparse solve ≡ dense solve on the same system. *)
let prop_sparse_matches_dense =
  QCheck.Test.make ~name:"sparse solve matches dense solve" ~count:80
    QCheck.(pair (int_range 1 60) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = make_rand seed in
      let a, dense = random_sparse_system n rand in
      let b = Array.init n (fun _ -> rand ()) in
      let xs = Numeric.Sparse.solve a (Array.copy b) in
      let xd = Numeric.Lu.solve dense (Array.copy b) in
      Numeric.Vector.max_abs_diff xs xd < 1e-9)

(* ---------- SMW ---------- *)

(* Property: the SMW re-solve against A's factors equals a full
   refactorise of A + U·Vᵀ. *)
let prop_smw_matches_refactorise =
  QCheck.Test.make ~name:"smw re-solve matches full refactorise" ~count:80
    QCheck.(triple (int_range 2 30) (int_range 0 2) (int_range 0 10_000))
    (fun (n, k, seed) ->
      let rand = make_rand seed in
      let _, dense = random_sparse_system n rand in
      let f = Numeric.Lu.decompose dense in
      let spvec () =
        let len = 1 + (abs (int_of_float (rand () *. 10.0)) mod 2) in
        Array.init len (fun _ ->
            (abs (int_of_float (rand () *. 1000.0)) mod n, rand () /. 10.0))
      in
      let u = Array.init k (fun _ -> spvec ()) in
      let v = Array.init k (fun _ -> spvec ()) in
      let updated = Numeric.Matrix.copy dense in
      Array.iteri
        (fun idx ui ->
          Array.iter
            (fun (i, uv) ->
              Array.iter
                (fun (j, vv) -> Numeric.Matrix.add_to updated i j (uv *. vv))
                v.(idx))
            ui)
        u;
      let b = Array.init n (fun _ -> rand ()) in
      match Numeric.Lu.solve updated (Array.copy b) with
      | exception Numeric.Lu.Singular _ -> QCheck.assume_fail ()
      | x_full -> (
          match
            Numeric.Smw.prepare ~n
              ~solve:(Numeric.Lu.solve_factored f)
              ~u ~v
          with
          | exception Numeric.Lu.Singular _ -> QCheck.assume_fail ()
          | smw ->
              let x_smw = Numeric.Smw.solve smw (Array.copy b) in
              Numeric.Vector.max_abs_diff x_smw x_full < 1e-9))

let test_smw_rank1_known () =
  (* A = I (2x2), u = e0, v = e1: A' = [[1;1];[0;1]], b = [3;2] -> x = [1;2]. *)
  let a = Numeric.Matrix.identity 2 in
  let f = Numeric.Lu.decompose a in
  let smw =
    Numeric.Smw.prepare ~n:2
      ~solve:(Numeric.Lu.solve_factored f)
      ~u:[| [| (0, 1.0) |] |]
      ~v:[| [| (1, 1.0) |] |]
  in
  Alcotest.(check int) "rank" 1 (Numeric.Smw.rank smw);
  let x = Numeric.Smw.solve smw [| 3.0; 2.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1);
  let upd = Numeric.Smw.apply_update smw [| 0.0; 5.0 |] in
  check_float "update e0" 5.0 upd.(0);
  check_float "update e1" 0.0 upd.(1)

let test_smw_singular_update () =
  (* A = I, u = v = -e0: A' zeroes row/col 0 -> singular capacitance. *)
  let f = Numeric.Lu.decompose (Numeric.Matrix.identity 2) in
  match
    Numeric.Smw.prepare ~n:2
      ~solve:(Numeric.Lu.solve_factored f)
      ~u:[| [| (0, -1.0) |] |]
      ~v:[| [| (0, 1.0) |] |]
  with
  | exception Numeric.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular"

let suite =
  [
    Alcotest.test_case "vector basics" `Quick test_vector_basics;
    Alcotest.test_case "vector mismatch" `Quick test_vector_mismatch;
    Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
    Alcotest.test_case "matrix basics" `Quick test_matrix_basics;
    Alcotest.test_case "matrix ragged" `Quick test_matrix_ragged;
    Alcotest.test_case "matrix mul" `Quick test_matrix_mul;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "mul_vec" `Quick test_mul_vec;
    Alcotest.test_case "lu solve known" `Quick test_lu_solve_known;
    Alcotest.test_case "lu pivoting" `Quick test_lu_needs_pivoting;
    Alcotest.test_case "lu singular" `Quick test_lu_singular;
    Alcotest.test_case "determinant" `Quick test_det;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "not square" `Quick test_not_square;
    Alcotest.test_case "sparse assembly" `Quick test_sparse_assembly;
    Alcotest.test_case "sparse solve known" `Quick test_sparse_solve_known;
    Alcotest.test_case "sparse singular" `Quick test_sparse_singular;
    Alcotest.test_case "sparse factor reuse" `Quick test_sparse_factor_reuse;
    Alcotest.test_case "smw rank-1 known" `Quick test_smw_rank1_known;
    Alcotest.test_case "smw singular update" `Quick test_smw_singular_update;
    QCheck_alcotest.to_alcotest prop_lu_random;
    QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
    QCheck_alcotest.to_alcotest prop_smw_matches_refactorise;
  ]
