(* Tests for the safety-mechanism deployment search. *)

let mech ?(cost = 1.0) name ctype fmode cov =
  {
    Reliability.Sm_model.sm_name = name;
    component_type = ctype;
    failure_mode = fmode;
    coverage_pct = cov;
    cost;
  }

let table rows = { Fmea.Table.system_name = "s"; rows }

let sr_row ?(fit = 100.0) ?(dist = 100.0) component fmode =
  Fmea.Table.make_row ~component ~component_fit:fit ~failure_mode:fmode
    ~distribution_pct:dist ~safety_related:true ()

let two_slot_table =
  table [ sr_row "X" "f"; sr_row ~fit:50.0 "Y" "g" ]

let catalogue =
  Reliability.Sm_model.of_mechanisms
    [
      mech ~cost:1.0 "cheap" "X" "f" 60.0;
      mech ~cost:4.0 "good" "X" "f" 95.0;
      mech ~cost:2.0 "only" "Y" "g" 90.0;
    ]

let test_slots () =
  let slots = Optimize.Search.slots two_slot_table catalogue in
  Alcotest.(check int) "two slots" 2 (List.length slots);
  let x_slot =
    List.find (fun s -> s.Optimize.Search.slot_component = "X") slots
  in
  Alcotest.(check int) "two options for X" 2
    (List.length x_slot.Optimize.Search.slot_options);
  (* Non-safety-related rows contribute no slot. *)
  let with_extra =
    table
      (two_slot_table.Fmea.Table.rows
      @ [
          Fmea.Table.make_row ~component:"Z" ~component_fit:1.0 ~failure_mode:"h"
            ~distribution_pct:100.0 ~safety_related:false ();
        ])
  in
  Alcotest.(check int) "still two" 2
    (List.length (Optimize.Search.slots with_extra catalogue))

let test_evaluate () =
  let c = Optimize.Search.evaluate two_slot_table [] in
  Alcotest.(check (float 1e-9)) "no deployment cost" 0.0 c.Optimize.Search.cost;
  Alcotest.(check (float 1e-9)) "spfm 0" 0.0 c.Optimize.Search.spfm_pct;
  let all =
    [
      Fmea.Fmeda.deploy ~component:"X" ~failure_mode:"f" (mech ~cost:4.0 "good" "X" "f" 95.0);
      Fmea.Fmeda.deploy ~component:"Y" ~failure_mode:"g" (mech ~cost:2.0 "only" "Y" "g" 90.0);
    ]
  in
  let c = Optimize.Search.evaluate two_slot_table all in
  Alcotest.(check (float 1e-9)) "cost" 6.0 c.Optimize.Search.cost;
  (* residual = 100*0.05 + 50*0.10 = 10; total = 150 -> spfm = 93.33 *)
  Alcotest.(check (float 0.01)) "spfm" 93.33 c.Optimize.Search.spfm_pct

let test_exhaustive_enumerates_all () =
  let candidates = Optimize.Search.exhaustive two_slot_table catalogue in
  (* (2 options + skip) * (1 option + skip) = 6 *)
  Alcotest.(check int) "6 combinations" 6 (List.length candidates)

let test_exhaustive_limit () =
  match
    Optimize.Search.exhaustive ~max_combinations:3 two_slot_table catalogue
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected limit error"

let test_pareto_front () =
  let candidates = Optimize.Search.exhaustive two_slot_table catalogue in
  let front = Optimize.Search.pareto_front candidates in
  (* Front must be strictly increasing in both cost and SPFM. *)
  let rec strictly_improving = function
    | a :: (b :: _ as rest) ->
        a.Optimize.Search.cost < b.Optimize.Search.cost
        && a.Optimize.Search.spfm_pct < b.Optimize.Search.spfm_pct
        && strictly_improving rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly improving" true (strictly_improving front);
  (* No candidate dominates any front member. *)
  let dominated_by c other =
    other.Optimize.Search.spfm_pct >= c.Optimize.Search.spfm_pct
    && other.Optimize.Search.cost <= c.Optimize.Search.cost
    && (other.Optimize.Search.spfm_pct > c.Optimize.Search.spfm_pct
       || other.Optimize.Search.cost < c.Optimize.Search.cost)
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) "front member undominated" false
        (List.exists (dominated_by f) candidates))
    front

let prop_pareto_covers =
  (* Every candidate is dominated-or-equalled by some front member. *)
  QCheck.Test.make ~name:"pareto front covers all candidates" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30)
              (pair (QCheck.float_bound_inclusive 100.0) (QCheck.float_bound_inclusive 20.0)))
    (fun points ->
      let candidates =
        List.map
          (fun (spfm, cost) ->
            { Optimize.Search.deployments = []; spfm_pct = spfm; cost })
          points
      in
      let front = Optimize.Search.pareto_front candidates in
      front <> []
      && List.for_all
           (fun c ->
             List.exists
               (fun f ->
                 f.Optimize.Search.spfm_pct >= c.Optimize.Search.spfm_pct
                 && f.Optimize.Search.cost <= c.Optimize.Search.cost)
               front)
           candidates)

let test_cheapest_meeting () =
  let candidates = Optimize.Search.exhaustive two_slot_table catalogue in
  match
    Optimize.Search.cheapest_meeting ~target:Ssam.Requirement.ASIL_B candidates
  with
  | Some c ->
      (* ASIL-B needs >= 90%: "good"+"only" (93.33% at cost 6) is the only
         combination above 90. *)
      Alcotest.(check (float 1e-9)) "cost" 6.0 c.Optimize.Search.cost;
      Alcotest.(check bool) "meets" true (c.Optimize.Search.spfm_pct >= 90.0)
  | None -> Alcotest.fail "expected a solution"

let test_cheapest_meeting_none () =
  let candidates = Optimize.Search.exhaustive two_slot_table catalogue in
  Alcotest.(check bool) "ASIL-D unreachable" true
    (Optimize.Search.cheapest_meeting ~target:Ssam.Requirement.ASIL_D candidates
    = None)

let test_greedy_reaches_target () =
  let g =
    Optimize.Search.greedy ~target:Ssam.Requirement.ASIL_B two_slot_table
      catalogue
  in
  Alcotest.(check bool) "greedy meets ASIL-B" true (g.Optimize.Search.spfm_pct >= 90.0)

let test_greedy_stops_when_stuck () =
  (* No mechanisms at all: greedy returns the empty deployment. *)
  let g =
    Optimize.Search.greedy ~target:Ssam.Requirement.ASIL_B two_slot_table
      Reliability.Sm_model.empty
  in
  Alcotest.(check int) "no deployments" 0 (List.length g.Optimize.Search.deployments)

let test_optimise_end_to_end () =
  let chosen, front =
    Optimize.Search.optimise ~target:Ssam.Requirement.ASIL_B two_slot_table
      catalogue
  in
  Alcotest.(check bool) "found" true (Option.is_some chosen);
  Alcotest.(check bool) "front nonempty" true (front <> []);
  (* The chosen one is on (or dominated by nothing in) the front. *)
  let c = Option.get chosen in
  Alcotest.(check bool) "chosen is optimal for its cost" true
    (List.for_all
       (fun f ->
         not
           (f.Optimize.Search.cost <= c.Optimize.Search.cost
           && f.Optimize.Search.spfm_pct > c.Optimize.Search.spfm_pct
           && f.Optimize.Search.spfm_pct >= 90.0))
       front)

let test_optimise_greedy_fallback () =
  (* Many slots with many options exceed the exhaustive limit: optimise
     falls back to greedy and still returns a candidate. *)
  let rows = List.init 24 (fun i -> sr_row (Printf.sprintf "C%d" i) "f") in
  let mechanisms =
    List.concat_map
      (fun i ->
        [
          mech ~cost:1.0 "a" (Printf.sprintf "C%d" i) "f" 60.0;
          mech ~cost:2.0 "b" (Printf.sprintf "C%d" i) "f" 90.0;
          mech ~cost:4.0 "c" (Printf.sprintf "C%d" i) "f" 99.0;
        ])
      (List.init 24 Fun.id)
  in
  let chosen, _ =
    Optimize.Search.optimise ~target:Ssam.Requirement.ASIL_B (table rows)
      (Reliability.Sm_model.of_mechanisms mechanisms)
  in
  match chosen with
  | Some c -> Alcotest.(check bool) "fallback meets" true (c.Optimize.Search.spfm_pct >= 90.0)
  | None -> Alcotest.fail "expected greedy fallback solution"

(* ---------- streaming enumeration ---------- *)

let candidate_list = Alcotest.testable Optimize.Search.pp_candidate
    Optimize.Search.equal_candidate

let test_streaming_matches_list () =
  let listed = Optimize.Search.exhaustive two_slot_table catalogue in
  (* Window smaller than (and not dividing) the 6-candidate space, so
     the fold crosses window boundaries. *)
  let streamed =
    List.rev
      (Optimize.Search.exhaustive_fold ~window:4 two_slot_table catalogue
         ~init:[] ~f:(fun acc c -> c :: acc))
  in
  Alcotest.(check (list candidate_list)) "same candidates, same order" listed
    streamed

let test_streaming_optimise_matches_list () =
  let listed = Optimize.Search.exhaustive two_slot_table catalogue in
  let chosen, front =
    Optimize.Search.optimise ~target:Ssam.Requirement.ASIL_B two_slot_table
      catalogue
  in
  Alcotest.(check (option candidate_list)) "same cheapest"
    (Optimize.Search.cheapest_meeting ~target:Ssam.Requirement.ASIL_B listed)
    chosen;
  Alcotest.(check (list candidate_list)) "same pareto front"
    (Optimize.Search.pareto_front listed)
    front

let test_streaming_beyond_list_cap () =
  (* 9 slots x 3 options = 4^9 = 262 144 combinations: over the
     list-based cap (the list entry point must refuse) but well inside
     the streaming optimiser's budget — and the answer must be the
     exact search, not the greedy fallback. *)
  let n = 9 in
  let rows = List.init n (fun i -> sr_row (Printf.sprintf "C%d" i) "f") in
  let mechanisms =
    List.concat_map
      (fun i ->
        [
          mech ~cost:1.0 "a" (Printf.sprintf "C%d" i) "f" 60.0;
          mech ~cost:2.0 "b" (Printf.sprintf "C%d" i) "f" 90.0;
          mech ~cost:4.0 "c" (Printf.sprintf "C%d" i) "f" 99.0;
        ])
      (List.init n Fun.id)
  in
  let t = table rows and cat = Reliability.Sm_model.of_mechanisms mechanisms in
  (match Optimize.Search.exhaustive t cat with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "list-based entry point should refuse 262k combinations");
  let chosen, front =
    Optimize.Search.optimise ~target:Ssam.Requirement.ASIL_B t cat
  in
  (match chosen with
  | None -> Alcotest.fail "expected a solution"
  | Some c ->
      Alcotest.(check bool) "meets ASIL-B" true (c.Optimize.Search.spfm_pct >= 90.0);
      (* ASIL-B needs 90 %: deploying "b" (90 % coverage) everywhere
         gives exactly 90 at cost 18, and nothing cheaper reaches it. *)
      Alcotest.(check (float 1e-9)) "exact optimum cost" 18.0
        c.Optimize.Search.cost);
  (* The greedy fallback would return a single-element front. *)
  Alcotest.(check bool) "exhaustive front, not greedy" true
    (List.length front > 1)

let suite =
  [
    Alcotest.test_case "slots" `Quick test_slots;
    Alcotest.test_case "evaluate" `Quick test_evaluate;
    Alcotest.test_case "exhaustive enumerates" `Quick test_exhaustive_enumerates_all;
    Alcotest.test_case "exhaustive limit" `Quick test_exhaustive_limit;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    QCheck_alcotest.to_alcotest prop_pareto_covers;
    Alcotest.test_case "cheapest meeting" `Quick test_cheapest_meeting;
    Alcotest.test_case "cheapest meeting none" `Quick test_cheapest_meeting_none;
    Alcotest.test_case "greedy reaches target" `Quick test_greedy_reaches_target;
    Alcotest.test_case "greedy stops when stuck" `Quick test_greedy_stops_when_stuck;
    Alcotest.test_case "optimise end-to-end" `Quick test_optimise_end_to_end;
    Alcotest.test_case "optimise greedy fallback" `Quick test_optimise_greedy_fallback;
    Alcotest.test_case "streaming matches list" `Quick test_streaming_matches_list;
    Alcotest.test_case "streaming optimise matches list" `Quick
      test_streaming_optimise_matches_list;
    Alcotest.test_case "streaming beyond list cap" `Slow
      test_streaming_beyond_list_cap;
  ]
