(* Tests for FIT arithmetic and the reliability / safety-mechanism models. *)

open Reliability

(* ---------- Fit ---------- *)

let test_fit_arithmetic () =
  Alcotest.(check (float 1e-12)) "share" 3.0
    (Fit.share (Fit.of_float 10.0) ~distribution_pct:30.0);
  Alcotest.(check (float 1e-12)) "residual" 3.0
    (Fit.residual (Fit.of_float 300.0) ~coverage_pct:99.0);
  Alcotest.(check (float 1e-12)) "sum" 325.0
    (Fit.sum [ 10.0; 15.0; 300.0 ]);
  Alcotest.(check (float 1e-24)) "failures/hour" 1e-8
    (Fit.to_failures_per_hour (Fit.of_float 10.0));
  Alcotest.(check (float 1e-9)) "of failures/hour" 10.0
    (Fit.of_failures_per_hour 1e-8);
  (* Mission probability: 100 FIT over 10k hours is 1e-3 to first order,
     and expm1 keeps the tiny-lambda regime exact where exp would round. *)
  Alcotest.(check (float 1e-12)) "mission probability" 9.995001666e-4
    (Fit.failure_probability (Fit.of_float 100.0) ~mission_hours:10_000.0);
  Alcotest.(check (float 1e-18)) "tiny-rate precision" 1e-9
    (Fit.failure_probability (Fit.of_float 1.0) ~mission_hours:1.0);
  Alcotest.(check (float 0.0)) "zero mission" 0.0
    (Fit.failure_probability (Fit.of_float 100.0) ~mission_hours:0.0);
  Alcotest.check_raises "negative mission"
    (Invalid_argument "Fit.failure_probability: negative mission time")
    (fun () ->
      ignore (Fit.failure_probability 10.0 ~mission_hours:(-1.0)))

let test_fit_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Fit.of_float: negative FIT")
    (fun () -> ignore (Fit.of_float (-1.0)));
  Alcotest.check_raises "bad pct"
    (Invalid_argument "Fit.share: percentage 120 outside [0,100]") (fun () ->
      ignore (Fit.share 10.0 ~distribution_pct:120.0));
  Alcotest.check_raises "bad coverage"
    (Invalid_argument "Fit.residual: percentage -1 outside [0,100]") (fun () ->
      ignore (Fit.residual 10.0 ~coverage_pct:(-1.0)))

(* ---------- Reliability model ---------- *)

let test_table_ii () =
  let m = Reliability_model.table_ii in
  let diode = Option.get (Reliability_model.find m "Diode") in
  Alcotest.(check (float 1e-9)) "diode fit" 10.0 diode.Reliability_model.fit;
  Alcotest.(check int) "diode fms" 2 (List.length diode.Reliability_model.failure_modes);
  (* "MC" resolves to microcontroller through the catalogue alias. *)
  let mc = Option.get (Reliability_model.find m "MC") in
  Alcotest.(check (float 1e-9)) "mc fit" 300.0 mc.Reliability_model.fit;
  Alcotest.(check bool) "no opamp" true (Reliability_model.find m "opamp" = None);
  Alcotest.(check (list string)) "validates" [] (Reliability_model.validate m)

let test_loss_of_function_inference () =
  let m = Reliability_model.table_ii in
  let diode = Option.get (Reliability_model.find m "diode") in
  let by_name name =
    List.find
      (fun fm -> fm.Reliability_model.fm_name = name)
      diode.Reliability_model.failure_modes
  in
  Alcotest.(check bool) "open is loss" true (by_name "Open").Reliability_model.loss_of_function;
  Alcotest.(check bool) "short is not loss" false
    (by_name "Short").Reliability_model.loss_of_function

let table_ii_csv =
  "Component,FIT,Failure_Mode,Distribution\n\
   Diode,10,Open,30%\n,,Short,70%\n\
   Capacitor,2,Open,30%\n,,Short,70%\n\
   Inductor,15,Open,30%\n,,Short,70%\n\
   MC,300,RAM Failure,100%\n"

let test_spreadsheet_parse () =
  let wb = Modelio.Spreadsheet.of_csv ~name:"rel" (Modelio.Csv.parse table_ii_csv) in
  let m = Reliability_model.of_spreadsheet wb in
  (* Continuation rows (blank Component/FIT) attach to the previous entry. *)
  Alcotest.(check int) "entries" 4 (List.length (Reliability_model.entries m));
  let diode = Option.get (Reliability_model.find m "diode") in
  Alcotest.(check int) "diode modes" 2 (List.length diode.Reliability_model.failure_modes);
  Alcotest.(check bool) "equivalent to table_ii" true
    (List.for_all
       (fun (e : Reliability_model.entry) ->
         match Reliability_model.find Reliability_model.table_ii e.Reliability_model.component_type with
         | Some e2 -> Fit.equal e.Reliability_model.fit e2.Reliability_model.fit
         | None -> false)
       (Reliability_model.entries m))

let test_spreadsheet_errors () =
  let bad_col = Modelio.Spreadsheet.of_csv ~name:"x" [ [ "Nope" ]; [ "y" ] ] in
  (match Reliability_model.of_spreadsheet bad_col with
  | exception Reliability_model.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error on missing columns");
  let orphan =
    Modelio.Spreadsheet.of_csv ~name:"x"
      [
        [ "Component"; "FIT"; "Failure_Mode"; "Distribution" ];
        [ ""; ""; "Open"; "30%" ];
      ]
  in
  match Reliability_model.of_spreadsheet orphan with
  | exception Reliability_model.Format_error _ -> ()
  | _ -> Alcotest.fail "expected Format_error on orphan continuation"

let test_spreadsheet_roundtrip () =
  let m = Reliability_model.table_ii in
  let m2 = Reliability_model.of_spreadsheet (Reliability_model.to_spreadsheet m) in
  Alcotest.(check int) "entry count"
    (List.length (Reliability_model.entries m))
    (List.length (Reliability_model.entries m2));
  List.iter
    (fun (e : Reliability_model.entry) ->
      match Reliability_model.find m2 e.Reliability_model.component_type with
      | None -> Alcotest.fail ("missing " ^ e.Reliability_model.component_type)
      | Some e2 ->
          Alcotest.(check (float 1e-9)) "fit" e.Reliability_model.fit e2.Reliability_model.fit)
    (Reliability_model.entries m)

let test_json_parse () =
  let json =
    Modelio.Json.parse
      {| {"components": [
           {"type": "diode", "fit": 10,
            "failure_modes": [
              {"name": "Open", "distribution": 30},
              {"name": "Short", "distribution": 70}]},
           {"type": "relay", "fit": 5,
            "failure_modes": [
              {"name": "Weld", "distribution": 100, "loss_of_function": false}]}
         ]} |}
  in
  let m = Reliability_model.of_json json in
  Alcotest.(check int) "entries" 2 (List.length (Reliability_model.entries m));
  let relay = Option.get (Reliability_model.find m "relay") in
  let weld = List.hd relay.Reliability_model.failure_modes in
  Alcotest.(check bool) "explicit loss flag respected" false
    weld.Reliability_model.loss_of_function

let test_json_errors () =
  List.iter
    (fun src ->
      match Reliability_model.of_json (Modelio.Json.parse src) with
      | exception Reliability_model.Format_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected Format_error on %s" src))
    [
      {| {} |};
      {| {"components": [{"fit": 3}]} |};
      {| {"components": [{"type": "r"}]} |};
    ]

let test_validate_problems () =
  let bad =
    Reliability_model.of_entries
      [
        {
          Reliability_model.component_type = "thing";
          fit = Fit.of_float 0.0;
          failure_modes =
            [
              {
                Reliability_model.fm_name = "A";
                distribution_pct = 40.0;
                fault = None;
                loss_of_function = false;
              };
              {
                Reliability_model.fm_name = "a";
                distribution_pct = 40.0;
                fault = None;
                loss_of_function = false;
              };
            ];
        };
      ]
  in
  let problems = Reliability_model.validate bad in
  Alcotest.(check bool) "sum problem" true
    (List.exists (fun p -> String.length p > 0) problems);
  Alcotest.(check bool) "three problems (sum, zero fit, dup names)" true
    (List.length problems = 3)

(* ---------- SM model ---------- *)

let test_table_iii () =
  let ms =
    Sm_model.applicable Sm_model.table_iii ~component_type:"MCU"
      ~failure_mode:"ram failure"
  in
  Alcotest.(check int) "ecc found" 1 (List.length ms);
  let ecc = List.hd ms in
  Alcotest.(check string) "name" "ECC" ecc.Sm_model.sm_name;
  Alcotest.(check (float 1e-9)) "coverage" 99.0 ecc.Sm_model.coverage_pct;
  Alcotest.(check (float 1e-9)) "cost" 2.0 ecc.Sm_model.cost

let test_applicable_sorting () =
  let ms =
    Sm_model.applicable Sm_model.extended_catalogue ~component_type:"microcontroller"
      ~failure_mode:"RAM Failure"
  in
  Alcotest.(check bool) "at least ECC, watchdog, lockstep" true (List.length ms >= 3);
  let coverages = List.map (fun m -> m.Sm_model.coverage_pct) ms in
  Alcotest.(check bool) "descending coverage" true
    (List.sort (fun a b -> Float.compare b a) coverages = coverages)

let test_sm_spreadsheet_roundtrip () =
  let m = Sm_model.extended_catalogue in
  let m2 = Sm_model.of_spreadsheet (Sm_model.to_spreadsheet m) in
  Alcotest.(check int) "mechanism count"
    (List.length (Sm_model.mechanisms m))
    (List.length (Sm_model.mechanisms m2))

let test_sm_validate () =
  let bad =
    Sm_model.of_mechanisms
      [
        {
          Sm_model.sm_name = "x";
          component_type = "y";
          failure_mode = "z";
          coverage_pct = 150.0;
          cost = -1.0;
        };
      ]
  in
  Alcotest.(check int) "two problems" 2 (List.length (Sm_model.validate bad));
  Alcotest.(check (list string)) "catalogue is clean" []
    (Sm_model.validate Sm_model.extended_catalogue)

let suite =
  [
    Alcotest.test_case "fit arithmetic" `Quick test_fit_arithmetic;
    Alcotest.test_case "fit validation" `Quick test_fit_validation;
    Alcotest.test_case "table II" `Quick test_table_ii;
    Alcotest.test_case "loss inference" `Quick test_loss_of_function_inference;
    Alcotest.test_case "spreadsheet parse" `Quick test_spreadsheet_parse;
    Alcotest.test_case "spreadsheet errors" `Quick test_spreadsheet_errors;
    Alcotest.test_case "spreadsheet roundtrip" `Quick test_spreadsheet_roundtrip;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "validate problems" `Quick test_validate_problems;
    Alcotest.test_case "table III" `Quick test_table_iii;
    Alcotest.test_case "applicable sorting" `Quick test_applicable_sorting;
    Alcotest.test_case "sm spreadsheet roundtrip" `Quick test_sm_spreadsheet_roundtrip;
    Alcotest.test_case "sm validate" `Quick test_sm_validate;
  ]
