(* Tests for the `same serve` daemon: wire protocol round-trips,
   content-addressed fingerprints, single-flight coalescing and the full
   socket path — one warm engine serving concurrent clients. *)

let tmp_socket () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "same-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))

let system_b_texts () =
  let subject = Decisive.Systems.system_b in
  let path = Filename.temp_file "serve-test" ".bd" in
  Blockdiag.Text_format.write_file path subject.Decisive.Systems.diagram;
  let diagram = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  let reliability m =
    match
      (Reliability.Reliability_model.to_spreadsheet m).Modelio.Spreadsheet.sheets
    with
    | { Modelio.Spreadsheet.table; _ } :: _ ->
        Modelio.Csv.to_string (table.Modelio.Csv.header :: table.Modelio.Csv.rows)
    | [] -> ""
  in
  (diagram, reliability subject.Decisive.Systems.reliability,
   subject.Decisive.Systems.reliability, reliability)

(* ---------- protocol ---------- *)

let test_protocol_roundtrip () =
  let requests =
    [
      Serve.Protocol.Ping;
      Serve.Protocol.Stats;
      Serve.Protocol.Shutdown;
      Serve.Protocol.Analyse
        {
          Serve.Protocol.a_analysis = Serve.Protocol.Fmea;
          a_diagram = "block A {}\n";
          a_reliability = Some "type,fit\nmcu,100\n";
          a_sm = None;
          a_params = [ ("exclude", "DC1"); ("monitored", "CS1,CS2") ];
        };
      Serve.Protocol.Open_session
        {
          o_diagram = "block A {}\n";
          o_reliability = None;
          o_params = [ ("exclude", "X") ];
        };
      Serve.Protocol.Edit
        {
          e_session = "s1";
          e_diagram = None;
          e_reliability = Some "type,fit\nmcu,125\n";
        };
      Serve.Protocol.Close_session "s1";
    ]
  in
  List.iter
    (fun req ->
      let json = Serve.Protocol.request_to_json req in
      match Serve.Protocol.request_of_json json with
      | Ok req' ->
          Alcotest.(check bool) "round-trips" true (req = req')
      | Error m -> Alcotest.fail ("decode failed: " ^ m))
    requests

let test_protocol_framing_rejects_newline () =
  let buf = Buffer.create 16 in
  let oc = open_out "/dev/null" in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  ignore buf;
  match Serve.Protocol.write_frame oc "a\nb" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "embedded newline accepted"

let test_fingerprint_canonical () =
  let base params =
    {
      Serve.Protocol.a_analysis = Serve.Protocol.Fmea;
      a_diagram = "block A {}\n";
      a_reliability = None;
      a_sm = None;
      a_params = params;
    }
  in
  let fp a = Engine.Fingerprint.to_hex (Serve.Protocol.fingerprint a) in
  (* Parameter order is canonicalised away. *)
  Alcotest.(check string)
    "order-insensitive"
    (fp (base [ ("a", "1"); ("b", "2") ]))
    (fp (base [ ("b", "2"); ("a", "1") ]));
  (* Every input distinguishes. *)
  Alcotest.(check bool)
    "params distinguish" false
    (fp (base [ ("a", "1") ]) = fp (base [ ("a", "2") ]));
  Alcotest.(check bool)
    "kind distinguishes" false
    (fp (base [])
    = fp { (base []) with Serve.Protocol.a_analysis = Serve.Protocol.Fta });
  Alcotest.(check bool)
    "model distinguishes" false
    (fp (base [])
    = fp { (base []) with Serve.Protocol.a_diagram = "block B {}\n" })

(* ---------- single-flight ---------- *)

let test_singleflight_coalesces () =
  let flight = Serve.Singleflight.create () in
  let computations = Atomic.make 0 in
  let barrier = Atomic.make 0 in
  let n = 8 in
  let results = Array.make n (0, Serve.Singleflight.Led) in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr barrier;
            (* Spin until everyone is launched so followers really do
               arrive while the leader is inside the computation. *)
            while Atomic.get barrier < n do Thread.yield () done;
            results.(i) <-
              Serve.Singleflight.run flight ~key:"k" (fun () ->
                  Atomic.incr computations;
                  Thread.delay 0.05;
                  42))
          ())
  in
  List.iter Thread.join threads;
  let leaders =
    Array.fold_left
      (fun acc (_, o) -> if o = Serve.Singleflight.Led then acc + 1 else acc)
      0 results
  in
  Array.iter (fun (v, _) -> Alcotest.(check int) "value shared" 42 v) results;
  (* Stragglers that miss the in-flight window each lead their own run,
     but concurrent arrivals must coalesce: strictly fewer computations
     than callers, and the leader count matches the computation count. *)
  Alcotest.(check int) "one leader per computation" (Atomic.get computations) leaders;
  Alcotest.(check bool)
    (Printf.sprintf "coalesced (%d computations for %d callers)"
       (Atomic.get computations) n)
    true
    (Atomic.get computations < n);
  Alcotest.(check int) "nothing left in flight" 0 (Serve.Singleflight.in_flight flight)

let test_singleflight_distinct_keys_do_not_coalesce () =
  let flight = Serve.Singleflight.create () in
  let v1, o1 = Serve.Singleflight.run flight ~key:"a" (fun () -> 1) in
  let v2, o2 = Serve.Singleflight.run flight ~key:"b" (fun () -> 2) in
  Alcotest.(check (pair int int)) "values" (1, 2) (v1, v2);
  Alcotest.(check bool) "both led" true
    (o1 = Serve.Singleflight.Led && o2 = Serve.Singleflight.Led)

(* ---------- end-to-end over the socket ---------- *)

let with_server f =
  let socket = tmp_socket () in
  let server =
    Serve.Server.start
      { Serve.Server.socket_path = socket; cache_dir = None; jobs = 2 }
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Serve.Server.wait server;
      if Sys.file_exists socket then Sys.remove socket)
    (fun () -> f server socket)

let rpc client req =
  match Serve.Client.rpc client req with
  | Ok json -> json
  | Error m -> Alcotest.fail ("rpc failed: " ^ m)

let member_num name json =
  match Modelio.Json.(Option.bind (member name json) to_float) with
  | Some n -> int_of_float n
  | None -> Alcotest.fail (Printf.sprintf "response has no %S" name)

let member_str name json =
  match Modelio.Json.(Option.bind (member name json) to_str) with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "response has no %S" name)

let test_server_ping_and_stats () =
  with_server @@ fun _server socket ->
  match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok client ->
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      let pong = rpc client Serve.Protocol.Ping in
      Alcotest.(check bool) "pong" true
        (Modelio.Json.(Option.bind (member "pong" pong) to_bool) = Some true);
      let stats = rpc client Serve.Protocol.Stats in
      Alcotest.(check bool) "requests counted" true (member_num "requests" stats >= 1)

let test_server_analyse_and_cache () =
  let diagram, reliability, _, _ = system_b_texts () in
  let request =
    Serve.Protocol.Analyse
      {
        Serve.Protocol.a_analysis = Serve.Protocol.Fmea;
        a_diagram = diagram;
        a_reliability = Some reliability;
        a_sm = None;
        a_params = [ ("exclude", "DC1,BAT1"); ("monitored", "CS1,CS2,VS1") ];
      }
  in
  with_server @@ fun server socket ->
  match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok client ->
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      let first = rpc client request in
      Alcotest.(check int) "exit 0" 0 (member_num "exit" first);
      Alcotest.(check bool) "has rows" true
        (String.length (member_str "output" first) > 0);
      let second = rpc client request in
      (* Identical request: served from the content-addressed cache,
         byte-identical output, no new computation. *)
      Alcotest.(check string) "bit-identical replay"
        (member_str "output" first) (member_str "output" second);
      let stats = Serve.Server.stats server in
      Alcotest.(check int) "one computation" 1 stats.Serve.Server.analyses_computed;
      Alcotest.(check int) "one cache hit" 1 stats.Serve.Server.analyses_cached

let test_server_coalesces_concurrent () =
  let diagram, reliability, _, _ = system_b_texts () in
  let request =
    Serve.Protocol.Analyse
      {
        Serve.Protocol.a_analysis = Serve.Protocol.Assess;
        a_diagram = diagram;
        a_reliability = Some reliability;
        a_sm = None;
        a_params = [ ("seed", "7"); ("trials", "200000") ];
      }
  in
  with_server @@ fun server socket ->
  let n = 4 in
  let outputs = Array.make n "" in
  let threads =
    List.init n (fun i ->
        Thread.create
          (fun () ->
            match Serve.Client.one_shot ~socket request with
            | Ok json -> outputs.(i) <- member_str "output" json
            | Error m -> outputs.(i) <- "error: " ^ m)
          ())
  in
  List.iter Thread.join threads;
  let stats = Serve.Server.stats server in
  let distinct = List.sort_uniq compare (Array.to_list outputs) in
  Alcotest.(check int) "all replies identical" 1 (List.length distinct);
  Alcotest.(check int) "single solve" 1 stats.Serve.Server.analyses_computed;
  Alcotest.(check int) "followers coalesced or cached" (n - 1)
    (stats.Serve.Server.analyses_coalesced + stats.Serve.Server.analyses_cached)

let test_server_incremental_session () =
  let diagram, reliability_csv, reliability, render = system_b_texts () in
  with_server @@ fun _server socket ->
  match Serve.Client.connect socket with
  | Error m -> Alcotest.fail m
  | Ok client ->
      Fun.protect ~finally:(fun () -> Serve.Client.close client) @@ fun () ->
      let opened =
        rpc client
          (Serve.Protocol.Open_session
             {
               o_diagram = diagram;
               o_reliability = Some reliability_csv;
               o_params =
                 [ ("exclude", "DC1,BAT1"); ("monitored", "CS1,CS2,VS1") ];
             })
      in
      let session = member_str "session" opened in
      let rows = member_num "rows" opened in
      Alcotest.(check bool) "table populated" true (rows > 0);
      (* A no-op edit changes nothing. *)
      let noop =
        rpc client
          (Serve.Protocol.Edit
             {
               e_session = session;
               e_diagram = None;
               e_reliability = Some reliability_csv;
             })
      in
      (match Modelio.Json.member "changed_rows" noop with
      | Some (Modelio.Json.List l) ->
          Alcotest.(check int) "no-op changes nothing" 0 (List.length l)
      | _ -> Alcotest.fail "no changed_rows in edit response");
      (* A FIT edit on the microcontroller touches only its rows, and the
         rest of the table is reused rather than re-solved. *)
      let edited =
        match Reliability.Reliability_model.find reliability "microcontroller" with
        | Some e ->
            Reliability.Reliability_model.add reliability
              { e with Reliability.Reliability_model.fit =
                  e.Reliability.Reliability_model.fit +. 50.0 }
        | None -> Alcotest.fail "no microcontroller entry"
      in
      let response =
        rpc client
          (Serve.Protocol.Edit
             {
               e_session = session;
               e_diagram = None;
               e_reliability = Some (render edited);
             })
      in
      Alcotest.(check int) "revision advanced" 2 (member_num "revision" response);
      let changed =
        match Modelio.Json.member "changed_rows" response with
        | Some (Modelio.Json.List l) -> l
        | _ -> Alcotest.fail "no changed_rows in edit response"
      in
      Alcotest.(check bool) "some rows changed" true (List.length changed > 0);
      Alcotest.(check bool) "strictly fewer than the full table" true
        (List.length changed < rows);
      (* Only components of the edited type move. *)
      let components =
        List.sort_uniq compare (List.map (member_str "component") changed)
      in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is a microcontroller" c)
            true
            (String.length c >= 2 && String.sub c 0 2 = "MC"))
        components;
      Alcotest.(check bool) "most rows reused" true
        (member_num "rows_reused" response > rows / 2);
      (* Unknown session ids are reported, not fatal. *)
      (match
         Serve.Client.rpc client
           (Serve.Protocol.Edit
              {
                e_session = "nope";
                e_diagram = None;
                e_reliability = Some reliability_csv;
              })
       with
      | Error m ->
          Alcotest.(check bool) "error mentions the id" true
            (String.length m > 0)
      | Ok _ -> Alcotest.fail "edit of unknown session succeeded")

let suite =
  [
    Alcotest.test_case "protocol: request round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol: framing rejects newlines" `Quick
      test_protocol_framing_rejects_newline;
    Alcotest.test_case "protocol: canonical fingerprint" `Quick
      test_fingerprint_canonical;
    Alcotest.test_case "singleflight: concurrent callers coalesce" `Quick
      test_singleflight_coalesces;
    Alcotest.test_case "singleflight: distinct keys independent" `Quick
      test_singleflight_distinct_keys_do_not_coalesce;
    Alcotest.test_case "server: ping and stats" `Quick test_server_ping_and_stats;
    Alcotest.test_case "server: analyse, replay from cache" `Quick
      test_server_analyse_and_cache;
    Alcotest.test_case "server: concurrent identical requests, one solve" `Quick
      test_server_coalesces_concurrent;
    Alcotest.test_case "server: incremental session reuses rows" `Quick
      test_server_incremental_session;
  ]
