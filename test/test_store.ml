(* Tests for the scalability substrate: budgets, synthetic model sets and
   the full vs lazy stores (Table VI's memory-overflow behaviour). *)

open Store

let test_budget () =
  let b = Budget.create ~max_bytes:(Budget.bytes_per_element * 10) in
  Budget.charge_elements b 6;
  Alcotest.(check int) "used" (6 * Budget.bytes_per_element) (Budget.used_bytes b);
  (match Budget.charge_elements b 5 with
  | exception Budget.Overflow { requested; available } ->
      Alcotest.(check int) "requested" (5 * Budget.bytes_per_element) requested;
      Alcotest.(check int) "available" (4 * Budget.bytes_per_element) available
  | () -> Alcotest.fail "expected Overflow");
  (* Failed charge leaves the budget unchanged; release works. *)
  Alcotest.(check int) "unchanged" (6 * Budget.bytes_per_element) (Budget.used_bytes b);
  Budget.release_elements b 6;
  Alcotest.(check int) "released" 0 (Budget.used_bytes b);
  Budget.release_elements b 100;
  Alcotest.(check int) "floor at zero" 0 (Budget.used_bytes b)

let test_synthetic_exact_counts () =
  (* iter_units delivers exactly the requested element count. *)
  List.iter
    (fun target ->
      let spec = { Synthetic.set_name = "t"; target_elements = target } in
      let counted = ref 0 in
      let total =
        Synthetic.iter_units spec (fun c ->
            counted := !counted + Ssam.Architecture.count_elements c)
      in
      Alcotest.(check int) (Printf.sprintf "reported total %d" target) target total;
      Alcotest.(check int) (Printf.sprintf "delivered total %d" target) target !counted)
    [ 1; 2; 50; 109; 269; 1369; 5689 ]

let test_table_vi_sets () =
  let sizes =
    List.map (fun s -> s.Synthetic.target_elements) Synthetic.table_vi_sets
  in
  Alcotest.(check (list int)) "paper sizes"
    [ 109; 269; 1369; 5689; 5_689_000; 568_990_000 ]
    sizes

let test_scaled () =
  let set4 = List.nth Synthetic.table_vi_sets 4 in
  let s = Synthetic.scaled set4 ~factor:100 in
  Alcotest.(check int) "scaled" 56_890 s.Synthetic.target_elements;
  let tiny = Synthetic.scaled { Synthetic.set_name = "x"; target_elements = 5 } ~factor:100 in
  Alcotest.(check int) "floor at 1" 1 tiny.Synthetic.target_elements

let test_unit_structure () =
  let u = Synthetic.unit_composite ~index:1 in
  Alcotest.(check int) "unit element count" Synthetic.unit_elements
    (Ssam.Architecture.count_elements u);
  (* Units analyse deterministically: the chain children (minus the
     redundant one) are single points; branches are not. *)
  let t = Fmea.Path_fmea.analyse u in
  let sr = Fmea.Table.safety_related_components t in
  Alcotest.(check bool) "chain child SR" true (List.mem "u1-c1" sr);
  Alcotest.(check bool) "redundant child tolerated" false (List.mem "u1-c5" sr);
  Alcotest.(check bool) "branch child not SR" false (List.mem "u1-b1" sr)

let test_materialise () =
  let spec = { Synthetic.set_name = "m"; target_elements = 300 } in
  let model = Synthetic.materialise spec in
  (* The model adds its own meta and the package wrapper (+2). *)
  Alcotest.(check int) "model elements" 302 (Ssam.Model.count_elements model)

let test_full_store_loads_small () =
  let budget = Budget.create ~max_bytes:(10 * 1024 * 1024) in
  match Full_store.load ~budget { Synthetic.set_name = "s"; target_elements = 1369 } with
  | Ok loaded ->
      Alcotest.(check int) "elements" 1369 (Full_store.element_count loaded);
      Alcotest.(check bool) "some units" true (Full_store.unit_count loaded > 0);
      let sr = Full_store.evaluate loaded in
      Alcotest.(check bool) "analysis finds single points" true (sr > 0);
      Full_store.release ~budget loaded;
      Alcotest.(check int) "budget released" 0 (Budget.used_bytes budget)
  | Error (`Memory_overflow _) -> Alcotest.fail "should fit"

let test_full_store_overflows_like_emf () =
  (* A budget an order of magnitude too small: loading dies midway, the
     way SAME's EMF loading died on Set5. *)
  let budget = Budget.create ~max_bytes:(100 * Budget.bytes_per_element) in
  match Full_store.load ~budget { Synthetic.set_name = "big"; target_elements = 10_000 } with
  | Error (`Memory_overflow bytes) ->
      Alcotest.(check bool) "got partway" true (bytes > 0);
      Alcotest.(check int) "budget rolled back" 0 (Budget.used_bytes budget)
  | Ok _ -> Alcotest.fail "expected overflow"

let test_lazy_store_handles_what_full_cannot () =
  let spec = { Synthetic.set_name = "big"; target_elements = 10_000 } in
  let small_budget () = Budget.create ~max_bytes:(200 * Budget.bytes_per_element) in
  (* Full store overflows... *)
  (match Full_store.load ~budget:(small_budget ()) spec with
  | Error (`Memory_overflow _) -> ()
  | Ok _ -> Alcotest.fail "full store should overflow");
  (* ...the lazy store streams through under the same budget. *)
  match Lazy_store.evaluate ~budget:(small_budget ()) spec with
  | Ok (elements, sr) ->
      Alcotest.(check int) "processed everything" 10_000 elements;
      Alcotest.(check bool) "found single points" true (sr > 0)
  | Error (`Memory_overflow _) -> Alcotest.fail "lazy store should stream"

let test_stores_agree () =
  (* Same analysis answer through both stores. *)
  let spec = { Synthetic.set_name = "agree"; target_elements = 1369 } in
  let budget = Budget.create ~max_bytes:(10 * 1024 * 1024) in
  let full =
    match Full_store.load ~budget spec with
    | Ok l -> Full_store.evaluate l
    | Error _ -> Alcotest.fail "full load failed"
  in
  let lazy_result =
    match Lazy_store.evaluate spec with
    | Ok (_, sr) -> sr
    | Error _ -> Alcotest.fail "lazy failed"
  in
  Alcotest.(check int) "same verdicts" full lazy_result

let test_backend_auto () =
  (* A set the budget cannot hold must stream, whatever the scheduler
     thinks. *)
  let tight = Budget.create ~max_bytes:(Budget.bytes_per_element * 10) in
  let big = { Synthetic.set_name = "big"; target_elements = 10_000 } in
  Alcotest.(check bool) "overflow forces lazy" true
    (Backend.choose ~budget:tight big = `Lazy);
  (* A single-unit set is never worth windowed dispatch. *)
  let small = { Synthetic.set_name = "small"; target_elements = 50 } in
  Alcotest.(check bool) "single unit stays full" true
    (Backend.choose small = `Full);
  (* Whatever `Auto picks, the answer matches both explicit backends. *)
  List.iter
    (fun target ->
      let spec = { Synthetic.set_name = "auto-agree"; target_elements = target } in
      let via b =
        match Backend.evaluate ~backend:b spec with
        | Ok (_, sr) -> sr
        | Error _ -> Alcotest.fail "evaluate failed"
      in
      let auto = via `Auto in
      Alcotest.(check int) "auto = full" (via `Full) auto;
      Alcotest.(check int) "auto = lazy" (via `Lazy) auto)
    [ 109; 1369 ]

let test_backend_names () =
  List.iter
    (fun b ->
      Alcotest.(check bool) "name round-trips" true
        (Backend.of_string (Backend.to_string b) = Some b))
    [ `Auto; `Full; `Lazy ];
  Alcotest.(check bool) "unknown rejected" true (Backend.of_string "mmap" = None)

let test_lazy_peak_memory () =
  (* Peak residency is one unit per worker; with one worker that is the
     seed's "peak is one unit" guarantee. *)
  let spec = { Synthetic.set_name = "x"; target_elements = 1_000_000 } in
  let saved = Exec.default_jobs () in
  Fun.protect
    ~finally:(fun () -> Exec.set_default_jobs saved)
    (fun () ->
      Exec.set_default_jobs 1;
      Alcotest.(check int) "peak is one unit" Synthetic.unit_elements
        (Lazy_store.peak_resident_elements spec);
      Exec.set_default_jobs 4;
      Alcotest.(check int) "peak is one unit per worker"
        (4 * Synthetic.unit_elements)
        (Lazy_store.peak_resident_elements spec))

let prop_synthetic_any_size =
  QCheck.Test.make ~name:"synthetic generator hits any target exactly" ~count:60
    QCheck.(int_range 1 20_000)
    (fun target ->
      let spec = { Synthetic.set_name = "q"; target_elements = target } in
      let counted = ref 0 in
      let _ = Synthetic.iter_units spec (fun c ->
          counted := !counted + Ssam.Architecture.count_elements c)
      in
      !counted = target)

let suite =
  [
    Alcotest.test_case "budget" `Quick test_budget;
    Alcotest.test_case "synthetic exact counts" `Quick test_synthetic_exact_counts;
    Alcotest.test_case "table VI sets" `Quick test_table_vi_sets;
    Alcotest.test_case "scaled" `Quick test_scaled;
    Alcotest.test_case "unit structure" `Quick test_unit_structure;
    Alcotest.test_case "materialise" `Quick test_materialise;
    Alcotest.test_case "full store loads small" `Quick test_full_store_loads_small;
    Alcotest.test_case "full store overflows like EMF" `Quick
      test_full_store_overflows_like_emf;
    Alcotest.test_case "lazy store streams past the budget" `Quick
      test_lazy_store_handles_what_full_cannot;
    Alcotest.test_case "stores agree" `Quick test_stores_agree;
    Alcotest.test_case "backend auto policy" `Quick test_backend_auto;
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "lazy peak memory" `Quick test_lazy_peak_memory;
    QCheck_alcotest.to_alcotest prop_synthetic_any_size;
  ]
