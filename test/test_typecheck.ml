(* Tests for the static query checker: position bookkeeping (Pos), the
   full built-in table (accept the right call shape, reject the wrong
   arity) and the property that a statically accepted program never dies
   at runtime for a statically decidable reason. *)

let errors ?env src = Query.Typecheck.check_source ?env src

let accepts ?env what src =
  match errors ?env src with
  | [] -> ()
  | e :: _ ->
      Alcotest.fail
        (Format.asprintf "%s: expected no errors for %S, got %a" what src
           Query.Typecheck.pp_error e)

let rejects ?env what src =
  match errors ?env src with
  | [] -> Alcotest.fail (what ^ ": expected a static error for " ^ src)
  | e :: _ ->
      Alcotest.(check bool)
        (what ^ ": diagnostic has a position")
        true
        (e.Query.Typecheck.pos <> None)

(* ---------- Pos ---------- *)

let test_pos_offsets () =
  let src = "ab\ncde\n\nf" in
  let check off line col =
    let p = Query.Pos.of_offset src off in
    Alcotest.(check string)
      (Printf.sprintf "offset %d" off)
      (Printf.sprintf "%d:%d" line col)
      (Query.Pos.to_string p)
  in
  check 0 1 1;
  check 1 1 2;
  check 3 2 1;
  check 5 2 3;
  check 7 3 1;
  check 8 4 1;
  (* Past the end clamps to the last position. *)
  check 99 4 2

let test_parse_errors_located () =
  (match Query.Parser.parse_expression "1 +\n  *" with
  | exception Query.Parser.Parse_error { message; _ } ->
      Alcotest.(check bool)
        "parse message carries line:col" true
        (let needle = " at 2:" in
         let rec has i =
           i + String.length needle <= String.length message
           && (String.sub message i (String.length needle) = needle || has (i + 1))
         in
         has 0)
  | _ -> Alcotest.fail "expected Parse_error");
  match errors "1 +" with
  | [ e ] ->
      Alcotest.(check bool) "parse error reported, not raised" true
        (String.length e.Query.Typecheck.message >= 12
        && String.sub e.Query.Typecheck.message 0 12 = "parse error:")
  | _ -> Alcotest.fail "expected exactly one parse diagnostic"

(* ---------- the built-in table ---------- *)

let receiver = function
  | "Seq" -> "Sequence(1, 2, 3)"
  | "Str" -> "'abc'"
  | "Num" -> "(1.5)"
  | "Record" -> "R" (* bound to Any below — records have no literal *)
  | c -> Alcotest.fail ("unexpected receiver class " ^ c)

let args_for = function
  | "at" -> [ "1" ]
  | "includes" | "indexOf" -> [ "2" ]
  | "startsWith" | "endsWith" | "contains" | "split" | "has" | "get" ->
      [ "'a'" ]
  | "replace" -> [ "'a'"; "'b'" ]
  | _ -> []

let test_builtin_table () =
  let env = [ "R" ] in
  List.iter
    (fun (cls, name, arity) ->
      let recv = receiver cls in
      let good, bad =
        match arity with
        | Query.Typecheck.Lambda ->
            ( Printf.sprintf "%s.%s(x | x)" recv name,
              Printf.sprintf "%s.%s()" recv name )
        | Query.Typecheck.Fixed n ->
            let args = args_for name in
            Alcotest.(check int) (name ^ ": table arity") n (List.length args);
            ( Printf.sprintf "%s.%s(%s)" recv name (String.concat ", " args),
              Printf.sprintf "%s.%s(%s)" recv name
                (String.concat ", " (args @ [ "1" ])) )
      in
      accepts ~env (cls ^ "." ^ name ^ " accepted") good;
      rejects ~env (cls ^ "." ^ name ^ " wrong arity rejected") bad)
    Query.Typecheck.builtins

let test_wrong_arity_position () =
  match errors "var xs := Sequence(1);\nreturn xs.select();" with
  | [ e ] ->
      let p = Option.get e.Query.Typecheck.pos in
      Alcotest.(check string) "line:col of the method name" "2:11"
        (Query.Pos.to_string p);
      Alcotest.(check string) "arity message"
        "select expects a single lambda argument (x | expr)"
        e.Query.Typecheck.message
  | es ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one error, got %d" (List.length es))

let test_rejections () =
  rejects "unknown method" "'abc'.frobnicate()";
  rejects "method on wrong receiver" "(1.5).trim()";
  rejects "unknown identifier" "return nowhere;";
  rejects "operator mismatch" "return true - 1;";
  rejects "comparison mismatch" "return 'a' < 1;";
  rejects "indexing a number" "return (5)[0];";
  rejects "sum of strings" "Sequence('a', 'b').sum()";
  rejects "lambda to a plain method" "Sequence(1).size(x | x)";
  rejects "bad argument type" "'abc'.startsWith(1)"

let test_acceptances () =
  accepts "chained collections"
    "Sequence(1, 2, 3).select(x | x > 1).collect(x | x * 2).sum()";
  accepts "string pipeline" "'a,b'.split(',').first().toUpperCase()";
  accepts ~env:[ "Artifact" ] "model data is Any"
    "return Artifact.rows.select(r | r.fit > 10).size() > 0;";
  accepts "if expression" "return if (1 < 2) 'yes' else 'no';";
  accepts "statements"
    "var x := 10; var y := x * 2; if (y > 15) x := y; else x := 0; return x;"

(* ---------- accepted programs never fail statically at runtime ---------- *)

let static_failure m =
  let has needle =
    let rec go i =
      i + String.length needle <= String.length m
      && (String.sub m i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  has "no method" || has "no built-in" || has "unknown identifier"
  || has "argument" || has "lambda"

let method_names =
  List.sort_uniq String.compare
    (List.map (fun (_, name, _) -> name) Query.Typecheck.builtins)

let gen_src =
  let open QCheck.Gen in
  let base =
    oneofl
      [
        "1"; "2.5"; "0"; "'a'"; "'bc'"; "true"; "false"; "Sequence(1, 2)";
        "Sequence('a', 'b')"; "Sequence(1, 2, 3)";
      ]
  in
  let argset =
    oneofl [ ""; "1"; "'a'"; "'a', 'b'"; "1, 2"; "x | x"; "x | x > 0" ]
  in
  sized
    (fix (fun self n ->
         if n <= 0 then base
         else
           let sub = self (n / 2) in
           frequency
             [
               (2, base);
               ( 2,
                 map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) sub sub );
               ( 1,
                 map2 (fun a b -> Printf.sprintf "(%s < %s)" a b) sub sub );
               ( 4,
                 map3
                   (fun r name args -> Printf.sprintf "%s.%s(%s)" r name args)
                   sub (oneofl method_names) argset );
             ]))

let prop_accepted_runs =
  QCheck.Test.make ~count:500
    ~name:"statically accepted programs never raise static Runtime_errors"
    (QCheck.make gen_src)
    (fun src ->
      match Query.Typecheck.check_source src with
      | _ :: _ -> true (* rejected: nothing to show *)
      | [] -> (
          match Query.Interp.run_string Query.Interp.env_empty src with
          | _ -> true
          | exception Query.Interp.Runtime_error m -> not (static_failure m)
          | exception _ -> true))

let suite =
  [
    Alcotest.test_case "pos offsets" `Quick test_pos_offsets;
    Alcotest.test_case "parse errors located" `Quick test_parse_errors_located;
    Alcotest.test_case "builtin table" `Quick test_builtin_table;
    Alcotest.test_case "wrong arity position" `Quick test_wrong_arity_position;
    Alcotest.test_case "rejections" `Quick test_rejections;
    Alcotest.test_case "acceptances" `Quick test_acceptances;
    QCheck_alcotest.to_alcotest prop_accepted_runs;
  ]
